//! TX-side cache for the single-bounce (NLOS) quadratures.
//!
//! Ceiling transmitters never move, so the source→patch leg of the
//! [`crate::nlos`] integrals — `(m+1)/(2π·d1²)·cosᵐ(φ1)·cos(ψ1)·ρ` per
//! floor/wall patch — is a pure function of the TX pose and the room.
//! [`NlosTxCache`] precomputes that leg once per (TX, room, patch grid) and
//! reuses it for every receiver, tick, and experiment, leaving only the
//! patch→RX leg to evaluate per call. That halves the per-pair quadrature
//! work and amortizes the TX leg across all followers of a leader.
//!
//! **Determinism contract:** the cached entry points keep the direct path's
//! summation structure exactly — one partial sum per floor row / wall
//! column, partials added in row/column order — and the split integrand
//! `tx_leg · rx_leg` is the fused `(first_leg · ρ) · second_leg` product
//! re-associated nowhere, so [`NlosTxCache::floor_gain`] and
//! [`NlosTxCache::wall_gain`] are **bitwise identical** to
//! [`crate::nlos::floor_bounce_gain`] / [`crate::nlos::wall_bounce_gain`]
//! for any worker count (property-tested in `tests/cache_identity.rs`).

use crate::lambertian::RxOptics;
use crate::nlos::{
    floor_grid, floor_patch_center, patch_rx_leg_profiled, patch_tx_leg, wall_columns,
    wall_patch_center, NlosConfig,
};
use crate::soa::LANE;
use std::sync::Arc;
use vlc_geom::{Pose, Room, Vec3};
use vlc_par::{Jobs, Pool};
use vlc_trace::Span;

/// Precomputed source→patch irradiance tables for one transmitter.
///
/// Build once per deployment (cheap: one tx-leg evaluation per patch),
/// share behind an [`Arc`] via [`NlosTxCache::shared`], then evaluate
/// per-receiver gains with [`NlosTxCache::floor_gain`] /
/// [`NlosTxCache::wall_gain`] at roughly half the direct cost.
#[derive(Debug, Clone)]
pub struct NlosTxCache {
    tx: Pose,
    room: Room,
    cfg: NlosConfig,
    /// Floor grid row count.
    ny: usize,
    /// Split patch x coordinates, `xs[ix] = (ix + 0.5)·patch`.
    xs: Vec<f64>,
    /// CSR row pointers into the floor live-patch lists (`ny + 1` entries).
    /// A patch is live iff its `tx_leg` is nonzero — the only patches that
    /// can contribute (skipping exact `+0.0` terms of a non-negative
    /// fixed-order sum is bitwise neutral).
    floor_row_ptr: Vec<usize>,
    /// `ix` of each live floor patch, ascending within a row.
    floor_live_idx: Vec<u32>,
    /// `tx_leg` (including reflectance) of each live floor patch.
    floor_live_leg: Vec<f64>,
    /// Wall column list (origin, axis, inward normal, iu) and patch rows.
    columns: Vec<(Vec3, Vec3, Vec3, usize)>,
    /// Split patch z coordinates, `zs[iz] = (iz + 0.5)·patch`.
    zs: Vec<f64>,
    /// CSR column pointers into the wall live-patch lists.
    wall_col_ptr: Vec<usize>,
    /// `iz` of each live wall patch, ascending within a column.
    wall_live_idx: Vec<u32>,
    /// `tx_leg` of each live wall patch.
    wall_live_leg: Vec<f64>,
}

impl NlosTxCache {
    /// Builds the tables for one TX, fanning the floor rows / wall columns
    /// out over `DENSEVLC_JOBS` workers.
    pub fn new(tx: &Pose, lambertian_m: f64, room: &Room, cfg: &NlosConfig) -> Self {
        Self::new_pooled(
            tx,
            lambertian_m,
            room,
            cfg,
            &Pool::new(Jobs::from_env()),
            &Span::noop(),
        )
    }

    /// [`Self::new`] on a caller-supplied pool, recording a
    /// `channel.nlos.cache_build` span under `parent` with one
    /// `channel.nlos.cache_build.row` child per floor row and one
    /// `channel.nlos.cache_build.col` child per wall column (both indexed,
    /// so the span tree is worker-count independent).
    pub fn new_pooled(
        tx: &Pose,
        lambertian_m: f64,
        room: &Room,
        cfg: &NlosConfig,
        pool: &Pool,
        parent: &Span,
    ) -> Self {
        assert!(cfg.patch_size_m > 0.0, "patch size must be positive");
        let build = parent.child("channel.nlos.cache_build");
        let (nx, ny) = floor_grid(room, cfg);
        build.attr("rows", &ny.to_string());
        let floor_leg: Vec<f64> = pool
            .map_indexed(ny, |iy| {
                let _row = build.child_indexed("channel.nlos.cache_build.row", iy);
                (0..nx)
                    .map(|ix| {
                        let w = floor_patch_center(cfg, ix, iy);
                        patch_tx_leg(tx, w, Vec3::UP, lambertian_m, room.floor_reflectance)
                    })
                    .collect::<Vec<f64>>()
            })
            .into_iter()
            .flatten()
            .collect();
        let (columns, nz) = wall_columns(room, cfg);
        build.attr("cols", &columns.len().to_string());
        let wall_leg: Vec<f64> = pool
            .map_indexed(columns.len(), |c| {
                let _col = build.child_indexed("channel.nlos.cache_build.col", c);
                let (origin, axis, normal, iu) = columns[c];
                (0..nz)
                    .map(|iz| {
                        let w = wall_patch_center(cfg, origin, axis, iu, iz);
                        patch_tx_leg(tx, w, normal, lambertian_m, room.floor_reflectance)
                    })
                    .collect::<Vec<f64>>()
            })
            .into_iter()
            .flatten()
            .collect();
        // Compact the dense legs into CSR live-patch lists: the out-of-
        // half-space patches (exact +0.0 legs) drop out of every future
        // receiver sweep.
        let mut floor_row_ptr = Vec::with_capacity(ny + 1);
        let mut floor_live_idx = Vec::new();
        let mut floor_live_leg = Vec::new();
        floor_row_ptr.push(0);
        for iy in 0..ny {
            for ix in 0..nx {
                let leg = floor_leg[iy * nx + ix];
                if leg != 0.0 {
                    floor_live_idx.push(ix as u32);
                    floor_live_leg.push(leg);
                }
            }
            floor_row_ptr.push(floor_live_idx.len());
        }
        let mut wall_col_ptr = Vec::with_capacity(columns.len() + 1);
        let mut wall_live_idx = Vec::new();
        let mut wall_live_leg = Vec::new();
        wall_col_ptr.push(0);
        for c in 0..columns.len() {
            for iz in 0..nz {
                let leg = wall_leg[c * nz + iz];
                if leg != 0.0 {
                    wall_live_idx.push(iz as u32);
                    wall_live_leg.push(leg);
                }
            }
            wall_col_ptr.push(wall_live_idx.len());
        }
        let xs = (0..nx)
            .map(|ix| (ix as f64 + 0.5) * cfg.patch_size_m)
            .collect();
        let zs = (0..nz)
            .map(|iz| (iz as f64 + 0.5) * cfg.patch_size_m)
            .collect();
        NlosTxCache {
            tx: *tx,
            room: *room,
            cfg: *cfg,
            ny,
            xs,
            floor_row_ptr,
            floor_live_idx,
            floor_live_leg,
            columns,
            zs,
            wall_col_ptr,
            wall_live_idx,
            wall_live_leg,
        }
    }

    /// [`Self::new`] wrapped in an [`Arc`] for sharing across receivers,
    /// links, and threads.
    pub fn shared(tx: &Pose, lambertian_m: f64, room: &Room, cfg: &NlosConfig) -> Arc<Self> {
        Arc::new(Self::new(tx, lambertian_m, room, cfg))
    }

    /// The cached transmitter pose.
    pub fn tx(&self) -> &Pose {
        &self.tx
    }

    /// The room the tables were built for.
    pub fn room(&self) -> &Room {
        &self.room
    }

    /// The quadrature configuration the tables were built for.
    pub fn config(&self) -> &NlosConfig {
        &self.cfg
    }

    /// Floor-bounce gain toward `rx` — bitwise identical to
    /// [`crate::nlos::floor_bounce_gain`] for the cached TX.
    pub fn floor_gain(&self, rx: &Pose, optics: &RxOptics) -> f64 {
        self.floor_gain_pooled(rx, optics, &Pool::new(Jobs::from_env()), &Span::noop())
    }

    /// [`Self::floor_gain`] with an explicit worker count.
    pub fn floor_gain_par(&self, rx: &Pose, optics: &RxOptics, jobs: Jobs) -> f64 {
        self.floor_gain_pooled(rx, optics, &Pool::new(jobs), &Span::noop())
    }

    /// [`Self::floor_gain`] on a caller-supplied pool, recording a
    /// `channel.nlos.floor.cached` span under `parent` with one
    /// `channel.nlos.floor.cached.row` child per quadrature row.
    pub fn floor_gain_pooled(
        &self,
        rx: &Pose,
        optics: &RxOptics,
        pool: &Pool,
        parent: &Span,
    ) -> f64 {
        let da = self.cfg.patch_size_m * self.cfg.patch_size_m;
        let profile = optics.profile();
        let floor = parent.child("channel.nlos.floor.cached");
        floor.attr("rows", &self.ny.to_string());
        let row_sums = pool.map_indexed(self.ny, |iy| {
            let _row = floor.child_indexed("channel.nlos.floor.cached.row", iy);
            let idx = &self.floor_live_idx[self.floor_row_ptr[iy]..self.floor_row_ptr[iy + 1]];
            let legs = &self.floor_live_leg[self.floor_row_ptr[iy]..self.floor_row_ptr[iy + 1]];
            let wy = (iy as f64 + 0.5) * self.cfg.patch_size_m;
            let mut row = 0.0;
            let mut lane = [0.0f64; LANE];
            let tail = idx.len() - idx.len() % LANE;
            for base in (0..tail).step_by(LANE) {
                for (l, slot) in lane.iter_mut().enumerate() {
                    let w = Vec3::new(self.xs[idx[base + l] as usize], wy, 0.0);
                    *slot = legs[base + l] * patch_rx_leg_profiled(rx, w, Vec3::UP, &profile);
                }
                // Lane results fold into the row strictly in patch order.
                for &contribution in &lane {
                    row += contribution;
                }
            }
            for (k, &ix) in idx.iter().enumerate().skip(tail) {
                let w = Vec3::new(self.xs[ix as usize], wy, 0.0);
                row += legs[k] * patch_rx_leg_profiled(rx, w, Vec3::UP, &profile);
            }
            row
        });
        row_sums.iter().sum::<f64>() * da
    }

    /// Wall-bounce gain toward `rx` — bitwise identical to
    /// [`crate::nlos::wall_bounce_gain`] for the cached TX.
    pub fn wall_gain(&self, rx: &Pose, optics: &RxOptics) -> f64 {
        self.wall_gain_pooled(rx, optics, &Pool::new(Jobs::from_env()), &Span::noop())
    }

    /// [`Self::wall_gain`] with an explicit worker count.
    pub fn wall_gain_par(&self, rx: &Pose, optics: &RxOptics, jobs: Jobs) -> f64 {
        self.wall_gain_pooled(rx, optics, &Pool::new(jobs), &Span::noop())
    }

    /// [`Self::wall_gain`] on a caller-supplied pool, recording a
    /// `channel.nlos.wall.cached` span under `parent` with one
    /// `channel.nlos.wall.cached.col` child per wall column.
    pub fn wall_gain_pooled(
        &self,
        rx: &Pose,
        optics: &RxOptics,
        pool: &Pool,
        parent: &Span,
    ) -> f64 {
        let da = self.cfg.patch_size_m * self.cfg.patch_size_m;
        let profile = optics.profile();
        let wall = parent.child("channel.nlos.wall.cached");
        wall.attr("cols", &self.columns.len().to_string());
        let column_sums = pool.map_indexed(self.columns.len(), |c| {
            let _col = wall.child_indexed("channel.nlos.wall.cached.col", c);
            let (origin, axis, normal, iu) = self.columns[c];
            let idx = &self.wall_live_idx[self.wall_col_ptr[c]..self.wall_col_ptr[c + 1]];
            let legs = &self.wall_live_leg[self.wall_col_ptr[c]..self.wall_col_ptr[c + 1]];
            // `wall_patch_center` evaluates `(origin + axis·u) + Z·z`
            // left-associated; hoisting the column-constant first addend
            // changes nothing bitwise.
            let base_w = origin + axis * ((iu as f64 + 0.5) * self.cfg.patch_size_m);
            let mut col = 0.0;
            let mut lane = [0.0f64; LANE];
            let tail = idx.len() - idx.len() % LANE;
            for base in (0..tail).step_by(LANE) {
                for (l, slot) in lane.iter_mut().enumerate() {
                    let w = base_w + Vec3::Z * self.zs[idx[base + l] as usize];
                    *slot = legs[base + l] * patch_rx_leg_profiled(rx, w, normal, &profile);
                }
                for &contribution in &lane {
                    col += contribution;
                }
            }
            for (k, &iz) in idx.iter().enumerate().skip(tail) {
                let w = base_w + Vec3::Z * self.zs[iz as usize];
                col += legs[k] * patch_rx_leg_profiled(rx, w, normal, &profile);
            }
            col
        });
        column_sums.iter().sum::<f64>() * da
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lambertian::lambertian_order;
    use crate::nlos::{floor_bounce_gain, wall_bounce_gain};
    use vlc_geom::TxGrid;

    fn setup() -> (Room, f64, RxOptics) {
        (
            Room::paper_testbed(),
            lambertian_order(15f64.to_radians()),
            RxOptics::paper(),
        )
    }

    #[test]
    fn cached_floor_gain_is_bitwise_identical_to_direct() {
        let (room, m, optics) = setup();
        let grid = TxGrid::paper(&room);
        let cfg = NlosConfig::default();
        let cache = NlosTxCache::new(&grid.pose(1), m, &room, &cfg);
        for follower in [0usize, 2, 7, 35] {
            let rx = grid.pose(follower);
            let direct = floor_bounce_gain(&grid.pose(1), &rx, m, &optics, &room, &cfg);
            let cached = cache.floor_gain(&rx, &optics);
            assert_eq!(
                cached.to_bits(),
                direct.to_bits(),
                "follower {follower}: cached {cached:e} direct {direct:e}"
            );
        }
    }

    #[test]
    fn cached_wall_gain_is_bitwise_identical_to_direct() {
        let (room, m, optics) = setup();
        let grid = TxGrid::paper(&room);
        let cfg = NlosConfig { patch_size_m: 0.1 };
        let cache = NlosTxCache::new(&grid.pose(7), m, &room, &cfg);
        let rx = Pose::face_up(0.92, 0.92, 0.0);
        let direct = wall_bounce_gain(&grid.pose(7), &rx, m, &optics, &room, &cfg);
        let cached = cache.wall_gain(&rx, &optics);
        assert_eq!(cached.to_bits(), direct.to_bits());
        assert!(cached > 0.0);
    }

    #[test]
    fn cached_gains_are_bitwise_identical_for_any_worker_count() {
        let (room, m, optics) = setup();
        let grid = TxGrid::paper(&room);
        let cfg = NlosConfig::default();
        let cache = NlosTxCache::new(&grid.pose(1), m, &room, &cfg);
        let rx = grid.pose(2);
        let reference = cache.floor_gain_par(&rx, &optics, Jobs::serial());
        for jobs in [Jobs::of(2), Jobs::of(7), Jobs::max()] {
            let got = cache.floor_gain_par(&rx, &optics, jobs);
            assert_eq!(got.to_bits(), reference.to_bits(), "jobs={jobs}");
        }
    }

    #[test]
    fn shared_cache_serves_multiple_followers() {
        let (room, m, optics) = setup();
        let grid = TxGrid::paper(&room);
        let cfg = NlosConfig::default();
        let cache = NlosTxCache::shared(&grid.pose(1), m, &room, &cfg);
        let near = cache.floor_gain(&grid.pose(2), &optics);
        let far = cache.floor_gain(&grid.pose(35), &optics);
        assert!(near > far, "near {near:e} !> far {far:e}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_patch_size_panics() {
        let (room, m, _) = setup();
        let grid = TxGrid::paper(&room);
        NlosTxCache::new(&grid.pose(0), m, &room, &NlosConfig { patch_size_m: 0.0 });
    }
}
