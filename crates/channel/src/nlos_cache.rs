//! TX-side cache for the single-bounce (NLOS) quadratures.
//!
//! Ceiling transmitters never move, so the source→patch leg of the
//! [`crate::nlos`] integrals — `(m+1)/(2π·d1²)·cosᵐ(φ1)·cos(ψ1)·ρ` per
//! floor/wall patch — is a pure function of the TX pose and the room.
//! [`NlosTxCache`] precomputes that leg once per (TX, room, patch grid) and
//! reuses it for every receiver, tick, and experiment, leaving only the
//! patch→RX leg to evaluate per call. That halves the per-pair quadrature
//! work and amortizes the TX leg across all followers of a leader.
//!
//! **Determinism contract:** the cached entry points keep the direct path's
//! summation structure exactly — one partial sum per floor row / wall
//! column, partials added in row/column order — and the split integrand
//! `tx_leg · rx_leg` is the fused `(first_leg · ρ) · second_leg` product
//! re-associated nowhere, so [`NlosTxCache::floor_gain`] and
//! [`NlosTxCache::wall_gain`] are **bitwise identical** to
//! [`crate::nlos::floor_bounce_gain`] / [`crate::nlos::wall_bounce_gain`]
//! for any worker count (property-tested in `tests/cache_identity.rs`).

use crate::lambertian::RxOptics;
use crate::nlos::{
    floor_grid, floor_patch_center, patch_rx_leg, patch_tx_leg, wall_columns, wall_patch_center,
    NlosConfig,
};
use std::sync::Arc;
use vlc_geom::{Pose, Room, Vec3};
use vlc_par::{Jobs, Pool};
use vlc_trace::Span;

/// Precomputed source→patch irradiance tables for one transmitter.
///
/// Build once per deployment (cheap: one tx-leg evaluation per patch),
/// share behind an [`Arc`] via [`NlosTxCache::shared`], then evaluate
/// per-receiver gains with [`NlosTxCache::floor_gain`] /
/// [`NlosTxCache::wall_gain`] at roughly half the direct cost.
#[derive(Debug, Clone)]
pub struct NlosTxCache {
    tx: Pose,
    room: Room,
    cfg: NlosConfig,
    /// Floor grid shape.
    nx: usize,
    ny: usize,
    /// `tx_leg` (including reflectance) per floor patch, `[iy · nx + ix]`.
    floor_leg: Vec<f64>,
    /// Wall column list (origin, axis, inward normal, iu) and patch rows.
    columns: Vec<(Vec3, Vec3, Vec3, usize)>,
    nz: usize,
    /// `tx_leg` per wall patch, `[c · nz + iz]`.
    wall_leg: Vec<f64>,
}

impl NlosTxCache {
    /// Builds the tables for one TX, fanning the floor rows / wall columns
    /// out over `DENSEVLC_JOBS` workers.
    pub fn new(tx: &Pose, lambertian_m: f64, room: &Room, cfg: &NlosConfig) -> Self {
        Self::new_pooled(
            tx,
            lambertian_m,
            room,
            cfg,
            &Pool::new(Jobs::from_env()),
            &Span::noop(),
        )
    }

    /// [`Self::new`] on a caller-supplied pool, recording a
    /// `channel.nlos.cache_build` span under `parent` with one
    /// `channel.nlos.cache_build.row` child per floor row and one
    /// `channel.nlos.cache_build.col` child per wall column (both indexed,
    /// so the span tree is worker-count independent).
    pub fn new_pooled(
        tx: &Pose,
        lambertian_m: f64,
        room: &Room,
        cfg: &NlosConfig,
        pool: &Pool,
        parent: &Span,
    ) -> Self {
        assert!(cfg.patch_size_m > 0.0, "patch size must be positive");
        let build = parent.child("channel.nlos.cache_build");
        let (nx, ny) = floor_grid(room, cfg);
        build.attr("rows", &ny.to_string());
        let floor_leg: Vec<f64> = pool
            .map_indexed(ny, |iy| {
                let _row = build.child_indexed("channel.nlos.cache_build.row", iy);
                (0..nx)
                    .map(|ix| {
                        let w = floor_patch_center(cfg, ix, iy);
                        patch_tx_leg(tx, w, Vec3::UP, lambertian_m, room.floor_reflectance)
                    })
                    .collect::<Vec<f64>>()
            })
            .into_iter()
            .flatten()
            .collect();
        let (columns, nz) = wall_columns(room, cfg);
        build.attr("cols", &columns.len().to_string());
        let wall_leg: Vec<f64> = pool
            .map_indexed(columns.len(), |c| {
                let _col = build.child_indexed("channel.nlos.cache_build.col", c);
                let (origin, axis, normal, iu) = columns[c];
                (0..nz)
                    .map(|iz| {
                        let w = wall_patch_center(cfg, origin, axis, iu, iz);
                        patch_tx_leg(tx, w, normal, lambertian_m, room.floor_reflectance)
                    })
                    .collect::<Vec<f64>>()
            })
            .into_iter()
            .flatten()
            .collect();
        NlosTxCache {
            tx: *tx,
            room: *room,
            cfg: *cfg,
            nx,
            ny,
            floor_leg,
            columns,
            nz,
            wall_leg,
        }
    }

    /// [`Self::new`] wrapped in an [`Arc`] for sharing across receivers,
    /// links, and threads.
    pub fn shared(tx: &Pose, lambertian_m: f64, room: &Room, cfg: &NlosConfig) -> Arc<Self> {
        Arc::new(Self::new(tx, lambertian_m, room, cfg))
    }

    /// The cached transmitter pose.
    pub fn tx(&self) -> &Pose {
        &self.tx
    }

    /// The room the tables were built for.
    pub fn room(&self) -> &Room {
        &self.room
    }

    /// The quadrature configuration the tables were built for.
    pub fn config(&self) -> &NlosConfig {
        &self.cfg
    }

    /// Floor-bounce gain toward `rx` — bitwise identical to
    /// [`crate::nlos::floor_bounce_gain`] for the cached TX.
    pub fn floor_gain(&self, rx: &Pose, optics: &RxOptics) -> f64 {
        self.floor_gain_pooled(rx, optics, &Pool::new(Jobs::from_env()), &Span::noop())
    }

    /// [`Self::floor_gain`] with an explicit worker count.
    pub fn floor_gain_par(&self, rx: &Pose, optics: &RxOptics, jobs: Jobs) -> f64 {
        self.floor_gain_pooled(rx, optics, &Pool::new(jobs), &Span::noop())
    }

    /// [`Self::floor_gain`] on a caller-supplied pool, recording a
    /// `channel.nlos.floor.cached` span under `parent` with one
    /// `channel.nlos.floor.cached.row` child per quadrature row.
    pub fn floor_gain_pooled(
        &self,
        rx: &Pose,
        optics: &RxOptics,
        pool: &Pool,
        parent: &Span,
    ) -> f64 {
        let da = self.cfg.patch_size_m * self.cfg.patch_size_m;
        let floor = parent.child("channel.nlos.floor.cached");
        floor.attr("rows", &self.ny.to_string());
        let row_sums = pool.map_indexed(self.ny, |iy| {
            let _row = floor.child_indexed("channel.nlos.floor.cached.row", iy);
            let mut row = 0.0;
            for ix in 0..self.nx {
                let tx_leg = self.floor_leg[iy * self.nx + ix];
                if tx_leg == 0.0 {
                    // The fused integrand is exactly +0.0 here and x + 0.0
                    // never changes a non-negative partial sum, so skipping
                    // keeps the row bitwise identical to the direct path.
                    continue;
                }
                let w = floor_patch_center(&self.cfg, ix, iy);
                row += tx_leg * patch_rx_leg(rx, w, Vec3::UP, optics);
            }
            row
        });
        row_sums.iter().sum::<f64>() * da
    }

    /// Wall-bounce gain toward `rx` — bitwise identical to
    /// [`crate::nlos::wall_bounce_gain`] for the cached TX.
    pub fn wall_gain(&self, rx: &Pose, optics: &RxOptics) -> f64 {
        self.wall_gain_pooled(rx, optics, &Pool::new(Jobs::from_env()), &Span::noop())
    }

    /// [`Self::wall_gain`] with an explicit worker count.
    pub fn wall_gain_par(&self, rx: &Pose, optics: &RxOptics, jobs: Jobs) -> f64 {
        self.wall_gain_pooled(rx, optics, &Pool::new(jobs), &Span::noop())
    }

    /// [`Self::wall_gain`] on a caller-supplied pool, recording a
    /// `channel.nlos.wall.cached` span under `parent` with one
    /// `channel.nlos.wall.cached.col` child per wall column.
    pub fn wall_gain_pooled(
        &self,
        rx: &Pose,
        optics: &RxOptics,
        pool: &Pool,
        parent: &Span,
    ) -> f64 {
        let da = self.cfg.patch_size_m * self.cfg.patch_size_m;
        let wall = parent.child("channel.nlos.wall.cached");
        wall.attr("cols", &self.columns.len().to_string());
        let column_sums = pool.map_indexed(self.columns.len(), |c| {
            let _col = wall.child_indexed("channel.nlos.wall.cached.col", c);
            let (origin, axis, normal, iu) = self.columns[c];
            let mut col = 0.0;
            for iz in 0..self.nz {
                let tx_leg = self.wall_leg[c * self.nz + iz];
                if tx_leg == 0.0 {
                    continue;
                }
                let w = wall_patch_center(&self.cfg, origin, axis, iu, iz);
                col += tx_leg * patch_rx_leg(rx, w, normal, optics);
            }
            col
        });
        column_sums.iter().sum::<f64>() * da
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lambertian::lambertian_order;
    use crate::nlos::{floor_bounce_gain, wall_bounce_gain};
    use vlc_geom::TxGrid;

    fn setup() -> (Room, f64, RxOptics) {
        (
            Room::paper_testbed(),
            lambertian_order(15f64.to_radians()),
            RxOptics::paper(),
        )
    }

    #[test]
    fn cached_floor_gain_is_bitwise_identical_to_direct() {
        let (room, m, optics) = setup();
        let grid = TxGrid::paper(&room);
        let cfg = NlosConfig::default();
        let cache = NlosTxCache::new(&grid.pose(1), m, &room, &cfg);
        for follower in [0usize, 2, 7, 35] {
            let rx = grid.pose(follower);
            let direct = floor_bounce_gain(&grid.pose(1), &rx, m, &optics, &room, &cfg);
            let cached = cache.floor_gain(&rx, &optics);
            assert_eq!(
                cached.to_bits(),
                direct.to_bits(),
                "follower {follower}: cached {cached:e} direct {direct:e}"
            );
        }
    }

    #[test]
    fn cached_wall_gain_is_bitwise_identical_to_direct() {
        let (room, m, optics) = setup();
        let grid = TxGrid::paper(&room);
        let cfg = NlosConfig { patch_size_m: 0.1 };
        let cache = NlosTxCache::new(&grid.pose(7), m, &room, &cfg);
        let rx = Pose::face_up(0.92, 0.92, 0.0);
        let direct = wall_bounce_gain(&grid.pose(7), &rx, m, &optics, &room, &cfg);
        let cached = cache.wall_gain(&rx, &optics);
        assert_eq!(cached.to_bits(), direct.to_bits());
        assert!(cached > 0.0);
    }

    #[test]
    fn cached_gains_are_bitwise_identical_for_any_worker_count() {
        let (room, m, optics) = setup();
        let grid = TxGrid::paper(&room);
        let cfg = NlosConfig::default();
        let cache = NlosTxCache::new(&grid.pose(1), m, &room, &cfg);
        let rx = grid.pose(2);
        let reference = cache.floor_gain_par(&rx, &optics, Jobs::serial());
        for jobs in [Jobs::of(2), Jobs::of(7), Jobs::max()] {
            let got = cache.floor_gain_par(&rx, &optics, jobs);
            assert_eq!(got.to_bits(), reference.to_bits(), "jobs={jobs}");
        }
    }

    #[test]
    fn shared_cache_serves_multiple_followers() {
        let (room, m, optics) = setup();
        let grid = TxGrid::paper(&room);
        let cfg = NlosConfig::default();
        let cache = NlosTxCache::shared(&grid.pose(1), m, &room, &cfg);
        let near = cache.floor_gain(&grid.pose(2), &optics);
        let far = cache.floor_gain(&grid.pose(35), &optics);
        assert!(near > far, "near {near:e} !> far {far:e}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_patch_size_panics() {
        let (room, m, _) = setup();
        let grid = TxGrid::paper(&room);
        NlosTxCache::new(&grid.pose(0), m, &room, &NlosConfig { patch_size_m: 0.0 });
    }
}
