//! Ambient light and its shot noise at the receivers.
//!
//! Every LED in the grid shines continuously at its illumination bias; that
//! light lands on each photodiode as a DC photocurrent, contributing shot
//! noise `2·q·I_dc` on top of the thermal floor (the AC coupling removes
//! the DC itself but not its shot noise). The paper folds everything into
//! one `N0`; this module derives the DC term explicitly so deployments can
//! study how illumination level couples into communication noise — e.g.
//! dimming scenarios.

use crate::lambertian::{lambertian_order, los_gain, RxOptics};
use crate::noise::NoiseParams;
use vlc_geom::Pose;

/// The DC photocurrent at a receiver from the bias illumination of every
/// luminaire, in amperes: `R · Σ_j H_j · P_opt,bias`.
///
/// `optical_bias_w` is each LED's optical output at the bias current
/// (`η · Pled(Ib)` for the electrical model, or a measured value).
pub fn ambient_dc_current(
    luminaires: &[Pose],
    rx: &Pose,
    half_power_semi_angle: f64,
    optics: &RxOptics,
    optical_bias_w: f64,
) -> f64 {
    assert!(
        optical_bias_w >= 0.0,
        "optical bias power must be non-negative"
    );
    let m = lambertian_order(half_power_semi_angle);
    let total_gain: f64 = luminaires
        .iter()
        .map(|lum| los_gain(lum, rx, m, optics))
        .sum();
    optics.responsivity * total_gain * optical_bias_w
}

/// Noise parameters with the grid's ambient shot noise folded in for one
/// receiver position.
pub fn noise_with_ambient(
    base: &NoiseParams,
    luminaires: &[Pose],
    rx: &Pose,
    half_power_semi_angle: f64,
    optics: &RxOptics,
    optical_bias_w: f64,
) -> NoiseParams {
    let i_dc = ambient_dc_current(
        luminaires,
        rx,
        half_power_semi_angle,
        optics,
        optical_bias_w,
    );
    base.with_shot_noise(i_dc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_geom::{Room, TxGrid};

    fn setup() -> (Vec<Pose>, Pose, RxOptics) {
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        (
            grid.poses(),
            Pose::face_up(1.5, 1.5, 0.8),
            RxOptics::paper(),
        )
    }

    #[test]
    fn ambient_current_is_positive_under_the_grid() {
        let (lums, rx, optics) = setup();
        let i = ambient_dc_current(&lums, &rx, 15f64.to_radians(), &optics, 0.5);
        assert!(i > 0.0, "no ambient current under a lit grid");
        // Physical scale: µA-level for a mm² photodiode under office light.
        assert!(i < 1e-3, "implausibly large DC current {i}");
    }

    #[test]
    fn ambient_scales_linearly_with_bias_power() {
        let (lums, rx, optics) = setup();
        let i1 = ambient_dc_current(&lums, &rx, 15f64.to_radians(), &optics, 0.25);
        let i2 = ambient_dc_current(&lums, &rx, 15f64.to_radians(), &optics, 0.50);
        assert!((i2 / i1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shot_noise_raises_the_floor_only_slightly_at_paper_scale() {
        // For the paper's geometry the ambient shot noise is a small
        // correction to the thermal N0 — consistent with the paper folding
        // it into one constant.
        let (lums, rx, optics) = setup();
        let base = NoiseParams::paper();
        let noisy = noise_with_ambient(&base, &lums, &rx, 15f64.to_radians(), &optics, 0.5);
        assert!(noisy.n0_a2_per_hz > base.n0_a2_per_hz);
        assert!(
            noisy.n0_a2_per_hz < 1.5 * base.n0_a2_per_hz,
            "shot noise dominates unexpectedly: {} vs {}",
            noisy.n0_a2_per_hz,
            base.n0_a2_per_hz
        );
    }

    #[test]
    fn dark_room_adds_no_shot_noise() {
        let (_, rx, optics) = setup();
        let base = NoiseParams::paper();
        let same = noise_with_ambient(&base, &[], &rx, 15f64.to_radians(), &optics, 0.5);
        assert_eq!(same.n0_a2_per_hz, base.n0_a2_per_hz);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bias_power_panics() {
        let (lums, rx, optics) = setup();
        ambient_dc_current(&lums, &rx, 15f64.to_radians(), &optics, -1.0);
    }
}
