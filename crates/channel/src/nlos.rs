//! Non-line-of-sight (single-bounce) channel gains.
//!
//! DenseVLC's synchronization (paper §6.2) works by having a leading TX
//! flash a pilot that reflects off the floor and is picked up by the
//! downward-facing photodiodes of nearby follower TXs. Two ceiling TXs have
//! no line of sight to each other (both face down), so the coupling is the
//! classic single-bounce integral: the floor is tiled into differential
//! Lambertian reflectors, each receiving light from the source and
//! re-emitting it diffusely (order-1 Lambertian) toward the destination's
//! photodiode.
//!
//! The module also integrates *wall* bounces ([`wall_bounce_gain`]) — the
//! only first-order NLOS contribution an upward-facing data receiver can
//! see — to quantify what the paper's LOS-only SINR model (Eq. 12)
//! neglects (well under 1 % for this geometry).

use crate::lambertian::{RxOptics, RxProfile};
use crate::soa::LANE;
use serde::{Deserialize, Serialize};
use vlc_geom::{Pose, Room, Vec3};
use vlc_par::{Jobs, Pool};
use vlc_trace::Span;

/// Configuration for the single-bounce integration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NlosConfig {
    /// Floor-patch edge length in meters for the numerical integration.
    /// 5 cm keeps the quadrature error well under 1 % for room-scale
    /// geometries while remaining fast.
    pub patch_size_m: f64,
}

impl Default for NlosConfig {
    fn default() -> Self {
        NlosConfig { patch_size_m: 0.05 }
    }
}

/// Single-bounce (floor) path gain from a ceiling transmitter to a
/// (typically also ceiling-mounted, downward-facing) receiver photodiode.
///
/// For each floor patch `dA` at point `w`:
///
/// `dH = (m+1)/(2π·d1²) · cosᵐ(φ1)·cos(ψ1) · ρ · Apd·g(ψ2)/(π·d2²) ·
///       cos(φ2)·cos(ψ2) · dA`
///
/// where `d1, φ1, ψ1` describe the source→patch leg (ψ1 against the floor
/// normal), `ρ` is the floor reflectance, and `d2, φ2, ψ2` the
/// patch→receiver leg with the patch re-emitting as an order-1 Lambertian.
pub fn floor_bounce_gain(
    tx: &Pose,
    rx: &Pose,
    lambertian_m: f64,
    optics: &RxOptics,
    room: &Room,
    cfg: &NlosConfig,
) -> f64 {
    floor_bounce_gain_par(tx, rx, lambertian_m, optics, room, cfg, Jobs::from_env())
}

/// [`floor_bounce_gain`] with an explicit worker count.
///
/// The quadrature is structured as one partial sum per floor *row* (fixed
/// `iy`), summed over rows in row order — on the sequential path too — so
/// fanning rows out over workers reassociates nothing and the integral is
/// bitwise identical for any `jobs`.
pub fn floor_bounce_gain_par(
    tx: &Pose,
    rx: &Pose,
    lambertian_m: f64,
    optics: &RxOptics,
    room: &Room,
    cfg: &NlosConfig,
    jobs: Jobs,
) -> f64 {
    floor_bounce_gain_traced(tx, rx, lambertian_m, optics, room, cfg, jobs, &Span::noop())
}

/// [`floor_bounce_gain_par`] recording a `channel.nlos.floor` span under
/// `parent`, with one `channel.nlos.floor.row` child per quadrature row
/// (indexed by row, so the span tree is worker-count independent). With a
/// noop parent this is the uninstrumented path plus one branch per span
/// site.
#[allow(clippy::too_many_arguments)]
pub fn floor_bounce_gain_traced(
    tx: &Pose,
    rx: &Pose,
    lambertian_m: f64,
    optics: &RxOptics,
    room: &Room,
    cfg: &NlosConfig,
    jobs: Jobs,
    parent: &Span,
) -> f64 {
    floor_bounce_gain_pooled(
        tx,
        rx,
        lambertian_m,
        optics,
        room,
        cfg,
        &Pool::new(jobs),
        parent,
    )
}

/// [`floor_bounce_gain_traced`] on a caller-supplied [`Pool`], so one pool
/// can serve many gain evaluations instead of being rebuilt per call.
#[allow(clippy::too_many_arguments)]
pub fn floor_bounce_gain_pooled(
    tx: &Pose,
    rx: &Pose,
    lambertian_m: f64,
    optics: &RxOptics,
    room: &Room,
    cfg: &NlosConfig,
    pool: &Pool,
    parent: &Span,
) -> f64 {
    assert!(cfg.patch_size_m > 0.0, "patch size must be positive");
    let da = cfg.patch_size_m * cfg.patch_size_m;
    let (nx, ny) = floor_grid(room, cfg);
    let profile = optics.profile();
    // Split patch x coordinates once per call — the same `(ix + 0.5)·patch`
    // expression the scalar reference evaluates per patch, hoisted out of
    // the row sweep.
    let xs: Vec<f64> = (0..nx)
        .map(|ix| (ix as f64 + 0.5) * cfg.patch_size_m)
        .collect();
    let floor = parent.child("channel.nlos.floor");
    floor.attr("rows", &ny.to_string());
    let row_sums = pool.map_indexed(ny, |iy| {
        let _row = floor.child_indexed("channel.nlos.floor.row", iy);
        let wy = (iy as f64 + 0.5) * cfg.patch_size_m;
        let mut row = 0.0;
        let tail = nx - nx % LANE;
        for base in (0..tail).step_by(LANE) {
            let lane = floor_row_lane(
                tx,
                rx,
                &xs[base..base + LANE],
                wy,
                lambertian_m,
                &profile,
                room.floor_reflectance,
            );
            // Lane results fold into the row strictly in patch order: the
            // batch reorders computation, never the fixed-order sum.
            for &c in &lane {
                row += c;
            }
        }
        for &x in &xs[tail..] {
            let w = Vec3::new(x, wy, 0.0);
            row += patch_contribution_fused(
                tx,
                rx,
                w,
                Vec3::UP,
                lambertian_m,
                &profile,
                room.floor_reflectance,
            );
        }
        row
    });
    row_sums.iter().sum::<f64>() * da
}

/// Scalar bit-identity reference for [`floor_bounce_gain`]: the historical
/// sequential per-patch loop, retained verbatim (the repo's fast-vs-scalar
/// reference pattern) so `tests/soa_identity.rs` can pin the lane kernel
/// against it bitwise.
pub fn floor_bounce_gain_scalar(
    tx: &Pose,
    rx: &Pose,
    lambertian_m: f64,
    optics: &RxOptics,
    room: &Room,
    cfg: &NlosConfig,
) -> f64 {
    assert!(cfg.patch_size_m > 0.0, "patch size must be positive");
    let da = cfg.patch_size_m * cfg.patch_size_m;
    let (nx, ny) = floor_grid(room, cfg);
    let mut row_sums = Vec::with_capacity(ny);
    for iy in 0..ny {
        let mut row = 0.0;
        for ix in 0..nx {
            let w = floor_patch_center(cfg, ix, iy);
            row += patch_contribution(tx, rx, w, lambertian_m, optics, room.floor_reflectance);
        }
        row_sums.push(row);
    }
    row_sums.iter().sum::<f64>() * da
}

/// Single-bounce *wall* path gain from a transmitter to a receiver: the
/// sum over all four walls of the room, each tiled into diffuse Lambertian
/// reflectors with the same reflectance as the floor.
///
/// For an upward-facing data receiver the floor bounce is invisible (light
/// would arrive from behind the detector plane), so walls are the only
/// first-order NLOS contribution to the *data* channel. The tests quantify
/// it at well under a percent of the LOS gain for the paper's narrow-beam
/// geometry — the validation behind Eq. 12's LOS-only SINR.
pub fn wall_bounce_gain(
    tx: &Pose,
    rx: &Pose,
    lambertian_m: f64,
    optics: &RxOptics,
    room: &Room,
    cfg: &NlosConfig,
) -> f64 {
    wall_bounce_gain_par(tx, rx, lambertian_m, optics, room, cfg, Jobs::from_env())
}

/// [`wall_bounce_gain`] with an explicit worker count. Work items are the
/// vertical wall *columns* (one per `(wall, iu)`), each summed bottom-up;
/// column partials are added in column order on every path, so the result
/// is bitwise identical for any `jobs` (see [`floor_bounce_gain_par`]).
pub fn wall_bounce_gain_par(
    tx: &Pose,
    rx: &Pose,
    lambertian_m: f64,
    optics: &RxOptics,
    room: &Room,
    cfg: &NlosConfig,
    jobs: Jobs,
) -> f64 {
    wall_bounce_gain_traced(tx, rx, lambertian_m, optics, room, cfg, jobs, &Span::noop())
}

/// [`wall_bounce_gain_par`] recording a `channel.nlos.wall` span under
/// `parent`, with one `channel.nlos.wall.col` child per wall column
/// (indexed by column, so the span tree is worker-count independent).
#[allow(clippy::too_many_arguments)]
pub fn wall_bounce_gain_traced(
    tx: &Pose,
    rx: &Pose,
    lambertian_m: f64,
    optics: &RxOptics,
    room: &Room,
    cfg: &NlosConfig,
    jobs: Jobs,
    parent: &Span,
) -> f64 {
    wall_bounce_gain_pooled(
        tx,
        rx,
        lambertian_m,
        optics,
        room,
        cfg,
        &Pool::new(jobs),
        parent,
    )
}

/// [`wall_bounce_gain_traced`] on a caller-supplied [`Pool`], so one pool
/// can serve many gain evaluations instead of being rebuilt per call.
#[allow(clippy::too_many_arguments)]
pub fn wall_bounce_gain_pooled(
    tx: &Pose,
    rx: &Pose,
    lambertian_m: f64,
    optics: &RxOptics,
    room: &Room,
    cfg: &NlosConfig,
    pool: &Pool,
    parent: &Span,
) -> f64 {
    assert!(cfg.patch_size_m > 0.0, "patch size must be positive");
    let da = cfg.patch_size_m * cfg.patch_size_m;
    let (columns, nz) = wall_columns(room, cfg);
    let profile = optics.profile();
    // Split patch z coordinates once per call, shared by every column.
    let zs: Vec<f64> = (0..nz)
        .map(|iz| (iz as f64 + 0.5) * cfg.patch_size_m)
        .collect();
    let wall = parent.child("channel.nlos.wall");
    wall.attr("cols", &columns.len().to_string());
    let column_sums = pool.map_indexed(columns.len(), |c| {
        let _col = wall.child_indexed("channel.nlos.wall.col", c);
        let (origin, axis, normal, iu) = columns[c];
        // The reference `wall_patch_center` evaluates
        // `(origin + axis·u) + Z·z` left-associated; hoisting the
        // column-constant first addend changes nothing bitwise.
        let base_w = origin + axis * ((iu as f64 + 0.5) * cfg.patch_size_m);
        let mut col = 0.0;
        let mut lane = [0.0f64; LANE];
        let tail = nz - nz % LANE;
        for base in (0..tail).step_by(LANE) {
            for (l, slot) in lane.iter_mut().enumerate() {
                let w = base_w + Vec3::Z * zs[base + l];
                *slot = patch_contribution_fused(
                    tx,
                    rx,
                    w,
                    normal,
                    lambertian_m,
                    &profile,
                    room.floor_reflectance,
                );
            }
            for &contribution in &lane {
                col += contribution;
            }
        }
        for &z in &zs[tail..] {
            let w = base_w + Vec3::Z * z;
            col += patch_contribution_fused(
                tx,
                rx,
                w,
                normal,
                lambertian_m,
                &profile,
                room.floor_reflectance,
            );
        }
        col
    });
    column_sums.iter().sum::<f64>() * da
}

/// Scalar bit-identity reference for [`wall_bounce_gain`] — see
/// [`floor_bounce_gain_scalar`].
pub fn wall_bounce_gain_scalar(
    tx: &Pose,
    rx: &Pose,
    lambertian_m: f64,
    optics: &RxOptics,
    room: &Room,
    cfg: &NlosConfig,
) -> f64 {
    assert!(cfg.patch_size_m > 0.0, "patch size must be positive");
    let da = cfg.patch_size_m * cfg.patch_size_m;
    let (columns, nz) = wall_columns(room, cfg);
    let mut column_sums = Vec::with_capacity(columns.len());
    for &(origin, axis, normal, iu) in &columns {
        let mut col = 0.0;
        for iz in 0..nz {
            let w = wall_patch_center(cfg, origin, axis, iu, iz);
            col += surface_patch_contribution(
                tx,
                rx,
                w,
                normal,
                lambertian_m,
                optics,
                room.floor_reflectance,
            );
        }
        column_sums.push(col);
    }
    column_sums.iter().sum::<f64>() * da
}

/// The floor quadrature grid `(nx, ny)` for a room and patch size.
pub(crate) fn floor_grid(room: &Room, cfg: &NlosConfig) -> (usize, usize) {
    let nx = (room.width / cfg.patch_size_m).ceil() as usize;
    let ny = (room.depth / cfg.patch_size_m).ceil() as usize;
    (nx, ny)
}

/// Center of floor patch `(ix, iy)`.
pub(crate) fn floor_patch_center(cfg: &NlosConfig, ix: usize, iy: usize) -> Vec3 {
    Vec3::new(
        (ix as f64 + 0.5) * cfg.patch_size_m,
        (iy as f64 + 0.5) * cfg.patch_size_m,
        0.0,
    )
}

/// The four walls' vertical columns flattened into one indexed work list
/// (`(origin, horizontal axis, inward normal, iu)` per column) plus the
/// per-column patch count `nz`.
pub(crate) fn wall_columns(
    room: &Room,
    cfg: &NlosConfig,
) -> (Vec<(Vec3, Vec3, Vec3, usize)>, usize) {
    // Each wall: (origin, horizontal axis, extent along it, inward normal).
    let walls: [(Vec3, Vec3, f64, Vec3); 4] = [
        (Vec3::ZERO, Vec3::X, room.width, Vec3::Y), // y = 0
        (
            Vec3::new(0.0, room.depth, 0.0),
            Vec3::X,
            room.width,
            -Vec3::Y,
        ), // y = depth
        (Vec3::ZERO, Vec3::Y, room.depth, Vec3::X), // x = 0
        (
            Vec3::new(room.width, 0.0, 0.0),
            Vec3::Y,
            room.depth,
            -Vec3::X,
        ), // x = width
    ];
    let nz = (room.height / cfg.patch_size_m).ceil() as usize;
    let columns: Vec<(Vec3, Vec3, Vec3, usize)> = walls
        .iter()
        .flat_map(|&(origin, axis, extent, normal)| {
            let nu = (extent / cfg.patch_size_m).ceil() as usize;
            (0..nu).map(move |iu| (origin, axis, normal, iu))
        })
        .collect();
    (columns, nz)
}

/// Center of wall patch `(iu, iz)` on the column anchored at `origin`.
pub(crate) fn wall_patch_center(
    cfg: &NlosConfig,
    origin: Vec3,
    axis: Vec3,
    iu: usize,
    iz: usize,
) -> Vec3 {
    origin
        + axis * ((iu as f64 + 0.5) * cfg.patch_size_m)
        + Vec3::Z * ((iz as f64 + 0.5) * cfg.patch_size_m)
}

/// Source→patch leg of the single-bounce integrand, *including* the surface
/// reflectance: `(m+1)/(2π·d1²)·cosᵐ(φ1)·cos(ψ1) · ρ`, or exactly `0.0`
/// when the patch is out of the emitter's half-space (the same early-outs
/// as the fused integrand). Depends only on the TX pose and the patch, so
/// it is the quantity [`crate::nlos_cache::NlosTxCache`] precomputes.
///
/// The fused product `first_leg · ρ · second_leg` evaluates left-to-right
/// as `(first_leg · ρ) · second_leg`, so splitting here keeps the cached
/// path bitwise identical to the direct one.
pub(crate) fn patch_tx_leg(tx: &Pose, w: Vec3, normal: Vec3, m: f64, reflectance: f64) -> f64 {
    let v1 = w - tx.position;
    let d1_sq = v1.norm_sq();
    if d1_sq < 1e-9 {
        return 0.0;
    }
    let cos_phi1 = tx.cos_irradiation(w);
    let cos_psi1 = (-v1.normalized()).dot(normal);
    if cos_phi1 <= 0.0 || cos_psi1 <= 0.0 {
        return 0.0;
    }
    let first_leg = (m + 1.0) / (2.0 * std::f64::consts::PI * d1_sq) * cos_phi1.powf(m) * cos_psi1;
    first_leg * reflectance
}

/// Patch→RX leg of the single-bounce integrand: the patch re-emits as an
/// order-1 Lambertian toward the photodiode,
/// `Apd·g(ψ2)/(π·d2²)·cos(φ2)·cos(ψ2)`, or exactly `0.0` on the same
/// early-outs as the fused integrand.
pub(crate) fn patch_rx_leg(rx: &Pose, w: Vec3, normal: Vec3, optics: &RxOptics) -> f64 {
    let v2 = rx.position - w;
    let d2_sq = v2.norm_sq();
    if d2_sq < 1e-9 {
        return 0.0;
    }
    let cos_phi2 = v2.normalized().dot(normal);
    let cos_psi2 = rx.cos_incidence(w);
    if cos_phi2 <= 0.0 || cos_psi2 <= 0.0 {
        return 0.0;
    }
    let psi2 = cos_psi2.clamp(-1.0, 1.0).acos();
    let g = optics.gain(psi2);
    if g == 0.0 {
        return 0.0;
    }
    optics.collection_area_m2 * g / (std::f64::consts::PI * d2_sq) * cos_phi2 * cos_psi2
}

/// Four floor patches of one row, branch-free: the geometry pass
/// (differences, squared norms, square roots, divisions, dot products)
/// runs unconditionally across the lane so it vectorizes; only the
/// `cosᵐ(φ1)` power is guarded, and every reference early-out becomes a
/// skip that leaves the lane slot at literal `0.0` — exactly the value
/// [`patch_contribution_fused`] returns on that path (division by a
/// sub-threshold norm produces non-finite lanes the guards discard). The
/// floor specialization folds the `UP`-normal dot products to single
/// components; the dropped `±0` cross-terms can only flip the sign of a
/// *zero* cosine, and both signed zeros fail the same `> 0` guard. Pinned
/// bitwise against the scalar reference by `tests/soa_identity.rs`.
fn floor_row_lane(
    tx: &Pose,
    rx: &Pose,
    xs: &[f64],
    wy: f64,
    m: f64,
    profile: &RxProfile,
    reflectance: f64,
) -> [f64; LANE] {
    let tp = tx.position;
    let tb = tx.boresight;
    let rp = rx.position;
    let rb = rx.boresight;
    let mut d1_sq = [0.0f64; LANE];
    let mut cos_phi1 = [0.0f64; LANE];
    let mut cos_psi1 = [0.0f64; LANE];
    let mut d2_sq = [0.0f64; LANE];
    let mut cos_phi2 = [0.0f64; LANE];
    let mut cos_psi2 = [0.0f64; LANE];
    for l in 0..LANE {
        // TX → patch leg: v1 = w − tx, dir1 = v1/‖v1‖, the reference's
        // operand order component for component (w.z is literal 0.0).
        let (vx, vy, vz) = (xs[l] - tp.x, wy - tp.y, 0.0 - tp.z);
        let dsq = vx * vx + vy * vy + vz * vz;
        let d = dsq.sqrt();
        let (ux, uy, uz) = (vx / d, vy / d, vz / d);
        d1_sq[l] = dsq;
        cos_phi1[l] = tb.x * ux + tb.y * uy + tb.z * uz;
        cos_psi1[l] = -uz;
        // Patch → RX leg.
        let (sx, sy, sz) = (rp.x - xs[l], rp.y - wy, rp.z - 0.0);
        let dsq2 = sx * sx + sy * sy + sz * sz;
        let d2 = dsq2.sqrt();
        let (ex, ey, ez) = (sx / d2, sy / d2, sz / d2);
        d2_sq[l] = dsq2;
        cos_phi2[l] = ez;
        cos_psi2[l] = rb.x * (-ex) + rb.y * (-ey) + rb.z * (-ez);
    }
    let mut out = [0.0f64; LANE];
    for l in 0..LANE {
        if d1_sq[l] < 1e-9 || cos_phi1[l] <= 0.0 || cos_psi1[l] <= 0.0 {
            continue;
        }
        let first_leg =
            (m + 1.0) / (2.0 * std::f64::consts::PI * d1_sq[l]) * cos_phi1[l].powf(m) * cos_psi1[l];
        let tx_leg = first_leg * reflectance;
        if tx_leg == 0.0 || d2_sq[l] < 1e-9 || cos_phi2[l] <= 0.0 || cos_psi2[l] <= 0.0 {
            continue;
        }
        let g = profile.gain_from_cos_fast(cos_psi2[l]);
        if g == 0.0 {
            continue;
        }
        out[l] = tx_leg
            * (profile.collection_area_m2 * g / (std::f64::consts::PI * d2_sq[l])
                * cos_phi2[l]
                * cos_psi2[l]);
    }
    out
}

/// The fused single-bounce integrand behind the lane kernels: TX leg and
/// RX leg with the shared geometry computed once each (one squared norm +
/// one square root per leg, where the reference normalizes each ray two to
/// three times) and the concentrator peak from the [`RxProfile`].
///
/// Bitwise identical to `patch_tx_leg · patch_rx_leg` — every early-out,
/// operand, and association is replicated; the only representational
/// deltas are signs of zero in negated ray components, which can only flip
/// the sign of a *zero* cosine, and both signed zeros take the same `≤ 0`
/// early-out. Pinned by `tests/soa_identity.rs`.
pub(crate) fn patch_contribution_fused(
    tx: &Pose,
    rx: &Pose,
    w: Vec3,
    normal: Vec3,
    m: f64,
    profile: &RxProfile,
    reflectance: f64,
) -> f64 {
    let v1 = w - tx.position;
    let d1_sq = v1.norm_sq();
    if d1_sq < 1e-9 {
        return 0.0;
    }
    // d² ≥ 1e-9 ⟹ ‖v1‖ ≥ 3.2e-5, so the reference `try_normalized` /
    // `normalized` paths are always in their non-degenerate branch here.
    let dir1 = v1 / d1_sq.sqrt();
    let cos_phi1 = tx.boresight.dot(dir1);
    let cos_psi1 = (-dir1).dot(normal);
    if cos_phi1 <= 0.0 || cos_psi1 <= 0.0 {
        return 0.0;
    }
    let first_leg = (m + 1.0) / (2.0 * std::f64::consts::PI * d1_sq) * cos_phi1.powf(m) * cos_psi1;
    let tx_leg = first_leg * reflectance;
    if tx_leg == 0.0 {
        return 0.0;
    }
    tx_leg * patch_rx_leg_profiled(rx, w, normal, profile)
}

/// Fused patch→RX leg with a precomputed [`RxProfile`] — bitwise identical
/// to [`patch_rx_leg`] (same argument as [`patch_contribution_fused`]).
/// Shared with the [`crate::nlos_cache`] cached sweeps.
pub(crate) fn patch_rx_leg_profiled(rx: &Pose, w: Vec3, normal: Vec3, profile: &RxProfile) -> f64 {
    let v2 = rx.position - w;
    let d2_sq = v2.norm_sq();
    if d2_sq < 1e-9 {
        return 0.0;
    }
    let dir2 = v2 / d2_sq.sqrt();
    let cos_phi2 = dir2.dot(normal);
    let cos_psi2 = rx.boresight.dot(-dir2);
    if cos_phi2 <= 0.0 || cos_psi2 <= 0.0 {
        return 0.0;
    }
    let g = profile.gain_from_cos_fast(cos_psi2);
    if g == 0.0 {
        return 0.0;
    }
    profile.collection_area_m2 * g / (std::f64::consts::PI * d2_sq) * cos_phi2 * cos_psi2
}

/// Contribution density (per m² of floor) of one patch center `w`: the
/// TX leg (with reflectance) times the RX leg, exactly the fused integrand
/// of the original single-routine quadrature (`0.0 · x` and `x · 0.0` are
/// `+0.0` for the finite non-negative legs, so the early-out paths are
/// preserved bit for bit).
fn patch_contribution(
    tx: &Pose,
    rx: &Pose,
    w: Vec3,
    m: f64,
    optics: &RxOptics,
    reflectance: f64,
) -> f64 {
    surface_patch_contribution(tx, rx, w, Vec3::UP, m, optics, reflectance)
}

/// Contribution density of one diffuse patch with an arbitrary surface
/// normal (`Vec3::UP` recovers the floor case).
fn surface_patch_contribution(
    tx: &Pose,
    rx: &Pose,
    w: Vec3,
    normal: Vec3,
    m: f64,
    optics: &RxOptics,
    reflectance: f64,
) -> f64 {
    let tx_leg = patch_tx_leg(tx, w, normal, m, reflectance);
    if tx_leg == 0.0 {
        return 0.0;
    }
    tx_leg * patch_rx_leg(rx, w, normal, optics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lambertian::{lambertian_order, los_gain};
    use vlc_geom::TxGrid;

    fn setup() -> (Room, f64, RxOptics) {
        (
            Room::paper_testbed(),
            lambertian_order(15f64.to_radians()),
            RxOptics::paper(),
        )
    }

    #[test]
    fn neighbor_txs_have_positive_nlos_coupling() {
        let (room, m, optics) = setup();
        let grid = TxGrid::paper(&room);
        let tx = grid.pose(1); // TX2
        let rx = grid.pose(2); // TX3, 0.5 m away, photodiode facing down
        let h = floor_bounce_gain(&tx, &rx, m, &optics, &room, &NlosConfig::default());
        assert!(h > 0.0, "h = {h}");
    }

    #[test]
    fn nlos_is_orders_weaker_than_los() {
        // The reflected pilot is "a very weak signal" (paper §7.1) — it
        // should be far below a direct TX→RX link.
        let (room, m, optics) = setup();
        let grid = TxGrid::paper(&room);
        let tx = grid.pose(1);
        let neighbor = grid.pose(2);
        let floor_rx = Pose::face_up(neighbor.position.x, neighbor.position.y - 0.25, 0.0);
        let h_nlos = floor_bounce_gain(&tx, &neighbor, m, &optics, &room, &NlosConfig::default());
        let h_los = los_gain(&tx, &floor_rx, m, &optics);
        assert!(h_nlos < h_los / 10.0, "nlos {h_nlos} vs los {h_los}");
    }

    #[test]
    fn coupling_decays_with_tx_separation() {
        let (room, m, optics) = setup();
        let grid = TxGrid::paper(&room);
        let tx = grid.pose(0); // TX1 (corner)
        let cfg = NlosConfig::default();
        let near = floor_bounce_gain(&tx, &grid.pose(1), m, &optics, &room, &cfg);
        let far = floor_bounce_gain(&tx, &grid.pose(5), m, &optics, &room, &cfg);
        assert!(near > far, "near {near} far {far}");
    }

    #[test]
    fn gain_scales_linearly_with_reflectance() {
        let (room, m, optics) = setup();
        let grid = TxGrid::paper(&room);
        let cfg = NlosConfig::default();
        let dark = Room {
            floor_reflectance: 0.3,
            ..room
        };
        let h_bright = floor_bounce_gain(&grid.pose(1), &grid.pose(2), m, &optics, &room, &cfg);
        let h_dark = floor_bounce_gain(&grid.pose(1), &grid.pose(2), m, &optics, &dark, &cfg);
        assert!((h_bright / h_dark - 0.6 / 0.3).abs() < 1e-9);
    }

    #[test]
    fn refinement_converges() {
        // Halving the patch size should change the integral by < 5 %.
        let (room, m, optics) = setup();
        let grid = TxGrid::paper(&room);
        let coarse = floor_bounce_gain(
            &grid.pose(1),
            &grid.pose(2),
            m,
            &optics,
            &room,
            &NlosConfig { patch_size_m: 0.10 },
        );
        let fine = floor_bounce_gain(
            &grid.pose(1),
            &grid.pose(2),
            m,
            &optics,
            &room,
            &NlosConfig { patch_size_m: 0.05 },
        );
        assert!(
            ((coarse - fine) / fine).abs() < 0.05,
            "coarse {coarse} fine {fine}"
        );
    }

    #[test]
    fn pilot_detectable_on_less_reflective_floor() {
        // Paper §9: the pilot remains detectable with less-reflective floor
        // materials. Verify the gain degrades gracefully, not to zero.
        let (room, m, optics) = setup();
        let grid = TxGrid::paper(&room);
        let dull = Room {
            floor_reflectance: 0.15,
            ..room
        };
        let h = floor_bounce_gain(
            &grid.pose(1),
            &grid.pose(2),
            m,
            &optics,
            &dull,
            &NlosConfig::default(),
        );
        assert!(h > 0.0);
    }

    #[test]
    fn wall_bounce_is_negligible_for_the_data_channel() {
        // The Eq. 12 validation: for an interior receiver, the summed
        // wall-bounce gain is well under 1 % of the LOS gain of its serving
        // TX — the LOS-only SINR model is sound.
        let (room, m, optics) = setup();
        let grid = TxGrid::paper(&room);
        let rx = Pose::face_up(0.92, 0.92, 0.0);
        let tx = grid.pose(7); // TX8, the serving TX
        let h_los = los_gain(&tx, &rx, m, &optics);
        let h_wall = wall_bounce_gain(&tx, &rx, m, &optics, &room, &NlosConfig::default());
        assert!(h_wall >= 0.0);
        assert!(
            h_wall < 0.01 * h_los,
            "wall bounce {h_wall:e} not negligible vs LOS {h_los:e}"
        );
    }

    #[test]
    fn wall_bounce_grows_near_a_wall() {
        // A receiver hugging a wall collects more wall-reflected light than
        // one at the room center (same TX offset geometry).
        let (room, m, optics) = setup();
        let cfg = NlosConfig { patch_size_m: 0.1 };
        let tx_near = Pose::ceiling(0.75, 0.25, room.height);
        let rx_near = Pose::face_up(0.75, 0.15, 0.0); // 15 cm from the wall
        let tx_mid = Pose::ceiling(1.75, 1.5, room.height);
        let rx_mid = Pose::face_up(1.75, 1.4, 0.0); // room center-ish
        let near = wall_bounce_gain(&tx_near, &rx_near, m, &optics, &room, &cfg);
        let mid = wall_bounce_gain(&tx_mid, &rx_mid, m, &optics, &room, &cfg);
        assert!(near > mid, "near-wall {near:e} !> centered {mid:e}");
    }

    #[test]
    fn upward_receiver_cannot_see_the_floor_bounce() {
        // The geometric reason walls are the only first-order NLOS term for
        // the data channel: floor-reflected light reaches an upward-facing
        // receiver from behind its detector plane.
        let (room, m, optics) = setup();
        let tx = Pose::ceiling(0.75, 0.75, room.height);
        let rx = Pose::face_up(1.25, 0.75, 0.0);
        let h_floor = floor_bounce_gain(&tx, &rx, m, &optics, &room, &NlosConfig::default());
        assert_eq!(h_floor, 0.0);
    }

    #[test]
    fn lane_kernels_match_scalar_references_bitwise() {
        let (room, m, optics) = setup();
        let grid = TxGrid::paper(&room);
        let cfg = NlosConfig { patch_size_m: 0.07 }; // odd grid → scalar tail
        for (tx, rx) in [
            (grid.pose(1), grid.pose(2)),
            (grid.pose(0), grid.pose(5)),
            (
                Pose::ceiling(0.75, 0.25, room.height),
                Pose::face_up(0.75, 0.15, 0.0),
            ),
        ] {
            let floor_fast = floor_bounce_gain(&tx, &rx, m, &optics, &room, &cfg);
            let floor_ref = floor_bounce_gain_scalar(&tx, &rx, m, &optics, &room, &cfg);
            assert_eq!(floor_fast.to_bits(), floor_ref.to_bits());
            let wall_fast = wall_bounce_gain(&tx, &rx, m, &optics, &room, &cfg);
            let wall_ref = wall_bounce_gain_scalar(&tx, &rx, m, &optics, &room, &cfg);
            assert_eq!(wall_fast.to_bits(), wall_ref.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_patch_size_panics() {
        let (room, m, optics) = setup();
        let grid = TxGrid::paper(&room);
        floor_bounce_gain(
            &grid.pose(0),
            &grid.pose(1),
            m,
            &optics,
            &room,
            &NlosConfig { patch_size_m: 0.0 },
        );
    }
}
