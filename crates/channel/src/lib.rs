//! Optical channel models for the DenseVLC reproduction.
//!
//! Everything DenseVLC decides — which LEDs serve which receiver, at what
//! swing — flows from the optical channel between each TX/RX pair. This
//! crate provides:
//!
//! * [`lambertian`] — the line-of-sight Lambertian path loss of paper Eq. 2,
//!   parameterized by the LED's half-power semi-angle and the receiver's
//!   optics ([`RxOptics`]).
//! * [`photometry`] — luminous intensity and illuminance (lux) computations
//!   that reproduce the paper's Fig. 5 illuminance map and the ISO 8995-1
//!   uniformity checks.
//! * [`nlos`] — single-bounce (floor-reflection) channel gains, the physical
//!   substrate of DenseVLC's over-the-air synchronization (paper §6.2).
//! * [`noise`] — receiver noise (single-sided spectral density `N0`, AWGN
//!   sampling via an in-tree Box–Muller transform, shot noise).
//! * [`blockage`] — cylindrical occluders for the blockage study the paper
//!   sketches in §9.
//! * [`matrix`] — the N × M channel matrix `H` assembled from a TX grid and
//!   receiver poses, the direct input of the allocation algorithms.
//! * [`ambient`] — the DC photocurrent from the grid's bias illumination
//!   and the shot noise it contributes.
//! * [`nlos_cache`] — TX-side precomputation of the single-bounce source→
//!   patch leg ([`NlosTxCache`]), bitwise identical to the direct
//!   quadratures at roughly half the per-call cost.
//! * [`incremental`] — dirty-column [`ChannelMatrix`] updates
//!   ([`ChannelUpdater`]) that recompute only the receivers that moved.
//! * [`fov`] — sparse FOV culling: a conservative per-RX bitset of in-cone
//!   TXs ([`FovMask`]) so sweeps and solvers skip geometrically-zero links.
//! * [`soa`] — structure-of-arrays views: the per-RX transpose
//!   ([`ChannelSoA`]), CSR live-link lists ([`SparseChannelView`]), and
//!   split pose coordinates ([`PoseSoA`]) behind the lane-batched kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ambient;
pub mod blockage;
pub mod fov;
pub mod incremental;
pub mod lambertian;
pub mod matrix;
pub mod nlos;
pub mod nlos_cache;
pub mod noise;
pub mod photometry;
pub mod soa;

pub use blockage::CylinderBlocker;
pub use fov::FovMask;
pub use incremental::{ChannelUpdate, ChannelUpdater};
pub use lambertian::{lambertian_order, los_gain, los_gain_profiled, RxOptics, RxProfile};
pub use matrix::ChannelMatrix;
pub use nlos_cache::NlosTxCache;
pub use noise::{AwgnChannel, NoiseParams};
pub use photometry::{IlluminanceMap, IlluminanceStats};
pub use soa::{ChannelSoA, PoseSoA, SparseChannelView};
