//! Structure-of-arrays views of the channel for the hot kernels.
//!
//! [`crate::ChannelMatrix`] stores gains row-major by **TX**, which is the
//! natural layout for sounding (one row per emitter) but the wrong one for
//! the solver: every objective/gradient evaluation walks per-**RX** columns
//! with stride `n_rx`. [`ChannelSoA`] is the transpose — contiguous per-RX
//! gain rows — and [`SparseChannelView`] compounds it with CSR-style live
//! index lists (from the zero pattern, optionally intersected with a
//! [`crate::FovMask`]) so the solver iterates only links that can carry
//! signal. [`PoseSoA`] splits pose coordinates into parallel arrays for the
//! lane-batched geometry sweeps.
//!
//! None of these views change a single bit of any result: they are
//! re-orderings of *loads*, not of the fixed-order partial sums (see
//! docs/BENCHMARKING.md §SoA & sparse channel for the ordering contract).

use crate::fov::FovMask;
use crate::matrix::ChannelMatrix;
use vlc_geom::Pose;

/// Fixed width of the f64 lane batches used by the fused kernels: four
/// independent accumulators or stores per step, scalar tail, never a
/// reassociation of a fixed-order partial sum across lanes.
pub(crate) const LANE: usize = 4;

/// The transpose of [`ChannelMatrix`]: contiguous per-receiver gain rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelSoA {
    n_tx: usize,
    n_rx: usize,
    /// `rx_gains[r * n_tx + t] == matrix.gain(t, r)`.
    rx_gains: Vec<f64>,
}

impl ChannelSoA {
    /// Transpose a dense channel matrix into per-RX rows.
    pub fn from_matrix(matrix: &ChannelMatrix) -> Self {
        let n_tx = matrix.n_tx();
        let n_rx = matrix.n_rx();
        let mut rx_gains = vec![0.0; n_tx * n_rx];
        for t in 0..n_tx {
            for (r, &g) in matrix.tx_row(t).iter().enumerate() {
                rx_gains[r * n_tx + t] = g;
            }
        }
        ChannelSoA {
            n_tx,
            n_rx,
            rx_gains,
        }
    }

    /// Number of transmitters.
    pub fn n_tx(&self) -> usize {
        self.n_tx
    }

    /// Number of receivers.
    pub fn n_rx(&self) -> usize {
        self.n_rx
    }

    /// The contiguous gain row for receiver `rx`, indexed by TX.
    #[inline]
    pub fn rx_row(&self, rx: usize) -> &[f64] {
        &self.rx_gains[rx * self.n_tx..(rx + 1) * self.n_tx]
    }

    /// Random-access gain lookup, `== matrix.gain(tx, rx)`.
    #[inline]
    pub fn gain(&self, tx: usize, rx: usize) -> f64 {
        self.rx_gains[rx * self.n_tx + tx]
    }
}

/// CSR-style sparse view of the live links of a channel matrix, in both
/// orientations: per-RX ascending TX lists (objective accumulation) and
/// per-TX ascending RX lists (gradient rows).
///
/// A link is live iff its gain is nonzero **and** — when built with
/// [`Self::from_mask`] — the FOV mask keeps it. Skipping exactly-zero
/// terms of a non-negative fixed-order sum is bitwise neutral (`x + 0.0
/// == x` for every `x ≥ +0.0`), which is what lets the solver iterate
/// these lists without changing a single result bit.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseChannelView {
    n_tx: usize,
    n_rx: usize,
    rx_ptr: Vec<usize>,
    rx_tx_idx: Vec<u32>,
    rx_gain: Vec<f64>,
    tx_ptr: Vec<usize>,
    tx_rx_idx: Vec<u32>,
    tx_gain: Vec<f64>,
}

impl SparseChannelView {
    fn build<F: Fn(usize, usize) -> bool>(matrix: &ChannelMatrix, keep: F) -> Self {
        let n_tx = matrix.n_tx();
        let n_rx = matrix.n_rx();
        let mut rx_ptr = Vec::with_capacity(n_rx + 1);
        let mut rx_tx_idx = Vec::new();
        let mut rx_gain = Vec::new();
        rx_ptr.push(0);
        for r in 0..n_rx {
            for t in 0..n_tx {
                let g = matrix.tx_row(t)[r];
                if g != 0.0 && keep(t, r) {
                    rx_tx_idx.push(t as u32);
                    rx_gain.push(g);
                }
            }
            rx_ptr.push(rx_tx_idx.len());
        }
        let mut tx_ptr = Vec::with_capacity(n_tx + 1);
        let mut tx_rx_idx = Vec::new();
        let mut tx_gain = Vec::new();
        tx_ptr.push(0);
        for t in 0..n_tx {
            for (r, &g) in matrix.tx_row(t).iter().enumerate() {
                if g != 0.0 && keep(t, r) {
                    tx_rx_idx.push(r as u32);
                    tx_gain.push(g);
                }
            }
            tx_ptr.push(tx_rx_idx.len());
        }
        SparseChannelView {
            n_tx,
            n_rx,
            rx_ptr,
            rx_tx_idx,
            rx_gain,
            tx_ptr,
            tx_rx_idx,
            tx_gain,
        }
    }

    /// Live set from the zero pattern of the matrix alone.
    pub fn from_matrix(matrix: &ChannelMatrix) -> Self {
        Self::build(matrix, |_, _| true)
    }

    /// Live set from the zero pattern intersected with a [`FovMask`].
    /// Since the mask is conservative, any masked-out link has zero gain
    /// and the result equals [`Self::from_matrix`] — this constructor just
    /// skips the gain loads for culled links.
    pub fn from_mask(matrix: &ChannelMatrix, mask: &FovMask) -> Self {
        assert_eq!(mask.n_tx(), matrix.n_tx(), "mask/matrix TX count mismatch");
        assert_eq!(mask.n_rx(), matrix.n_rx(), "mask/matrix RX count mismatch");
        Self::build(matrix, |t, r| mask.is_live(t, r))
    }

    /// Number of transmitters.
    pub fn n_tx(&self) -> usize {
        self.n_tx
    }

    /// Number of receivers.
    pub fn n_rx(&self) -> usize {
        self.n_rx
    }

    /// Total number of live links.
    pub fn live_links(&self) -> usize {
        self.rx_gain.len()
    }

    /// Ascending live TX indices and matching gains for receiver `rx`.
    #[inline]
    pub fn rx_live(&self, rx: usize) -> (&[u32], &[f64]) {
        let (a, b) = (self.rx_ptr[rx], self.rx_ptr[rx + 1]);
        (&self.rx_tx_idx[a..b], &self.rx_gain[a..b])
    }

    /// Ascending live RX indices and matching gains for transmitter `tx`.
    #[inline]
    pub fn tx_live(&self, tx: usize) -> (&[u32], &[f64]) {
        let (a, b) = (self.tx_ptr[tx], self.tx_ptr[tx + 1]);
        (&self.tx_rx_idx[a..b], &self.tx_gain[a..b])
    }

    /// Whether transmitter `tx` has any live link at all. Gradient rows of
    /// dead TXs are exactly `+0.0` and can be zero-filled without
    /// evaluation.
    #[inline]
    pub fn tx_any_live(&self, tx: usize) -> bool {
        self.tx_ptr[tx + 1] > self.tx_ptr[tx]
    }
}

/// Pose coordinates split into parallel arrays for the lane kernels.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PoseSoA {
    /// Position x components.
    pub px: Vec<f64>,
    /// Position y components.
    pub py: Vec<f64>,
    /// Position z components.
    pub pz: Vec<f64>,
    /// Boresight x components.
    pub bx: Vec<f64>,
    /// Boresight y components.
    pub by: Vec<f64>,
    /// Boresight z components.
    pub bz: Vec<f64>,
}

impl PoseSoA {
    /// Split an array-of-structs pose slice into coordinate arrays.
    pub fn from_poses(poses: &[Pose]) -> Self {
        let mut soa = PoseSoA::default();
        for p in poses {
            soa.px.push(p.position.x);
            soa.py.push(p.position.y);
            soa.pz.push(p.position.z);
            soa.bx.push(p.boresight.x);
            soa.by.push(p.boresight.y);
            soa.bz.push(p.boresight.z);
        }
        soa
    }

    /// Number of poses.
    pub fn len(&self) -> usize {
        self.px.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.px.is_empty()
    }

    /// Reassemble pose `i` (test/debug helper).
    pub fn pose(&self, i: usize) -> Pose {
        Pose {
            position: vlc_geom::Vec3::new(self.px[i], self.py[i], self.pz[i]),
            boresight: vlc_geom::Vec3::new(self.bx[i], self.by[i], self.bz[i]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lambertian::RxOptics;
    use vlc_geom::{Room, TxGrid};
    use vlc_par::{Jobs, Pool};
    use vlc_trace::Span;

    fn small_matrix() -> ChannelMatrix {
        let room = Room::paper_testbed();
        let grid = TxGrid::paper(&room);
        let receivers = vec![Pose::face_up(0.75, 2.25, 0.8), Pose::face_up(2.0, 1.0, 0.8)];
        ChannelMatrix::compute_with_blockage_pooled(
            &grid,
            &receivers,
            15f64.to_radians(),
            &RxOptics::paper(),
            &[],
            &Pool::new(Jobs::serial()),
            &Span::noop(),
        )
    }

    #[test]
    fn soa_is_the_exact_transpose() {
        let m = small_matrix();
        let soa = ChannelSoA::from_matrix(&m);
        for t in 0..m.n_tx() {
            for r in 0..m.n_rx() {
                assert_eq!(m.gain(t, r).to_bits(), soa.gain(t, r).to_bits());
                assert_eq!(soa.rx_row(r)[t].to_bits(), m.gain(t, r).to_bits());
            }
        }
    }

    #[test]
    fn sparse_view_carries_exactly_the_nonzero_links() {
        let m = small_matrix();
        let view = SparseChannelView::from_matrix(&m);
        let nonzero = m.iter().filter(|&(_, _, g)| g != 0.0).count();
        assert_eq!(view.live_links(), nonzero);
        for r in 0..m.n_rx() {
            let (idx, gains) = view.rx_live(r);
            assert!(idx.windows(2).all(|w| w[0] < w[1]), "ascending TX order");
            for (&t, &g) in idx.iter().zip(gains) {
                assert_eq!(g.to_bits(), m.gain(t as usize, r).to_bits());
            }
        }
        for t in 0..m.n_tx() {
            let (idx, gains) = view.tx_live(t);
            assert!(idx.windows(2).all(|w| w[0] < w[1]), "ascending RX order");
            for (&r, &g) in idx.iter().zip(gains) {
                assert_eq!(g.to_bits(), m.gain(t, r as usize).to_bits());
            }
            assert_eq!(view.tx_any_live(t), !idx.is_empty());
        }
    }

    #[test]
    fn mask_view_equals_zero_pattern_view() {
        let m = small_matrix();
        let mask = FovMask::all_live(m.n_tx(), m.n_rx());
        assert_eq!(
            SparseChannelView::from_mask(&m, &mask),
            SparseChannelView::from_matrix(&m)
        );
    }

    #[test]
    fn pose_soa_round_trips() {
        let poses = vec![Pose::ceiling(0.5, 1.0, 2.8), Pose::face_up(2.0, 1.0, 0.8)];
        let soa = PoseSoA::from_poses(&poses);
        assert_eq!(soa.len(), 2);
        for (i, p) in poses.iter().enumerate() {
            assert_eq!(soa.pose(i), *p);
        }
    }
}
