//! MAC layer and controller for the DenseVLC reproduction.
//!
//! The controller (paper §3.2) drives the whole system: it schedules pilot
//! rounds so receivers can measure every TX's channel, collects the reports
//! (over the WiFi uplink), runs the decision logic (the SJR heuristic from
//! `vlc-alloc`), and multicasts data frames over Ethernet to the selected
//! TXs, appointing one leading TX per beamspot for the NLOS-VLC
//! synchronization. This crate implements:
//!
//! * [`protocol`] — the controller ↔ TX ↔ RX message vocabulary.
//! * [`schedule`] — the time-division pilot schedule for channel sounding.
//! * [`backhaul`] — latency/jitter/loss models for the Ethernet multicast
//!   downlink and the WiFi report/ACK uplink.
//! * [`controller`] — the decision logic producing [`BeamspotPlan`]s.
//! * [`round`] — the full adaptation-round timeline (sounding → report →
//!   decide → reconfigure) that bounds mobility tracking.
//! * [`wire`] — the minimal byte layouts of the WiFi-uplink messages.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backhaul;
pub mod controller;
pub mod protocol;
pub mod round;
pub mod schedule;
pub mod wire;

pub use backhaul::{EthernetMulticast, WifiUplink};
pub use controller::{BeamspotPlan, Controller, ControllerConfig, PlanCache};
pub use round::{simulate_round, RoundTimeline};
pub use schedule::PilotSchedule;
