//! The controller's decision logic (paper §3.2, §7.2).
//!
//! After each channel-measurement round the controller rebuilds the channel
//! matrix from the receivers' reports, runs the SJR ranking heuristic under
//! the configured power budget, groups the selected TXs into per-receiver
//! beamspots, and appoints each beamspot's highest-ranked TX as its leading
//! TX for NLOS-VLC synchronization.

use crate::protocol::{ChannelReport, RxId, TxId};
use serde::{Deserialize, Serialize};
use vlc_alloc::heuristic::{allocate_by_ranking, rank_by_sjr};
use vlc_alloc::model::Allocation;
use vlc_alloc::HeuristicConfig;
use vlc_channel::ChannelMatrix;
use vlc_led::LedParams;
use vlc_telemetry::Registry;
use vlc_trace::Span;

/// One CFM-MIMO beamspot: the TXs jointly serving one receiver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Beamspot {
    /// The served receiver.
    pub rx: RxId,
    /// The TXs in the beamspot, best-ranked first.
    pub txs: Vec<TxId>,
    /// The leading TX that emits the synchronization pilot.
    pub leader: TxId,
}

/// The controller's output for one adaptation round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeamspotPlan {
    /// One beamspot per served receiver (receivers with no assigned TX
    /// under the current budget are absent).
    pub beamspots: Vec<Beamspot>,
    /// The full swing allocation backing the plan.
    pub allocation: Allocation,
}

impl BeamspotPlan {
    /// The beamspot serving `rx`, if any.
    pub fn beamspot_for(&self, rx: RxId) -> Option<&Beamspot> {
        self.beamspots.iter().find(|b| b.rx == rx)
    }

    /// All communicating TXs across beamspots.
    pub fn active_txs(&self) -> Vec<TxId> {
        let mut txs: Vec<TxId> = self
            .beamspots
            .iter()
            .flat_map(|b| b.txs.iter().copied())
            .collect();
        txs.sort_unstable();
        txs
    }
}

/// Controller configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Heuristic configuration (κ etc.).
    pub heuristic: HeuristicConfig,
    /// Communication power budget in watts.
    pub budget_w: f64,
    /// LED parameters (for power accounting).
    pub led: LedParams,
}

impl ControllerConfig {
    /// The paper's defaults: κ = 1.3, CREE XT-E.
    pub fn paper(budget_w: f64) -> Self {
        ControllerConfig {
            heuristic: HeuristicConfig::paper(),
            budget_w,
            led: LedParams::cree_xte_paper(),
        }
    }
}

/// The DenseVLC controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Controller {
    /// Configuration.
    pub config: ControllerConfig,
    n_tx: usize,
    n_rx: usize,
    /// Latest per-RX reports, indexed by RX.
    reports: Vec<Option<ChannelReport>>,
}

impl Controller {
    /// Creates a controller for an `n_tx × n_rx` deployment.
    pub fn new(config: ControllerConfig, n_tx: usize, n_rx: usize) -> Self {
        assert!(n_tx > 0 && n_rx > 0, "deployment must have TXs and RXs");
        Controller {
            config,
            n_tx,
            n_rx,
            reports: vec![None; n_rx],
        }
    }

    /// Ingests a channel report from a receiver.
    ///
    /// # Panics
    /// Panics if the report's shape doesn't match the deployment.
    pub fn ingest_report(&mut self, report: ChannelReport) {
        self.ingest_report_instrumented(report, &Registry::noop());
    }

    /// [`Self::ingest_report`] with telemetry: ingest time into the
    /// `mac.ingest_s` histogram and a `mac.reports_ingested` count.
    pub fn ingest_report_instrumented(&mut self, report: ChannelReport, telemetry: &Registry) {
        let _ingest_span = telemetry.span("mac.ingest_s");
        telemetry.counter("mac.reports_ingested").inc();
        assert!(report.rx < self.n_rx, "unknown RX {}", report.rx);
        assert_eq!(
            report.snr_per_tx.len(),
            self.n_tx,
            "report covers {} TXs, deployment has {}",
            report.snr_per_tx.len(),
            self.n_tx
        );
        let rx = report.rx;
        self.reports[rx] = Some(report);
    }

    /// True when every receiver has reported at least once.
    pub fn all_reported(&self) -> bool {
        self.reports.iter().all(Option::is_some)
    }

    /// Rebuilds the estimated channel matrix from the latest reports.
    /// Unreported receivers contribute zero gains.
    pub fn estimated_channel(&self, amp_per_gain_over_noise: f64) -> ChannelMatrix {
        self.estimated_channel_instrumented(amp_per_gain_over_noise, &Registry::noop())
    }

    /// [`Self::estimated_channel`] with telemetry: estimation time into the
    /// `mac.estimate_s` histogram.
    pub fn estimated_channel_instrumented(
        &self,
        amp_per_gain_over_noise: f64,
        telemetry: &Registry,
    ) -> ChannelMatrix {
        let _estimate_span = telemetry.span("mac.estimate_s");
        let mut gains = vec![0.0; self.n_tx * self.n_rx];
        for (rx, report) in self.reports.iter().enumerate() {
            if let Some(rep) = report {
                for (tx, g) in rep
                    .estimated_gains(amp_per_gain_over_noise)
                    .into_iter()
                    .enumerate()
                {
                    gains[tx * self.n_rx + rx] = g;
                }
            }
        }
        ChannelMatrix::from_gains(self.n_tx, self.n_rx, gains)
    }

    /// Runs the decision logic on a channel matrix, producing the beamspot
    /// plan (paper §7.2 "Decision logic": `Isw ∈ {0, Isw,max}` per TX based
    /// on the ranking).
    pub fn plan(&self, channel: &ChannelMatrix) -> BeamspotPlan {
        self.plan_instrumented(channel, &Registry::noop())
    }

    /// [`Self::plan`] with telemetry: total plan time into the `mac.plan_s`
    /// histogram with the ranking and allocation phases broken out
    /// (`mac.rank_s`, `mac.allocate_s`), a `mac.rounds_planned` count, and —
    /// when the budget serves no receiver — a `mac.infeasible_rounds` count
    /// plus an `infeasible_round` event.
    pub fn plan_instrumented(&self, channel: &ChannelMatrix, telemetry: &Registry) -> BeamspotPlan {
        self.plan_traced(channel, telemetry, &Span::noop())
    }

    /// [`Self::plan_instrumented`] recording a `mac.plan` span under
    /// `parent`, with `mac.rank` and `mac.allocate` children for the two
    /// decision phases. With a noop parent this is the instrumented path
    /// plus one branch per span site.
    pub fn plan_traced(
        &self,
        channel: &ChannelMatrix,
        telemetry: &Registry,
        parent: &Span,
    ) -> BeamspotPlan {
        assert_eq!(channel.n_tx(), self.n_tx);
        assert_eq!(channel.n_rx(), self.n_rx);
        let plan_trace = parent.child("mac.plan");
        plan_trace.attr("budget_w", &format!("{}", self.config.budget_w));
        let _plan_span = telemetry.span("mac.plan_s");
        telemetry.counter("mac.rounds_planned").inc();
        let ranking = {
            let _rank_trace = plan_trace.child("mac.rank");
            let _rank_span = telemetry.span("mac.rank_s");
            rank_by_sjr(channel, &self.config.heuristic)
        };
        let allocation = {
            let _allocate_trace = plan_trace.child("mac.allocate");
            let _allocate_span = telemetry.span("mac.allocate_s");
            allocate_by_ranking(
                &ranking,
                self.n_tx,
                self.n_rx,
                &self.config.led,
                self.config.budget_w,
                &self.config.heuristic,
            )
        };
        // Group active TXs into beamspots, preserving rank order so the
        // first TX of each group (the best channel) becomes the leader.
        let mut beamspots: Vec<Beamspot> = Vec::new();
        for entry in &ranking {
            if allocation.swing(entry.tx, entry.rx) <= 0.0 {
                continue;
            }
            match beamspots.iter_mut().find(|b| b.rx == entry.rx) {
                Some(spot) => spot.txs.push(entry.tx),
                None => beamspots.push(Beamspot {
                    rx: entry.rx,
                    txs: vec![entry.tx],
                    leader: entry.tx,
                }),
            }
        }
        if beamspots.is_empty() {
            telemetry.counter("mac.infeasible_rounds").inc();
            telemetry.event(
                "mac.controller",
                "infeasible_round",
                &[("budget_w", &format!("{}", self.config.budget_w))],
            );
        }
        plan_trace.attr("beamspots", &beamspots.len().to_string());
        BeamspotPlan {
            beamspots,
            allocation,
        }
    }

    /// [`Self::plan`] through a [`PlanCache`]: an unchanged channel returns
    /// the previous plan without re-ranking.
    pub fn plan_cached(&self, channel: &ChannelMatrix, cache: &mut PlanCache) -> BeamspotPlan {
        self.plan_cached_traced(channel, cache, &Registry::noop(), &Span::noop())
    }

    /// [`Self::plan_cached`] with telemetry and tracing. A hit bumps
    /// `mac.plan.cache_hits` and records a `mac.plan.cached` span; a miss
    /// bumps `mac.plan.cache_misses` and runs [`Self::plan_traced`].
    pub fn plan_cached_traced(
        &self,
        channel: &ChannelMatrix,
        cache: &mut PlanCache,
        telemetry: &Registry,
        parent: &Span,
    ) -> BeamspotPlan {
        if let Some((cached_channel, plan)) = &cache.last {
            if cached_channel == channel {
                telemetry.counter("mac.plan.cache_hits").inc();
                let span = parent.child("mac.plan.cached");
                span.attr("beamspots", &plan.beamspots.len().to_string());
                return plan.clone();
            }
        }
        telemetry.counter("mac.plan.cache_misses").inc();
        let plan = self.plan_traced(channel, telemetry, parent);
        cache.last = Some((channel.clone(), plan.clone()));
        plan
    }
}

/// Tick-to-tick plan cache for [`Controller::plan_cached`].
///
/// Remembers the exact channel matrix the last plan was computed on; the
/// decision logic is a pure function of the channel (and the static
/// config), so an *identical* matrix — which the incremental channel
/// engine reproduces bitwise for a static world — means the previous plan
/// is still the answer. State is per-run: create one cache per simulation
/// run so replays start cold and stay reproducible.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    last: Option<(ChannelMatrix, BeamspotPlan)>,
}

impl PlanCache {
    /// An empty cache: the first plan is a miss.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the cache holds a previous plan.
    pub fn is_warm(&self) -> bool {
        self.last.is_some()
    }

    /// Drops the cached plan; the next one recomputes.
    pub fn invalidate(&mut self) {
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_channel::RxOptics;
    use vlc_geom::{Pose, Room, TxGrid};
    use vlc_led::power::dynamic_resistance;

    fn channel() -> ChannelMatrix {
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        let rxs = vec![
            Pose::face_up(0.92, 0.92, 0.8),
            Pose::face_up(1.65, 0.65, 0.8),
            Pose::face_up(0.72, 1.93, 0.8),
            Pose::face_up(1.99, 1.69, 0.8),
        ];
        ChannelMatrix::compute(&grid, &rxs, 15f64.to_radians(), &RxOptics::paper())
    }

    fn controller(budget_w: f64) -> Controller {
        Controller::new(ControllerConfig::paper(budget_w), 36, 4)
    }

    #[test]
    fn plan_groups_txs_into_beamspots_with_leaders() {
        let ctl = controller(1.2);
        let plan = ctl.plan(&channel());
        assert!(!plan.beamspots.is_empty());
        for spot in &plan.beamspots {
            assert_eq!(spot.leader, spot.txs[0], "leader is the best-ranked TX");
            assert!(!spot.txs.is_empty());
            // Every TX in the spot has full swing toward this RX.
            for &tx in &spot.txs {
                assert!(plan.allocation.swing(tx, spot.rx) > 0.0);
            }
        }
    }

    #[test]
    fn plan_respects_power_budget() {
        let ctl = controller(0.5);
        let plan = ctl.plan(&channel());
        let led = LedParams::cree_xte_paper();
        let r = dynamic_resistance(&led);
        let power: f64 = (0..36)
            .map(|t| r * (plan.allocation.tx_total_swing(t) / 2.0).powi(2))
            .sum();
        assert!(power <= 0.5 + 1e-9, "power {power}");
        // 0.5 W buys six full-swing TXs.
        assert_eq!(plan.active_txs().len(), 6);
    }

    #[test]
    fn beamspots_are_disjoint() {
        let ctl = controller(2.0);
        let plan = ctl.plan(&channel());
        let txs = plan.active_txs();
        let mut dedup = txs.clone();
        dedup.dedup();
        assert_eq!(txs, dedup, "a TX appears in two beamspots");
    }

    #[test]
    fn zero_budget_plan_is_counted_infeasible() {
        let ctl = controller(0.0);
        let telemetry = Registry::new();
        let plan = ctl.plan_instrumented(&channel(), &telemetry);
        assert!(plan.beamspots.is_empty());
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("mac.infeasible_rounds"), Some(1));
        assert_eq!(snap.counter("mac.rounds_planned"), Some(1));
        let event = snap
            .events_of_kind("infeasible_round")
            .next()
            .expect("infeasible event recorded");
        assert_eq!(event.target, "mac.controller");
        assert!(event
            .fields
            .iter()
            .any(|(k, v)| k == "budget_w" && v == "0"));
    }

    #[test]
    fn feasible_plan_records_phases_without_infeasible_signal() {
        let ctl = controller(1.2);
        let telemetry = Registry::new();
        let plan = ctl.plan_instrumented(&channel(), &telemetry);
        assert!(!plan.beamspots.is_empty());
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("mac.infeasible_rounds"), None);
        assert_eq!(snap.events_of_kind("infeasible_round").count(), 0);
        for phase in ["mac.plan_s", "mac.rank_s", "mac.allocate_s"] {
            assert!(
                snap.histogram(phase).is_some_and(|h| h.count == 1),
                "{phase} not timed"
            );
        }
    }

    #[test]
    fn traced_plan_records_the_phase_tree() {
        use vlc_telemetry::ManualClock;
        use vlc_trace::Tracer;

        let ctl = controller(1.2);
        let tracer = Tracer::with_clock(ManualClock::new());
        let root = tracer.root("round");
        ctl.plan_traced(&channel(), &Registry::noop(), &root);
        drop(root);
        let snap = tracer.snapshot();
        let plan = snap.find("mac.plan").expect("plan span recorded");
        let phases: Vec<&str> = snap
            .children_of(plan.id)
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(phases, ["mac.rank", "mac.allocate"]);
        assert!(plan.attrs.iter().any(|(k, _)| k == "beamspots"));
    }

    #[test]
    fn untraced_plan_records_no_spans() {
        let ctl = controller(1.2);
        // The default path: noop registry and noop parent span. Nothing
        // may be recorded anywhere — this is the zero-cost opt-out.
        let plan = ctl.plan_instrumented(&channel(), &Registry::noop());
        assert!(!plan.beamspots.is_empty());
    }

    #[test]
    fn report_roundtrip_reconstructs_plan() {
        // Feed the controller reports derived from the true channel and
        // check the plan matches the one computed on the truth.
        let ch = channel();
        let mut ctl = controller(1.0);
        let cal = 2e6; // amplitude per unit gain / noise RMS
        for rx in 0..4 {
            let snrs: Vec<f64> = (0..36).map(|tx| (cal * ch.gain(tx, rx)).powi(2)).collect();
            ctl.ingest_report(ChannelReport {
                rx,
                snr_per_tx: snrs,
            });
        }
        assert!(ctl.all_reported());
        let est = ctl.estimated_channel(cal);
        let plan_est = ctl.plan(&est);
        let plan_true = ctl.plan(&ch);
        assert_eq!(plan_est.active_txs(), plan_true.active_txs());
    }

    #[test]
    fn missing_reports_leave_rx_unserved() {
        let ch = channel();
        let mut ctl = controller(1.0);
        let cal = 2e6;
        for rx in 0..3 {
            // RX4 never reports.
            let snrs: Vec<f64> = (0..36).map(|tx| (cal * ch.gain(tx, rx)).powi(2)).collect();
            ctl.ingest_report(ChannelReport {
                rx,
                snr_per_tx: snrs,
            });
        }
        assert!(!ctl.all_reported());
        let est = ctl.estimated_channel(cal);
        let plan = ctl.plan(&est);
        assert!(
            plan.beamspot_for(3).is_none(),
            "unreported RX must not be served"
        );
    }

    #[test]
    fn beamspot_lookup() {
        let ctl = controller(1.2);
        let plan = ctl.plan(&channel());
        for spot in &plan.beamspots {
            assert_eq!(plan.beamspot_for(spot.rx).expect("present").rx, spot.rx);
        }
        assert!(plan.beamspot_for(99).is_none());
    }

    #[test]
    fn plan_cache_hits_on_identical_channel_and_misses_on_change() {
        let ctl = controller(1.2);
        let ch = channel();
        let telemetry = Registry::new();
        let mut cache = PlanCache::new();
        let first = ctl.plan_cached_traced(&ch, &mut cache, &telemetry, &Span::noop());
        let second = ctl.plan_cached_traced(&ch, &mut cache, &telemetry, &Span::noop());
        assert_eq!(second, first, "hit returns the identical plan");
        assert_eq!(second, ctl.plan(&ch), "and it matches an uncached plan");
        let moved = ch.map(|g| g * 0.99);
        let third = ctl.plan_cached_traced(&moved, &mut cache, &telemetry, &Span::noop());
        assert_eq!(third, ctl.plan(&moved));
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("mac.plan.cache_hits"), Some(1));
        assert_eq!(snap.counter("mac.plan.cache_misses"), Some(2));
        assert_eq!(snap.counter("mac.rounds_planned"), Some(2));
    }

    #[test]
    fn plan_cache_invalidation_forces_a_miss() {
        let ctl = controller(1.2);
        let ch = channel();
        let mut cache = PlanCache::new();
        ctl.plan_cached(&ch, &mut cache);
        assert!(cache.is_warm());
        cache.invalidate();
        assert!(!cache.is_warm());
        let telemetry = Registry::new();
        ctl.plan_cached_traced(&ch, &mut cache, &telemetry, &Span::noop());
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("mac.plan.cache_misses"), Some(1));
    }

    #[test]
    #[should_panic(expected = "unknown RX")]
    fn report_from_unknown_rx_panics() {
        let mut ctl = controller(1.0);
        ctl.ingest_report(ChannelReport {
            rx: 9,
            snr_per_tx: vec![0.0; 36],
        });
    }

    #[test]
    #[should_panic(expected = "report covers")]
    fn wrong_report_shape_panics() {
        let mut ctl = controller(1.0);
        ctl.ingest_report(ChannelReport {
            rx: 0,
            snr_per_tx: vec![0.0; 4],
        });
    }
}
