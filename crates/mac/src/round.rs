//! The timeline of one full adaptation round (paper §3.2's MAC protocol).
//!
//! A round is: (1) the controller sounds every TX in TDM slots; (2) each
//! receiver reports its measurements over WiFi; (3) the decision logic
//! runs (heuristic: ~0.07 s in the paper, microseconds here; optimal:
//! minutes); (4) the new beamspot configuration is multicast to the TXs.
//! The total bounds how fast DenseVLC can track receiver mobility — the
//! §5 complexity argument is really about this loop.

use crate::backhaul::{EthernetMulticast, WifiUplink};
use crate::schedule::PilotSchedule;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Durations of one adaptation round, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundTimeline {
    /// TDM channel sounding over all scheduled TXs.
    pub sounding_s: f64,
    /// Slowest receiver's report delivery (with retries) over WiFi.
    pub reporting_s: f64,
    /// Decision-logic runtime.
    pub decision_s: f64,
    /// Multicast reconfiguration delivery to the slowest TX host.
    pub reconfiguration_s: f64,
}

impl RoundTimeline {
    /// Total round duration.
    pub fn total_s(&self) -> f64 {
        self.sounding_s + self.reporting_s + self.decision_s + self.reconfiguration_s
    }

    /// The highest receiver speed (m/s) the round can track if the channel
    /// must be re-planned every time a receiver moves `coherence_m` meters
    /// (half a beam footprint, say 0.25 m).
    pub fn max_tracking_speed(&self, coherence_m: f64) -> f64 {
        assert!(coherence_m > 0.0, "coherence distance must be positive");
        coherence_m / self.total_s()
    }
}

/// Simulates one adaptation round's timeline.
///
/// `n_rx` receivers report independently over `wifi` (3 retries); the
/// configuration is multicast over `eth` to `n_hosts` TX hosts and the
/// slowest delivery gates the reconfiguration. Lost reports (after
/// retries) stall the round by a full retry timeout — visible as an
/// outlier tail in repeated simulations, exactly like a real deployment.
pub fn simulate_round<R: Rng + ?Sized>(
    schedule: &PilotSchedule,
    n_rx: usize,
    n_hosts: usize,
    decision_s: f64,
    wifi: &WifiUplink,
    eth: &EthernetMulticast,
    rng: &mut R,
) -> RoundTimeline {
    assert!(n_rx > 0 && n_hosts > 0, "need receivers and hosts");
    assert!(decision_s >= 0.0, "decision time cannot be negative");
    let sounding_s = schedule.round_duration_s();
    let reporting_s = (0..n_rx)
        .map(|_| {
            wifi.delivery_with_retries_s(3, rng)
                // A fully lost report costs the retry budget and the round
                // proceeds with stale data for that RX.
                .unwrap_or(wifi.base_latency_s * 8.0)
        })
        .fold(0.0, f64::max);
    let reconfiguration_s = (0..n_hosts)
        .map(|_| eth.delivery_s(rng))
        .fold(0.0, f64::max);
    RoundTimeline {
        sounding_s,
        reporting_s,
        decision_s,
        reconfiguration_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_round(decision_s: f64, seed: u64) -> RoundTimeline {
        let schedule = PilotSchedule::full_sweep(36, 1e-3);
        let mut rng = StdRng::seed_from_u64(seed);
        simulate_round(
            &schedule,
            4,
            9,
            decision_s,
            &WifiUplink::paper(),
            &EthernetMulticast::paper(),
            &mut rng,
        )
    }

    #[test]
    fn heuristic_round_is_fast_enough_for_walking_users() {
        // With the paper's 0.07 s heuristic, the round tracks ≥1 m/s
        // receivers at 0.25 m coherence.
        let t = paper_round(0.07, 1);
        assert!(t.total_s() < 0.25, "round took {} s", t.total_s());
        assert!(t.max_tracking_speed(0.25) > 1.0);
    }

    #[test]
    fn optimal_solver_round_cannot_track_mobility() {
        // The 165 s fmincon solve makes the round useless for mobility —
        // the §5 motivation for the heuristic.
        let t = paper_round(165.0, 2);
        assert!(t.max_tracking_speed(0.25) < 0.01);
    }

    #[test]
    fn sounding_dominates_the_fast_round() {
        let t = paper_round(0.0001, 3);
        assert!(t.sounding_s > t.reporting_s);
        assert!(t.sounding_s > t.reconfiguration_s);
        assert!((t.sounding_s - 0.036).abs() < 1e-12); // 36 × 1 ms
    }

    #[test]
    fn subset_sounding_shrinks_the_round() {
        let mut rng = StdRng::seed_from_u64(4);
        let fast = simulate_round(
            &PilotSchedule::subset(vec![7, 8, 13, 14], 1e-3),
            4,
            9,
            0.001,
            &WifiUplink::paper(),
            &EthernetMulticast::paper(),
            &mut rng,
        );
        let full = paper_round(0.001, 4);
        assert!(fast.total_s() < full.total_s());
    }

    #[test]
    fn lossy_wifi_adds_a_tail() {
        let schedule = PilotSchedule::full_sweep(36, 1e-3);
        let lossy = WifiUplink {
            loss_probability: 0.5,
            ..WifiUplink::paper()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut worst: f64 = 0.0;
        for _ in 0..200 {
            let t = simulate_round(
                &schedule,
                4,
                9,
                0.001,
                &lossy,
                &EthernetMulticast::paper(),
                &mut rng,
            );
            worst = worst.max(t.reporting_s);
        }
        // Retries show up: the worst reporting time exceeds several base
        // latencies.
        assert!(
            worst > 3.0 * lossy.base_latency_s,
            "worst reporting {worst}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_coherence_panics() {
        paper_round(0.07, 6).max_tracking_speed(0.0);
    }
}
