//! Controller ↔ TX ↔ RX message vocabulary.

use serde::{Deserialize, Serialize};

/// Identifier of a transmitter (zero-based index into the grid).
pub type TxId = usize;
/// Identifier of a receiver.
pub type RxId = usize;

/// A channel-quality report from one receiver (sent over the WiFi uplink
/// after a pilot round). Values are linear SNRs measured with M2M4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelReport {
    /// The reporting receiver.
    pub rx: RxId,
    /// Per-TX measured SNR (length = number of TXs; zero = not heard).
    pub snr_per_tx: Vec<f64>,
}

impl ChannelReport {
    /// Converts the SNR measurements back to relative path gains.
    ///
    /// SNR scales with the gain squared (the received amplitude is linear
    /// in `H`), so `Ĥ ∝ √SNR`. The scale constant cancels inside the SJR
    /// ranking, which is scale-invariant per TX row... except for the κ
    /// exponent; the controller therefore fixes the constant from the
    /// known pilot amplitude, passed as `amp_per_gain` (receiver amplitude
    /// per unit channel gain, divided by the noise RMS).
    pub fn estimated_gains(&self, amp_per_gain_over_noise: f64) -> Vec<f64> {
        assert!(
            amp_per_gain_over_noise > 0.0,
            "calibration constant must be positive"
        );
        self.snr_per_tx
            .iter()
            .map(|&snr| snr.max(0.0).sqrt() / amp_per_gain_over_noise)
            .collect()
    }
}

/// A MAC acknowledgement from a receiver (over WiFi).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ack {
    /// The acknowledging receiver.
    pub rx: RxId,
    /// Sequence number of the acknowledged frame.
    pub seq: u32,
    /// Whether the frame decoded successfully.
    pub ok: bool,
}

/// Messages flowing through the system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Controller → one TX: transmit the sounding pilot in your slot.
    SoundingAssignment {
        /// The TX that must emit the pilot.
        tx: TxId,
        /// Slot index in the pilot schedule.
        slot: usize,
    },
    /// RX → controller: measured channel qualities.
    Report(ChannelReport),
    /// Controller → TXs (multicast): the new beamspot configuration.
    Beamspots(crate::controller::BeamspotPlan),
    /// Controller → TXs (multicast): a data frame for one receiver.
    Data {
        /// Destination receiver.
        rx: RxId,
        /// Sequence number.
        seq: u32,
        /// Payload bytes.
        payload: Vec<u8>,
    },
    /// RX → controller: acknowledgement.
    Ack(Ack),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimated_gains_invert_snr() {
        // Hand-built: amplitude per unit gain over noise = 2e6, so a gain of
        // 1e-6 gives SNR (2e6·1e-6)² = 4.
        let report = ChannelReport {
            rx: 0,
            snr_per_tx: vec![4.0, 0.0, 1.0],
        };
        let gains = report.estimated_gains(2e6);
        assert!((gains[0] - 1e-6).abs() < 1e-18);
        assert_eq!(gains[1], 0.0);
        assert!((gains[2] - 0.5e-6).abs() < 1e-18);
    }

    #[test]
    fn estimated_gains_clamp_negative_snr() {
        let report = ChannelReport {
            rx: 0,
            snr_per_tx: vec![-0.5],
        };
        assert_eq!(report.estimated_gains(1.0)[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_calibration_panics() {
        ChannelReport {
            rx: 0,
            snr_per_tx: vec![1.0],
        }
        .estimated_gains(0.0);
    }
}
