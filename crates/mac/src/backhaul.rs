//! Backhaul models: Ethernet multicast downlink and WiFi uplink (paper §7.2).
//!
//! The controller multicasts frames over Ethernet to the BBBs hosting the
//! TXs; receivers send channel reports and MAC ACKs back over WiFi (the BBB
//! Wireless has it built in, and "uplink packets are usually smaller in
//! quantity and size compared to downlink packets", so the WiFi link is not
//! easily congested). Both links are modeled as latency + jitter (+ loss
//! for WiFi), the quantities that matter to adaptation delay and to the
//! no-synchronization failure mode.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One standard normal sample (Box–Muller, local to avoid a cross-crate
/// dependency for two lines of math).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The Ethernet multicast downlink (controller → TX hosts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EthernetMulticast {
    /// Base one-way latency in seconds.
    pub base_latency_s: f64,
    /// Per-delivery jitter sigma in seconds (switch queuing + kernel).
    pub jitter_sigma_s: f64,
}

impl EthernetMulticast {
    /// A small switched LAN, as in the testbed.
    pub fn paper() -> Self {
        EthernetMulticast {
            base_latency_s: 200e-6,
            jitter_sigma_s: 10.5e-6,
        }
    }

    /// Samples the delivery time of one multicast copy to one host.
    /// Latencies never go below half the base (physical floor).
    pub fn delivery_s<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.base_latency_s + gaussian(rng) * self.jitter_sigma_s).max(self.base_latency_s / 2.0)
    }

    /// Samples the *skew* between two hosts' deliveries of the same
    /// multicast frame — the start misalignment when no synchronization is
    /// used.
    pub fn delivery_skew_s<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.delivery_s(rng) - self.delivery_s(rng)).abs()
    }
}

/// The WiFi uplink (RX → controller) used for reports and ACKs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WifiUplink {
    /// Base one-way latency in seconds.
    pub base_latency_s: f64,
    /// Latency jitter sigma in seconds (contention, retries).
    pub jitter_sigma_s: f64,
    /// Packet loss probability per transmission.
    pub loss_probability: f64,
}

impl WifiUplink {
    /// A lightly loaded 802.11n link, as in the testbed.
    pub fn paper() -> Self {
        WifiUplink {
            base_latency_s: 2e-3,
            jitter_sigma_s: 0.8e-3,
            loss_probability: 0.01,
        }
    }

    /// Samples one uplink delivery: `Some(latency)` or `None` when lost.
    pub fn delivery_s<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<f64> {
        if rng.gen::<f64>() < self.loss_probability {
            return None;
        }
        Some(
            (self.base_latency_s + gaussian(rng) * self.jitter_sigma_s)
                .max(self.base_latency_s / 4.0),
        )
    }

    /// Expected latency of a delivery with up to `retries` retransmissions
    /// (each costing one more base latency), or `None` if every attempt is
    /// lost.
    pub fn delivery_with_retries_s<R: Rng + ?Sized>(
        &self,
        retries: usize,
        rng: &mut R,
    ) -> Option<f64> {
        let mut spent = 0.0;
        for _ in 0..=retries {
            match self.delivery_s(rng) {
                Some(lat) => return Some(spent + lat),
                None => spent += self.base_latency_s * 2.0, // timeout + retry
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ethernet_latency_statistics() {
        let mut rng = StdRng::seed_from_u64(21);
        let eth = EthernetMulticast::paper();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| eth.delivery_s(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 200e-6).abs() < 2e-6, "mean {mean}");
    }

    #[test]
    fn multicast_skew_matches_sync_off_scale() {
        // The Table 4 "no synchronization" error comes from this skew:
        // its median should be ~10 µs for the testbed LAN.
        let mut rng = StdRng::seed_from_u64(22);
        let eth = EthernetMulticast::paper();
        let mut skews: Vec<f64> = (0..20_001).map(|_| eth.delivery_skew_s(&mut rng)).collect();
        skews.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = skews[skews.len() / 2];
        assert!((median - 10.0e-6).abs() < 1.5e-6, "median skew {median}");
    }

    #[test]
    fn wifi_sometimes_loses_packets() {
        let mut rng = StdRng::seed_from_u64(23);
        let wifi = WifiUplink::paper();
        let lost = (0..10_000)
            .filter(|_| wifi.delivery_s(&mut rng).is_none())
            .count();
        // ~1 % loss.
        assert!((50..200).contains(&lost), "lost {lost}/10000");
    }

    #[test]
    fn retries_recover_from_loss() {
        let mut rng = StdRng::seed_from_u64(24);
        let lossy = WifiUplink {
            loss_probability: 0.5,
            ..WifiUplink::paper()
        };
        let delivered = (0..2_000)
            .filter(|_| lossy.delivery_with_retries_s(5, &mut rng).is_some())
            .count();
        // 1 − 0.5⁶ ≈ 98.4 %.
        assert!(delivered > 1_900, "delivered {delivered}/2000");
    }

    #[test]
    fn retry_latency_grows_with_losses() {
        let mut rng = StdRng::seed_from_u64(25);
        let lossy = WifiUplink {
            loss_probability: 0.9,
            ..WifiUplink::paper()
        };
        let lats: Vec<f64> = (0..500)
            .filter_map(|_| lossy.delivery_with_retries_s(20, &mut rng))
            .collect();
        let mean = lats.iter().sum::<f64>() / lats.len() as f64;
        assert!(
            mean > 2.0 * lossy.base_latency_s,
            "mean retry latency {mean}"
        );
    }

    #[test]
    fn latencies_are_never_negative() {
        let mut rng = StdRng::seed_from_u64(26);
        let eth = EthernetMulticast::paper();
        let wifi = WifiUplink::paper();
        for _ in 0..5_000 {
            assert!(eth.delivery_s(&mut rng) > 0.0);
            if let Some(l) = wifi.delivery_s(&mut rng) {
                assert!(l > 0.0);
            }
        }
    }
}
