//! Compact wire encoding for the WiFi-uplink messages.
//!
//! The paper minimizes uplink signaling: channel reports are fit "in a
//! frame with minimal length and sent when the channel is idle" (§7.2).
//! This module provides that minimal framing for the two uplink message
//! types — channel reports and MAC ACKs — with explicit byte layouts, so
//! the report overhead can be accounted for and the encoding tested.
//!
//! Layouts (big-endian):
//!
//! * Report: `0x52 ('R') | rx:u8 | n_tx:u16 | n_tx × snr_centi_db:i16`
//!   — SNRs quantized to 0.01 dB, floor −80 dB (encodes "not heard").
//! * ACK: `0x41 ('A') | rx:u8 | seq:u32 | ok:u8`

use crate::protocol::{Ack, ChannelReport};
use serde::{Deserialize, Serialize};
use std::fmt;

const REPORT_TAG: u8 = b'R';
const ACK_TAG: u8 = b'A';
/// SNRs below this floor encode as "not heard" (0 linear on decode).
const SNR_FLOOR_CENTI_DB: i16 = -8000;

/// Errors raised while decoding an uplink message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireError {
    /// The buffer ended before the message completed.
    Truncated,
    /// Unknown leading tag byte.
    UnknownTag {
        /// The offending byte.
        tag: u8,
    },
    /// The declared TX count disagrees with the buffer length.
    LengthMismatch,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "uplink message truncated"),
            WireError::UnknownTag { tag } => write!(f, "unknown uplink tag {tag:#04x}"),
            WireError::LengthMismatch => write!(f, "uplink length mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

/// An uplink message.
#[derive(Debug, Clone, PartialEq)]
pub enum Uplink {
    /// A channel report.
    Report(ChannelReport),
    /// A MAC acknowledgement.
    Ack(Ack),
}

/// Encodes a channel report (SNRs quantized to 0.01 dB).
pub fn encode_report(report: &ChannelReport) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 2 * report.snr_per_tx.len());
    out.push(REPORT_TAG);
    out.push(report.rx as u8);
    out.extend_from_slice(&(report.snr_per_tx.len() as u16).to_be_bytes());
    for &snr in &report.snr_per_tx {
        let centi_db = if snr <= 0.0 {
            SNR_FLOOR_CENTI_DB
        } else {
            // Values at or below the −80 dB floor collapse onto the floor
            // sentinel and decode as "not heard".
            let v = (100.0 * 10.0 * snr.log10()).round();
            v.clamp(SNR_FLOOR_CENTI_DB as f64, i16::MAX as f64) as i16
        };
        out.extend_from_slice(&centi_db.to_be_bytes());
    }
    out
}

/// Encodes a MAC acknowledgement.
pub fn encode_ack(ack: &Ack) -> Vec<u8> {
    let mut out = Vec::with_capacity(7);
    out.push(ACK_TAG);
    out.push(ack.rx as u8);
    out.extend_from_slice(&ack.seq.to_be_bytes());
    out.push(u8::from(ack.ok));
    out
}

/// Decodes an uplink message.
pub fn decode(bytes: &[u8]) -> Result<Uplink, WireError> {
    let (&tag, rest) = bytes.split_first().ok_or(WireError::Truncated)?;
    match tag {
        REPORT_TAG => {
            if rest.len() < 3 {
                return Err(WireError::Truncated);
            }
            let rx = rest[0] as usize;
            let n_tx = u16::from_be_bytes([rest[1], rest[2]]) as usize;
            let body = &rest[3..];
            if body.len() != 2 * n_tx {
                return Err(WireError::LengthMismatch);
            }
            let snr_per_tx = body
                .chunks_exact(2)
                .map(|c| {
                    let centi_db = i16::from_be_bytes([c[0], c[1]]);
                    if centi_db <= SNR_FLOOR_CENTI_DB {
                        0.0
                    } else {
                        10f64.powf(centi_db as f64 / 1000.0)
                    }
                })
                .collect();
            Ok(Uplink::Report(ChannelReport { rx, snr_per_tx }))
        }
        ACK_TAG => {
            if rest.len() != 6 {
                return Err(WireError::Truncated);
            }
            Ok(Uplink::Ack(Ack {
                rx: rest[0] as usize,
                seq: u32::from_be_bytes([rest[1], rest[2], rest[3], rest[4]]),
                ok: rest[5] != 0,
            }))
        }
        tag => Err(WireError::UnknownTag { tag }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrip_preserves_snrs_within_quantization() {
        let report = ChannelReport {
            rx: 2,
            snr_per_tx: vec![0.0, 1.0, 123.4, 1e-9, 5e4],
        };
        let bytes = encode_report(&report);
        // 4-byte header + 2 bytes per TX — "minimal length" indeed.
        assert_eq!(bytes.len(), 4 + 2 * 5);
        let Uplink::Report(decoded) = decode(&bytes).expect("valid") else {
            panic!("wrong variant");
        };
        assert_eq!(decoded.rx, 2);
        for (orig, got) in report.snr_per_tx.iter().zip(&decoded.snr_per_tx) {
            if *orig <= 0.0 || *orig < 1e-8 {
                assert_eq!(*got, 0.0, "sub-floor SNR must decode as unheard");
            } else {
                let err_db = (10.0 * (got / orig).log10()).abs();
                assert!(err_db < 0.011, "quantization error {err_db} dB");
            }
        }
    }

    #[test]
    fn ack_roundtrip() {
        for ok in [true, false] {
            let ack = Ack {
                rx: 3,
                seq: 0xDEAD_BEEF,
                ok,
            };
            let bytes = encode_ack(&ack);
            assert_eq!(bytes.len(), 7);
            assert_eq!(decode(&bytes), Ok(Uplink::Ack(ack)));
        }
    }

    #[test]
    fn full_grid_report_is_76_bytes() {
        // The 36-TX report fits one small WiFi frame: 4 + 72 bytes.
        let report = ChannelReport {
            rx: 0,
            snr_per_tx: vec![1.0; 36],
        };
        assert_eq!(encode_report(&report).len(), 76);
    }

    #[test]
    fn truncated_and_garbage_inputs_are_rejected() {
        assert_eq!(decode(&[]), Err(WireError::Truncated));
        assert_eq!(decode(&[b'R', 0]), Err(WireError::Truncated));
        assert_eq!(decode(&[b'A', 0, 0]), Err(WireError::Truncated));
        assert_eq!(
            decode(&[0x7F, 1, 2]),
            Err(WireError::UnknownTag { tag: 0x7F })
        );
        // Report declaring 4 TXs but carrying 2.
        let mut bad = encode_report(&ChannelReport {
            rx: 0,
            snr_per_tx: vec![1.0; 2],
        });
        bad[2] = 0;
        bad[3] = 4;
        assert_eq!(decode(&bad), Err(WireError::LengthMismatch));
    }

    #[test]
    fn huge_snrs_clamp_instead_of_wrapping() {
        let report = ChannelReport {
            rx: 0,
            snr_per_tx: vec![1e30],
        };
        let Uplink::Report(decoded) = decode(&encode_report(&report)).expect("valid") else {
            panic!("wrong variant");
        };
        assert!(decoded.snr_per_tx[0].is_finite());
        assert!(decoded.snr_per_tx[0] > 1e3);
    }
}
