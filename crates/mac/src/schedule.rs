//! Time-division pilot scheduling for channel sounding (paper §3.2).
//!
//! The controller sends pilot signals "in a time-division scheme to each
//! LED of the array": one TX sounds per slot while every receiver measures
//! it. A full sweep of N TXs takes N slots; the schedule also supports
//! sounding only a subset (e.g. the TXs near the last known beamspots) to
//! cut the sounding overhead for fast re-adaptation.

use crate::protocol::TxId;
use serde::{Deserialize, Serialize};

/// A time-division pilot schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PilotSchedule {
    /// The TX sounding in each slot, in slot order.
    pub slots: Vec<TxId>,
    /// Duration of one sounding slot in seconds (pilot chips + guard).
    pub slot_duration_s: f64,
}

impl PilotSchedule {
    /// A full sweep over `n_tx` transmitters.
    pub fn full_sweep(n_tx: usize, slot_duration_s: f64) -> Self {
        assert!(slot_duration_s > 0.0, "slot duration must be positive");
        PilotSchedule {
            slots: (0..n_tx).collect(),
            slot_duration_s,
        }
    }

    /// A partial sweep over selected TXs (fast re-sounding).
    pub fn subset(txs: Vec<TxId>, slot_duration_s: f64) -> Self {
        assert!(slot_duration_s > 0.0, "slot duration must be positive");
        assert!(!txs.is_empty(), "schedule needs at least one TX");
        PilotSchedule {
            slots: txs,
            slot_duration_s,
        }
    }

    /// The slot in which `tx` sounds, if any.
    pub fn slot_of(&self, tx: TxId) -> Option<usize> {
        self.slots.iter().position(|&t| t == tx)
    }

    /// Total sounding time for a full round.
    pub fn round_duration_s(&self) -> f64 {
        self.slots.len() as f64 * self.slot_duration_s
    }

    /// The sounding overhead as a fraction of an adaptation period.
    pub fn overhead(&self, adaptation_period_s: f64) -> f64 {
        assert!(adaptation_period_s > 0.0, "period must be positive");
        self.round_duration_s() / adaptation_period_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sweep_covers_every_tx_once() {
        let s = PilotSchedule::full_sweep(36, 1e-3);
        assert_eq!(s.slots.len(), 36);
        for tx in 0..36 {
            assert_eq!(s.slot_of(tx), Some(tx));
        }
    }

    #[test]
    fn subset_schedule_is_shorter() {
        let full = PilotSchedule::full_sweep(36, 1e-3);
        let fast = PilotSchedule::subset(vec![7, 8, 13, 14], 1e-3);
        assert!(fast.round_duration_s() < full.round_duration_s() / 8.0);
        assert_eq!(fast.slot_of(13), Some(2));
        assert_eq!(fast.slot_of(0), None);
    }

    #[test]
    fn overhead_fraction() {
        let s = PilotSchedule::full_sweep(36, 1e-3);
        // 36 ms of sounding per 1 s adaptation period → 3.6 %.
        assert!((s.overhead(1.0) - 0.036).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_subset_panics() {
        PilotSchedule::subset(vec![], 1e-3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_slot_duration_panics() {
        PilotSchedule::full_sweep(4, 0.0);
    }
}
