//! Property tests for the uplink wire encoding.

use proptest::prelude::*;
use vlc_mac::protocol::{Ack, ChannelReport};
use vlc_mac::wire::{decode, encode_ack, encode_report, Uplink};

proptest! {
    /// Report round-trips preserve SNRs within the 0.01 dB quantization
    /// for any physical SNR range, and sub-floor values decode as unheard.
    #[test]
    fn report_roundtrip(
        rx in 0usize..8,
        snrs in proptest::collection::vec(0.0f64..1e6, 0..64),
    ) {
        let report = ChannelReport { rx, snr_per_tx: snrs.clone() };
        let bytes = encode_report(&report);
        prop_assert_eq!(bytes.len(), 4 + 2 * snrs.len());
        let Uplink::Report(decoded) = decode(&bytes).expect("valid") else {
            return Err(TestCaseError::fail("wrong variant"));
        };
        prop_assert_eq!(decoded.rx, rx);
        for (orig, got) in snrs.iter().zip(&decoded.snr_per_tx) {
            if *orig < 1.1e-8 {
                prop_assert_eq!(*got, 0.0);
            } else {
                let err_db = (10.0 * (got / orig).log10()).abs();
                prop_assert!(err_db < 0.011, "error {err_db} dB");
            }
        }
    }

    /// ACK round-trips are exact.
    #[test]
    fn ack_roundtrip(rx in 0usize..8, seq in any::<u32>(), ok in any::<bool>()) {
        let ack = Ack { rx, seq, ok };
        prop_assert_eq!(decode(&encode_ack(&ack)), Ok(Uplink::Ack(ack)));
    }

    /// Arbitrary byte garbage never panics the decoder.
    #[test]
    fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode(&bytes); // must not panic
    }
}
