//! Edge cases of the rolling-window quantiles: empty windows, single
//! samples, rotation at exact bucket boundaries, and the ceiling-rank
//! convention at exact rank boundaries.

use vlc_obs::{RollingWindow, WindowConfig, WindowStats};

fn window(bucket_ticks: u64, buckets: usize) -> RollingWindow {
    RollingWindow::new(WindowConfig {
        bucket_ticks,
        buckets,
        max_samples_per_bucket: 4096,
    })
}

#[test]
fn empty_window_is_all_zeros() {
    let w = window(10, 8);
    assert_eq!(w.stats(0), WindowStats::default());
    assert_eq!(w.stats(12345), WindowStats::default());
    assert_eq!(w.stats(0).mean(), 0.0);
}

#[test]
fn single_sample_is_every_statistic() {
    let mut w = window(10, 8);
    w.record(3, 42.5);
    let s = w.stats(3);
    assert_eq!(s.count, 1);
    assert_eq!(
        (s.min, s.max, s.p50, s.p95, s.p99, s.sum),
        (42.5, 42.5, 42.5, 42.5, 42.5, 42.5)
    );
    assert_eq!(s.mean(), 42.5);
}

#[test]
fn bucket_rotation_at_the_exact_boundary_tick() {
    // bucket_ticks = 10: ticks 0–9 are epoch 0, tick 10 opens epoch 1.
    let mut w = window(10, 2);
    w.record(9, 1.0); // last tick of epoch 0
    w.record(10, 2.0); // first tick of epoch 1
                       // Window ending at tick 10 spans epochs {0, 1}: both samples.
    assert_eq!(w.stats(10).count, 2);
    // Window ending at tick 19 still spans epochs {0, 1}.
    assert_eq!(w.stats(19).count, 2);
    // Tick 20 opens epoch 2: epoch 0 falls off the 2-bucket window even
    // though its slot has not been overwritten yet.
    let s = w.stats(20);
    assert_eq!(s.count, 1);
    assert_eq!(s.min, 2.0);
    // Writing at tick 20 reclaims epoch 0's slot (2 % 2 == 0).
    w.record(20, 3.0);
    let s = w.stats(20);
    assert_eq!(s.count, 2);
    assert_eq!((s.min, s.max), (2.0, 3.0));
}

#[test]
fn ceiling_rank_at_exact_quantile_boundaries() {
    // 20 samples 1..=20: rank(q) = ceil(q·20), 1-based — the same
    // convention as the registry histograms, but exact.
    let mut w = window(100, 1);
    for i in 1..=20 {
        w.record(i as u64, i as f64);
    }
    let s = w.stats(20);
    assert_eq!(s.count, 20);
    assert_eq!(s.p50, 10.0, "ceil(0.50*20) = rank 10");
    assert_eq!(s.p95, 19.0, "ceil(0.95*20) = rank 19");
    assert_eq!(s.p99, 20.0, "ceil(0.99*20) = rank 20");
}

#[test]
fn window_spans_exactly_buckets_times_bucket_ticks() {
    let cfg = WindowConfig {
        bucket_ticks: 4,
        buckets: 3,
        max_samples_per_bucket: 4096,
    };
    assert_eq!(cfg.window_ticks(), 12);
    let mut w = RollingWindow::new(cfg);
    for t in 0..24 {
        w.record(t, t as f64);
    }
    // Window ending at tick 23 covers epochs {3, 4, 5} = ticks 12–23.
    let s = w.stats(23);
    assert_eq!(s.count, 12);
    assert_eq!((s.min, s.max), (12.0, 23.0));
}

#[test]
fn identical_feeds_produce_bit_identical_stats() {
    // The aggregation is a pure function of (tick, value) pairs — no
    // wall-clock, no iteration-order dependence — so two identically-fed
    // windows agree bit for bit. This is the property that makes window
    // records safe to stream from a `vlc-par`-parallelized run.
    let feed: Vec<(u64, f64)> = (0..200)
        .map(|t| (t, (t as f64 * 0.37).sin() * 1e6))
        .collect();
    let mut a = window(10, 4);
    let mut b = window(10, 4);
    for &(t, v) in &feed {
        a.record(t, v);
    }
    for &(t, v) in &feed {
        b.record(t, v);
    }
    for probe in [0, 39, 40, 199] {
        let (sa, sb) = (a.stats(probe), b.stats(probe));
        assert_eq!(sa.count, sb.count);
        assert_eq!(sa.sum.to_bits(), sb.sum.to_bits());
        assert_eq!(sa.p50.to_bits(), sb.p50.to_bits());
        assert_eq!(sa.p95.to_bits(), sb.p95.to_bits());
        assert_eq!(sa.p99.to_bits(), sb.p99.to_bits());
    }
}
