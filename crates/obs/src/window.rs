//! Rolling-window aggregation over simulation ticks.
//!
//! A [`RollingWindow`] is a fixed ring of buckets, each covering
//! `bucket_ticks` consecutive ticks; the window spans the last
//! `buckets × bucket_ticks` ticks. Rotation is a pure function of the tick
//! number — bucket `tick / bucket_ticks` lands in slot `index % buckets`,
//! evicting whatever older epoch occupied the slot — so the aggregation is
//! deterministic for any worker count, matching the `vlc-par` span
//! contract: the same tick stream produces bit-identical window statistics
//! regardless of scheduling.
//!
//! Buckets store raw samples (one per tick for the simulation's signals),
//! so [`RollingWindow::stats`] reports **exact** order statistics — unlike
//! the registry's log-bucketed histograms, which trade ≤ 19 % quantile
//! error for unbounded horizons. A per-bucket sample cap bounds memory for
//! pathological feeds; overflow counts into [`WindowStats::dropped`].

/// Shape of a rolling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Ticks per bucket (min 1).
    pub bucket_ticks: u64,
    /// Buckets in the ring (min 1); the window spans
    /// `buckets × bucket_ticks` ticks.
    pub buckets: usize,
    /// Samples retained per bucket before overflow drops (min 1).
    pub max_samples_per_bucket: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            bucket_ticks: 10,
            buckets: 8,
            max_samples_per_bucket: 4096,
        }
    }
}

impl WindowConfig {
    /// Total ticks the window spans.
    pub fn window_ticks(&self) -> u64 {
        self.bucket_ticks.max(1) * self.buckets.max(1) as u64
    }
}

#[derive(Debug, Clone, Default)]
struct Bucket {
    /// Which bucket interval (`tick / bucket_ticks`) this slot holds;
    /// `None` until first written.
    epoch: Option<u64>,
    samples: Vec<f64>,
    dropped: u64,
}

/// Exact statistics over the samples currently inside the window.
///
/// Plain data (`PartialEq`) so snapshots can be asserted in tests and
/// round-tripped through the NDJSON stream. An empty window is all zeros.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowStats {
    /// Samples inside the window.
    pub count: u64,
    /// Sum of those samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Exact median (rank `ceil(0.50·count)`).
    pub p50: f64,
    /// Exact 95th percentile (rank `ceil(0.95·count)`).
    pub p95: f64,
    /// Exact 99th percentile (rank `ceil(0.99·count)`).
    pub p99: f64,
    /// Samples lost to the per-bucket cap while inside the window.
    pub dropped: u64,
}

impl WindowStats {
    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A fixed ring of tick buckets; see the module docs.
#[derive(Debug, Clone)]
pub struct RollingWindow {
    cfg: WindowConfig,
    ring: Vec<Bucket>,
}

impl RollingWindow {
    /// A window with the given shape (zero fields clamp to 1).
    pub fn new(cfg: WindowConfig) -> Self {
        let cfg = WindowConfig {
            bucket_ticks: cfg.bucket_ticks.max(1),
            buckets: cfg.buckets.max(1),
            max_samples_per_bucket: cfg.max_samples_per_bucket.max(1),
        };
        RollingWindow {
            ring: vec![Bucket::default(); cfg.buckets],
            cfg,
        }
    }

    /// The window shape in effect (after clamping).
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// Records one sample observed at `tick`. NaN is ignored (mirroring
    /// the registry histograms). Ticks may only move forward; a sample
    /// from an already-evicted epoch would silently corrupt the ring, so
    /// out-of-order ticks older than the slot's current epoch are dropped.
    pub fn record(&mut self, tick: u64, v: f64) {
        if v.is_nan() {
            return;
        }
        let epoch = tick / self.cfg.bucket_ticks;
        let slot = (epoch % self.cfg.buckets as u64) as usize;
        let bucket = &mut self.ring[slot];
        match bucket.epoch {
            Some(e) if e == epoch => {}
            Some(e) if e > epoch => return, // stale tick: already rotated past
            _ => {
                bucket.epoch = Some(epoch);
                bucket.samples.clear();
                bucket.dropped = 0;
            }
        }
        if bucket.samples.len() >= self.cfg.max_samples_per_bucket {
            bucket.dropped += 1;
        } else {
            bucket.samples.push(v);
        }
    }

    /// Exact statistics over every bucket still inside the window ending
    /// at `tick` (inclusive): epochs in
    /// `(tick/bucket_ticks − buckets, tick/bucket_ticks]`.
    pub fn stats(&self, tick: u64) -> WindowStats {
        let now = tick / self.cfg.bucket_ticks;
        let oldest = (now + 1).saturating_sub(self.cfg.buckets as u64);
        let mut samples: Vec<f64> = Vec::new();
        let mut dropped = 0u64;
        for bucket in &self.ring {
            if let Some(e) = bucket.epoch {
                if e >= oldest && e <= now {
                    samples.extend_from_slice(&bucket.samples);
                    dropped += bucket.dropped;
                }
            }
        }
        if samples.is_empty() {
            return WindowStats {
                dropped,
                ..WindowStats::default()
            };
        }
        samples.sort_by(f64::total_cmp);
        let count = samples.len() as u64;
        let rank = |q: f64| -> f64 {
            // 1-based ceiling rank, matching the registry's quantile
            // convention — but exact, not bucket-resolved.
            let r = ((q * count as f64).ceil() as u64).clamp(1, count);
            samples[(r - 1) as usize]
        };
        WindowStats {
            count,
            sum: samples.iter().sum(),
            min: samples[0],
            max: samples[samples.len() - 1],
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RollingWindow {
        RollingWindow::new(WindowConfig {
            bucket_ticks: 2,
            buckets: 3,
            max_samples_per_bucket: 4096,
        })
    }

    #[test]
    fn samples_inside_the_window_aggregate_exactly() {
        let mut w = small();
        for t in 0..6 {
            w.record(t, t as f64);
        }
        let s = w.stats(5);
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 15.0);
        assert_eq!((s.min, s.max), (0.0, 5.0));
        assert_eq!(s.p50, 2.0); // rank ceil(0.5·6)=3 → sorted[2]
        assert_eq!(s.p95, 5.0);
        assert_eq!(s.p99, 5.0);
    }

    #[test]
    fn rotation_evicts_whole_buckets() {
        let mut w = small(); // window = 6 ticks
        w.record(0, 100.0);
        w.record(1, 100.0);
        for t in 2..8 {
            w.record(t, 1.0);
        }
        // Tick 7 is epoch 3; epoch 0 (ticks 0–1) rotated out of the ring.
        let s = w.stats(7);
        assert_eq!(s.count, 6);
        assert_eq!(s.max, 1.0, "old epoch leaked into the window");
    }

    #[test]
    fn stats_window_excludes_stale_epochs_even_without_overwrite() {
        let mut w = small();
        w.record(0, 42.0);
        // Jump far ahead without writing: the slot still holds epoch 0,
        // but the window ending at tick 100 must not see it.
        assert_eq!(w.stats(100).count, 0);
    }

    #[test]
    fn per_bucket_cap_counts_drops() {
        let mut w = RollingWindow::new(WindowConfig {
            bucket_ticks: 10,
            buckets: 2,
            max_samples_per_bucket: 3,
        });
        for _ in 0..5 {
            w.record(0, 1.0);
        }
        let s = w.stats(0);
        assert_eq!(s.count, 3);
        assert_eq!(s.dropped, 2);
    }

    #[test]
    fn nan_is_ignored_and_stale_ticks_are_dropped() {
        let mut w = small();
        w.record(0, f64::NAN);
        assert_eq!(w.stats(0).count, 0);
        // Fill slot 0 with epoch 3 (ticks 6–7), then feed a tick-0 sample:
        // its slot now belongs to a newer epoch, so it must be refused.
        w.record(6, 1.0);
        w.record(0, 99.0);
        let s = w.stats(7);
        assert_eq!(s.count, 1);
        assert_eq!(s.max, 1.0);
    }
}
