//! The observability plane: one object the simulation tick loop feeds.
//!
//! [`ObsPlane`] composes the four streaming pieces — rolling windows,
//! NDJSON export, the SLO engine, and the flight recorder — behind two
//! calls: [`ObsPlane::observe_tick`] per simulation tick and
//! [`ObsPlane::finish`] at the end of the run. The plane only *reads*
//! the telemetry registry (snapshot deltas); it never mutates simulation
//! state, which is how the streamed and unstreamed code paths produce
//! byte-identical `Timeline`s.
//!
//! ## Signals
//!
//! Per tick, from the tick sample itself:
//!
//! * `rx{i}.bps` — per-receiver throughput under the live plan
//! * `rx{i}.sinr` — per-receiver SINR
//!
//! Per flush (every [`ObsConfig::every`] ticks), derived from registry
//! deltas since the previous flush:
//!
//! * `alloc.solve_s` — mean solver wall-time over the interval
//!   (`alloc.optimal.solve_s` + `alloc.heuristic.solve_s` +
//!   `mac.plan_s`, whichever the call path records). Wall-time is the
//!   one nondeterministic signal in the stream.
//! * `mac.plan.cache_hit_rate` — plan-cache hits ÷ lookups
//! * `phy.rs_uncorrectable` — RS-uncorrectable blocks in the interval

use std::collections::BTreeMap;

use vlc_telemetry::{MetricsSnapshot, Registry};

use crate::alert::{SloEngine, SloRule};
use crate::flight::{FlightGuard, FlightRecorder};
use crate::record::{ObsRecord, OBS_SCHEMA};
use crate::sink::ObsSink;
use crate::window::{RollingWindow, WindowConfig};

/// Plane configuration.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Run label for the stream's meta record.
    pub run: String,
    /// Flush cadence in ticks: window snapshots, SLO evaluation, event
    /// forwarding, and sink flush happen every `every` ticks (min 1).
    pub every: u64,
    /// Shape of every rolling window.
    pub window: WindowConfig,
    /// SLO rules to evaluate at each flush.
    pub rules: Vec<SloRule>,
    /// Inject a panic after observing this tick (test / CI hook; wired to
    /// `DENSEVLC_INJECT_PANIC`).
    pub panic_at_tick: Option<u64>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            run: "sim".into(),
            every: 10,
            window: WindowConfig::default(),
            rules: Vec::new(),
            panic_at_tick: None,
        }
    }
}

/// Everything the plane needs to know about one simulation tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TickSample {
    /// Tick index from 0.
    pub tick: u64,
    /// Simulation time, seconds.
    pub t_s: f64,
    /// Per-receiver throughput, bit/s.
    pub per_rx_bps: Vec<f64>,
    /// Per-receiver SINR.
    pub per_rx_sinr: Vec<f64>,
    /// LOS links currently blocked.
    pub blocked_links: u64,
    /// Whether the controller re-planned this tick.
    pub replanned: bool,
}

#[derive(Debug, Default)]
struct Cursor {
    counters: BTreeMap<String, u64>,
    /// Histogram (count, sum) at the previous flush.
    hists: BTreeMap<String, (u64, f64)>,
    /// Absolute event count (dropped + retained) already forwarded.
    events: u64,
}

impl Cursor {
    fn counter_delta(&mut self, snap: &MetricsSnapshot, name: &str) -> u64 {
        let now = snap.counter(name).unwrap_or(0);
        let prev = self.counters.insert(name.to_string(), now).unwrap_or(0);
        now.saturating_sub(prev)
    }

    fn hist_delta(&mut self, snap: &MetricsSnapshot, name: &str) -> (u64, f64) {
        let now = snap
            .histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| (h.count, h.sum))
            .unwrap_or((0, 0.0));
        let prev = self.hists.insert(name.to_string(), now).unwrap_or((0, 0.0));
        (now.0.saturating_sub(prev.0), now.1 - prev.1)
    }
}

/// The streaming observability plane; see the module docs.
pub struct ObsPlane {
    sink: Box<dyn ObsSink>,
    cfg: ObsConfig,
    windows: BTreeMap<String, RollingWindow>,
    engine: SloEngine,
    flight: Option<FlightRecorder>,
    _flight_guard: Option<FlightGuard>,
    cursor: Cursor,
    /// First sink error disables further writes; observability must never
    /// take the simulation down.
    sink_ok: bool,
    ticks: u64,
    system_bps_sum: f64,
    last_flush_tick: Option<u64>,
}

impl ObsPlane {
    /// A plane writing to `sink` under `cfg`.
    pub fn new(sink: Box<dyn ObsSink>, cfg: ObsConfig) -> Self {
        let engine = SloEngine::new(cfg.rules.clone());
        ObsPlane {
            sink,
            cfg,
            windows: BTreeMap::new(),
            engine,
            flight: None,
            _flight_guard: None,
            cursor: Cursor::default(),
            sink_ok: true,
            ticks: 0,
            system_bps_sum: 0.0,
            last_flush_tick: None,
        }
    }

    /// Attaches (and arms) a flight recorder: every stream line is also
    /// retained in its ring, and a panic dumps the ring.
    pub fn with_flight(mut self, flight: FlightRecorder) -> Self {
        self._flight_guard = Some(flight.arm());
        self.flight = Some(flight);
        self
    }

    /// The SLO engine (inspection after a run).
    pub fn engine(&self) -> &SloEngine {
        &self.engine
    }

    fn emit(&mut self, record: &ObsRecord) {
        let line = record.to_line();
        if let Some(f) = &self.flight {
            f.record_line(&line);
        }
        if self.sink_ok && self.sink.write_line(&line).is_err() {
            self.sink_ok = false;
        }
    }

    /// Injects one record into the stream out of band — the hook the CLI
    /// uses to place a profile digest (built from the run's trace) ahead
    /// of the summary trailer. Goes through the same path as every other
    /// record: the flight ring sees it and sink failure latches.
    pub fn emit_record(&mut self, record: &ObsRecord) {
        self.emit(record);
    }

    /// Starts the stream: writes the meta record (also pinned as flight
    /// context so every crash dump leads with it).
    pub fn begin(&mut self, tick_s: f64, n_rx: usize) {
        let meta = ObsRecord::Meta {
            schema: OBS_SCHEMA.into(),
            run: self.cfg.run.clone(),
            tick_s,
            n_rx: n_rx as u64,
            every: self.cfg.every.max(1),
        };
        if let Some(f) = &self.flight {
            f.push_context(&meta.to_line());
        }
        // Meta goes to the sink only — it is already flight context.
        if self.sink_ok && self.sink.write_line(&meta.to_line()).is_err() {
            self.sink_ok = false;
        }
    }

    /// Observes one tick: emits the tick record, feeds the per-RX
    /// windows, and on the flush cadence emits window snapshots,
    /// evaluates SLOs, and forwards new telemetry events.
    pub fn observe_tick(&mut self, s: &TickSample, telemetry: &Registry) {
        self.emit(&ObsRecord::Tick {
            tick: s.tick,
            t_s: s.t_s,
            per_rx_bps: s.per_rx_bps.clone(),
            per_rx_sinr: s.per_rx_sinr.clone(),
            blocked_links: s.blocked_links,
            replanned: s.replanned,
        });
        for (i, v) in s.per_rx_bps.iter().enumerate() {
            self.window_mut(&format!("rx{i}.bps")).record(s.tick, *v);
        }
        for (i, v) in s.per_rx_sinr.iter().enumerate() {
            self.window_mut(&format!("rx{i}.sinr")).record(s.tick, *v);
        }
        self.ticks += 1;
        self.system_bps_sum += s.per_rx_bps.iter().sum::<f64>();
        if (s.tick + 1).is_multiple_of(self.cfg.every.max(1)) {
            self.flush(s.tick, telemetry);
        }
        if self.cfg.panic_at_tick == Some(s.tick) {
            panic!("injected panic at tick {}", s.tick);
        }
    }

    fn window_mut(&mut self, signal: &str) -> &mut RollingWindow {
        let cfg = self.cfg.window;
        self.windows
            .entry(signal.to_string())
            .or_insert_with(|| RollingWindow::new(cfg))
    }

    /// Window snapshots + SLO evaluation + event forwarding + sink flush.
    fn flush(&mut self, tick: u64, telemetry: &Registry) {
        let snap = telemetry.snapshot();
        self.record_derived(tick, &snap);

        // BTreeMap iteration order makes the stream deterministic.
        let signals: Vec<String> = self.windows.keys().cloned().collect();
        for signal in signals {
            let stats = self.windows[&signal].stats(tick);
            if stats.count == 0 && stats.dropped == 0 {
                continue;
            }
            self.emit(&ObsRecord::Window {
                tick,
                signal: signal.clone(),
                stats,
            });
            for alert in self.engine.evaluate(tick, &signal, &stats) {
                self.emit(&alert);
            }
        }
        self.forward_events(&snap);
        if self.sink_ok && self.sink.flush().is_err() {
            self.sink_ok = false;
        }
        self.last_flush_tick = Some(tick);
    }

    /// Registry-delta signals, sampled once per flush interval.
    fn record_derived(&mut self, tick: u64, snap: &MetricsSnapshot) {
        // Solver wall-time arrives under different histograms depending on
        // the call path: the simulation times whole planning rounds under
        // the `mac.plan_s` span, while the instrumented allocator APIs
        // (experiments, benches) record `alloc.*.solve_s` directly. The
        // paths are disjoint — `Controller::plan` never calls the
        // instrumented allocators — so summing them never double-counts.
        let (oc, os) = self.cursor.hist_delta(snap, "alloc.optimal.solve_s");
        let (hc, hs) = self.cursor.hist_delta(snap, "alloc.heuristic.solve_s");
        let (mc, ms) = self.cursor.hist_delta(snap, "mac.plan_s");
        if oc + hc + mc > 0 {
            let mean = (os + hs + ms) / (oc + hc + mc) as f64;
            self.window_mut("alloc.solve_s").record(tick, mean);
        }

        let hits = self.cursor.counter_delta(snap, "mac.plan.cache_hits");
        let misses = self.cursor.counter_delta(snap, "mac.plan.cache_misses");
        if hits + misses > 0 {
            let rate = hits as f64 / (hits + misses) as f64;
            self.window_mut("mac.plan.cache_hit_rate")
                .record(tick, rate);
        }

        let uncorrectable = self.cursor.counter_delta(snap, "phy.rs_uncorrectable");
        self.window_mut("phy.rs_uncorrectable")
            .record(tick, uncorrectable as f64);
    }

    /// Forwards telemetry events not yet streamed. The event ring is
    /// bounded, so the watermark is the *absolute* count
    /// (`dropped + retained`); events evicted between flushes are lost to
    /// the stream exactly as they are lost to the ring.
    fn forward_events(&mut self, snap: &MetricsSnapshot) {
        let total = snap.events_dropped + snap.events.len() as u64;
        let new = total.saturating_sub(self.cursor.events) as usize;
        self.cursor.events = total;
        let start = snap.events.len().saturating_sub(new);
        let fresh: Vec<ObsRecord> = snap.events[start..]
            .iter()
            .map(|e| ObsRecord::Event(e.clone()))
            .collect();
        for r in &fresh {
            self.emit(r);
        }
    }

    /// Ends the stream: a final flush for any partial interval, then the
    /// summary trailer. Returns the summary for the caller to reuse.
    pub fn finish(&mut self, telemetry: &Registry, spans_dropped: u64) -> ObsRecord {
        if self.ticks > 0 {
            let last_tick = self.ticks - 1;
            if self.last_flush_tick != Some(last_tick) {
                self.flush(last_tick, telemetry);
            }
        }
        let snap = telemetry.snapshot();
        let summary = ObsRecord::Summary {
            ticks: self.ticks,
            mean_system_bps: if self.ticks == 0 {
                0.0
            } else {
                self.system_bps_sum / self.ticks as f64
            },
            alerts_fired: self.engine.fired(),
            alerts_cleared: self.engine.cleared(),
            events_dropped: snap.events_dropped,
            spans_dropped,
        };
        self.emit(&summary);
        if self.sink_ok && self.sink.flush().is_err() {
            self.sink_ok = false;
        }
        // Disarm the flight hook: the run ended normally.
        self._flight_guard = None;
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::{Cmp, Stat};
    use crate::record::{parse_stream_strict, AlertState};
    use crate::sink::MemorySink;

    fn sample(tick: u64, bps: f64) -> TickSample {
        TickSample {
            tick,
            t_s: tick as f64 * 0.1,
            per_rx_bps: vec![bps, bps * 2.0],
            per_rx_sinr: vec![10.0, 20.0],
            blocked_links: 0,
            replanned: tick.is_multiple_of(5),
        }
    }

    fn plane(sink: &MemorySink, rules: Vec<SloRule>) -> ObsPlane {
        ObsPlane::new(
            Box::new(sink.clone()),
            ObsConfig {
                run: "unit".into(),
                every: 5,
                window: WindowConfig {
                    bucket_ticks: 5,
                    buckets: 2,
                    max_samples_per_bucket: 64,
                },
                rules,
                panic_at_tick: None,
            },
        )
    }

    #[test]
    fn stream_structure_meta_ticks_windows_summary() {
        let sink = MemorySink::new();
        let mut p = plane(&sink, Vec::new());
        let reg = Registry::noop();
        p.begin(0.1, 2);
        for t in 0..10 {
            p.observe_tick(&sample(t, 1e6), &reg);
        }
        p.finish(&reg, 0);

        let records = parse_stream_strict(&sink.text()).unwrap();
        assert!(matches!(
            records[0],
            ObsRecord::Meta {
                n_rx: 2,
                every: 5,
                ..
            }
        ));
        let ticks = records
            .iter()
            .filter(|r| matches!(r, ObsRecord::Tick { .. }))
            .count();
        assert_eq!(ticks, 10);
        // Two flushes × 5 nonempty signals (rx0/rx1 × bps/sinr +
        // phy.rs_uncorrectable, which always records a delta sample).
        let windows = records
            .iter()
            .filter(|r| matches!(r, ObsRecord::Window { .. }))
            .count();
        assert_eq!(windows, 10);
        match records.last().unwrap() {
            ObsRecord::Summary {
                ticks,
                mean_system_bps,
                ..
            } => {
                assert_eq!(*ticks, 10);
                assert_eq!(*mean_system_bps, 3e6); // 1e6 + 2e6 per tick
            }
            other => panic!("stream must end in a summary, got {other:?}"),
        }
    }

    #[test]
    fn partial_final_interval_still_gets_windows_before_the_summary() {
        let sink = MemorySink::new();
        let mut p = plane(&sink, Vec::new());
        let reg = Registry::noop();
        p.begin(0.1, 2);
        for t in 0..7 {
            // 7 ticks, every=5: one cadence flush + one finish flush
            p.observe_tick(&sample(t, 1e6), &reg);
        }
        p.finish(&reg, 0);
        let records = parse_stream_strict(&sink.text()).unwrap();
        let last_window_tick = records
            .iter()
            .filter_map(|r| match r {
                ObsRecord::Window { tick, .. } => Some(*tick),
                _ => None,
            })
            .max()
            .unwrap();
        assert_eq!(last_window_tick, 6, "finish must flush the partial tail");
    }

    #[test]
    fn slo_rules_fire_and_clear_through_the_plane() {
        let sink = MemorySink::new();
        let rules = vec![SloRule {
            name: "rx0.throughput".into(),
            signal: "rx0.bps".into(),
            stat: Stat::Mean,
            cmp: Cmp::Below,
            threshold: 1e6,
            for_windows: 2,
            clear_windows: 2,
        }];
        let mut p = plane(&sink, rules);
        let reg = Registry::noop();
        p.begin(0.1, 2);
        // 2 starved flush intervals → fire; 2 healthy → clear.
        for t in 0..10 {
            p.observe_tick(&sample(t, 0.0), &reg);
        }
        for t in 10..20 {
            p.observe_tick(&sample(t, 5e6), &reg);
        }
        p.finish(&reg, 0);

        let alerts: Vec<(u64, AlertState)> = parse_stream_strict(&sink.text())
            .unwrap()
            .into_iter()
            .filter_map(|r| match r {
                ObsRecord::Alert {
                    tick, state, rule, ..
                } if rule == "rx0.throughput" => Some((tick, state)),
                _ => None,
            })
            .collect();
        assert_eq!(
            alerts,
            [(9, AlertState::Firing), (19, AlertState::Cleared)],
            "hysteresis: fire on 2nd breaching window, clear on 2nd healthy"
        );
    }

    #[test]
    fn telemetry_events_are_forwarded_exactly_once() {
        let sink = MemorySink::new();
        let mut p = plane(&sink, Vec::new());
        let reg = Registry::new();
        p.begin(0.1, 2);
        reg.event("mac.controller", "infeasible_round", &[("budget_w", "0")]);
        for t in 0..10 {
            p.observe_tick(&sample(t, 1e6), &reg);
        }
        p.finish(&reg, 0);
        let events = parse_stream_strict(&sink.text())
            .unwrap()
            .into_iter()
            .filter(|r| matches!(r, ObsRecord::Event(_)))
            .count();
        assert_eq!(
            events, 1,
            "one event recorded, one forwarded, never re-sent"
        );
    }

    #[test]
    fn a_failing_sink_never_panics_the_plane() {
        struct Failing;
        impl crate::sink::ObsSink for Failing {
            fn write_line(&mut self, _: &str) -> std::io::Result<()> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("disk full"))
            }
        }
        let mut p = ObsPlane::new(Box::new(Failing), ObsConfig::default());
        let reg = Registry::noop();
        p.begin(0.1, 1);
        for t in 0..20 {
            p.observe_tick(&sample(t, 1e6), &reg);
        }
        p.finish(&reg, 0); // reaching here is the assertion
    }
}
