//! The one exporter-flag parser every binary shares.
//!
//! Before this module, `--telemetry`, `--telemetry-out`, `--trace`, and
//! `--bench-out` were parsed independently by `densevlc-cli` and
//! `run_all`, with subtly different error behavior. [`ObsOptions::parse`]
//! extracts the full observability flag set from anywhere in an argument
//! list (removing the tokens it consumes, like the CLI's historical
//! helpers), so every subcommand accepts the same flags with the same
//! errors:
//!
//! ```text
//! --telemetry <json|csv|summary>   record metrics, render at exit
//! --telemetry-out <file>           write that rendering to a file
//! --trace <file>                   Chrome Trace JSON of causal spans
//! --bench-out <file>               BENCH.json timing statistics
//! --bench-repeat <n>               repeats feeding the BENCH medians
//! --obs-stream <file>              live NDJSON observability stream
//! --obs-every <n>                  stream flush cadence in ticks
//! --flight-recorder <file>         crash dump of the last ticks
//! --flight-last <k>                flight ring capacity in lines
//! --watch                          render the monitor view from the stream
//! --profile-out <file>             densevlc-prof/1 self-time profile JSON
//! --folded-out <file>              folded stacks (flamegraph.pl input)
//! --flame-out <file>               self-contained SVG flamegraph
//! ```
//!
//! Errors are returned, not printed: callers decide between `exit(2)`
//! (binaries) and assertions (tests).

use crate::flight::DEFAULT_FLIGHT_CAPACITY;

/// Telemetry rendering requested on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryFormat {
    /// Machine-readable snapshot JSON.
    Json,
    /// Per-instrument CSV.
    Csv,
    /// Human-readable summary table.
    Summary,
}

impl TelemetryFormat {
    /// Parses a `--telemetry` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "json" => Some(TelemetryFormat::Json),
            "csv" => Some(TelemetryFormat::Csv),
            "summary" => Some(TelemetryFormat::Summary),
            _ => None,
        }
    }
}

/// The unified observability flag set.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsOptions {
    /// `--telemetry`: snapshot rendering appended at exit.
    pub telemetry: Option<TelemetryFormat>,
    /// `--telemetry-out`: write the rendering here instead of stdout.
    pub telemetry_out: Option<String>,
    /// `--trace`: Chrome Trace JSON output path.
    pub trace: Option<String>,
    /// `--bench-out`: BENCH.json output path.
    pub bench_out: Option<String>,
    /// `--bench-repeat`: workload repeats for the BENCH medians (≥ 1).
    pub bench_repeat: usize,
    /// `--obs-stream`: NDJSON stream output path.
    pub obs_stream: Option<String>,
    /// `--obs-every`: stream flush cadence in ticks (≥ 1).
    pub obs_every: u64,
    /// `--flight-recorder`: crash-dump output path.
    pub flight_recorder: Option<String>,
    /// `--flight-last`: flight ring capacity in stream lines (≥ 1).
    pub flight_last: usize,
    /// `--watch`: render the monitor view from the stream.
    pub watch: bool,
    /// `--profile-out`: self-time profile JSON (`densevlc-prof/1`) path.
    pub profile_out: Option<String>,
    /// `--folded-out`: folded-stack (Brendan-Gregg format) output path.
    pub folded_out: Option<String>,
    /// `--flame-out`: SVG flamegraph output path.
    pub flame_out: Option<String>,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            telemetry: None,
            telemetry_out: None,
            trace: None,
            bench_out: None,
            bench_repeat: 1,
            obs_stream: None,
            obs_every: 10,
            flight_recorder: None,
            flight_last: DEFAULT_FLIGHT_CAPACITY,
            watch: false,
            profile_out: None,
            folded_out: None,
            flame_out: None,
        }
    }
}

/// Removes `<flag> <value>` from anywhere in `args`; `Err` when the flag
/// is present without a value.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    let Some(v) = args.get(i + 1).cloned() else {
        return Err(format!("{flag} needs a value"));
    };
    if v.starts_with("--") {
        return Err(format!("{flag} needs a value (got flag `{v}`)"));
    }
    args.drain(i..=i + 1);
    Ok(Some(v))
}

/// Removes a bare `<flag>` from anywhere in `args`.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

impl ObsOptions {
    /// Extracts every observability flag from `args`, removing the tokens
    /// it consumes. Unrelated arguments are left in place for the
    /// caller's own parser.
    pub fn parse(args: &mut Vec<String>) -> Result<ObsOptions, String> {
        let mut o = ObsOptions::default();
        if let Some(v) = take_value(args, "--telemetry")? {
            o.telemetry = Some(TelemetryFormat::parse(&v).ok_or(format!(
                "--telemetry expects json, csv or summary (got `{v}`)"
            ))?);
        }
        o.telemetry_out = take_value(args, "--telemetry-out")?;
        o.trace = take_value(args, "--trace")?;
        o.bench_out = take_value(args, "--bench-out")?;
        if let Some(v) = take_value(args, "--bench-repeat")? {
            o.bench_repeat = v
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or(format!("bad --bench-repeat value `{v}`"))?;
        }
        o.obs_stream = take_value(args, "--obs-stream")?;
        if let Some(v) = take_value(args, "--obs-every")? {
            o.obs_every = v
                .parse::<u64>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or(format!("bad --obs-every value `{v}`"))?;
        }
        o.flight_recorder = take_value(args, "--flight-recorder")?;
        if let Some(v) = take_value(args, "--flight-last")? {
            o.flight_last = v
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or(format!("bad --flight-last value `{v}`"))?;
        }
        o.watch = take_switch(args, "--watch");
        o.profile_out = take_value(args, "--profile-out")?;
        o.folded_out = take_value(args, "--folded-out")?;
        o.flame_out = take_value(args, "--flame-out")?;
        Ok(o)
    }

    /// Whether the run needs a live (non-noop) telemetry registry.
    pub fn wants_registry(&self) -> bool {
        self.telemetry.is_some()
            || self.telemetry_out.is_some()
            || self.obs_stream.is_some()
            || self.flight_recorder.is_some()
            || self.watch
    }

    /// Whether the run needs a live tracer.
    pub fn wants_tracer(&self) -> bool {
        self.trace.is_some() || self.bench_out.is_some() || self.wants_profile()
    }

    /// Whether the run builds a self-time profile from its trace.
    pub fn wants_profile(&self) -> bool {
        self.profile_out.is_some() || self.folded_out.is_some() || self.flame_out.is_some()
    }

    /// Whether the run streams observability records at all.
    pub fn wants_stream(&self) -> bool {
        self.obs_stream.is_some() || self.flight_recorder.is_some() || self.watch
    }
}

/// The tick index at which to inject a panic, from the
/// `DENSEVLC_INJECT_PANIC` environment variable (CI's flight-recorder
/// check). Unset or unparseable means no injection.
pub fn inject_panic_from_env() -> Option<u64> {
    std::env::var("DENSEVLC_INJECT_PANIC")
        .ok()
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_the_full_flag_set_from_anywhere() {
        let mut args = argv(&[
            "sim",
            "--obs-stream",
            "out.ndjson",
            "--scenario",
            "2",
            "--telemetry",
            "summary",
            "--flight-recorder",
            "flight.ndjson",
            "--obs-every",
            "5",
            "--flight-last",
            "64",
            "--watch",
            "--trace",
            "trace.json",
        ]);
        let o = ObsOptions::parse(&mut args).unwrap();
        assert_eq!(o.telemetry, Some(TelemetryFormat::Summary));
        assert_eq!(o.obs_stream.as_deref(), Some("out.ndjson"));
        assert_eq!(o.flight_recorder.as_deref(), Some("flight.ndjson"));
        assert_eq!(o.obs_every, 5);
        assert_eq!(o.flight_last, 64);
        assert!(o.watch);
        assert_eq!(o.trace.as_deref(), Some("trace.json"));
        // Only the unrelated arguments remain, in order.
        assert_eq!(args, argv(&["sim", "--scenario", "2"]));
        assert!(o.wants_registry());
        assert!(o.wants_tracer());
        assert!(o.wants_stream());
    }

    #[test]
    fn defaults_match_the_historical_flags() {
        let mut args = argv(&["adapt"]);
        let o = ObsOptions::parse(&mut args).unwrap();
        assert_eq!(o, ObsOptions::default());
        assert_eq!(o.bench_repeat, 1);
        assert_eq!(o.obs_every, 10);
        assert!(!o.wants_registry());
        assert!(!o.wants_tracer());
        assert!(!o.wants_stream());
    }

    #[test]
    fn missing_or_bad_values_are_errors_not_exits() {
        for bad in [
            vec!["--telemetry"],
            vec!["--telemetry", "yaml"],
            vec!["--obs-stream"],
            vec!["--obs-every", "0"],
            vec!["--obs-every", "soon"],
            vec!["--bench-repeat", "0"],
            vec!["--flight-last", "-1"],
            vec!["--obs-stream", "--watch"],
            vec!["--profile-out"],
            vec!["--folded-out", "--watch"],
        ] {
            let mut args = argv(&bad);
            assert!(ObsOptions::parse(&mut args).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn profile_flags_enable_the_tracer_without_bench_out() {
        for flag in ["--profile-out", "--folded-out", "--flame-out"] {
            let mut args = argv(&["sim", flag, "p.out"]);
            let o = ObsOptions::parse(&mut args).unwrap();
            assert!(o.wants_profile(), "{flag}");
            assert!(o.wants_tracer(), "{flag} implies a live tracer");
            assert!(!o.wants_stream(), "{flag} alone does not stream");
            assert_eq!(args, argv(&["sim"]));
        }
        assert!(!ObsOptions::default().wants_profile());
    }

    #[test]
    fn telemetry_out_alone_still_enables_the_registry() {
        let mut args = argv(&["--telemetry-out", "snap.json"]);
        let o = ObsOptions::parse(&mut args).unwrap();
        assert_eq!(o.telemetry, None);
        assert!(o.wants_registry());
        assert!(!o.wants_stream());
    }
}
