//! The terminal monitor view: a textual dashboard rendered from a parsed
//! observability stream. `densevlc-cli monitor` tails an NDJSON file and
//! re-renders this on every poll; `run_all --watch` renders it once at
//! the end of a streamed run.

use std::collections::BTreeMap;

use crate::record::{AlertState, ObsRecord};
use crate::window::WindowStats;

fn fmt_mbps(bps: f64) -> String {
    format!("{:.2}", bps / 1e6)
}

/// Renders the dashboard from the records seen so far. Tolerant of a
/// stream cut off anywhere (live tailing): missing sections are omitted.
pub fn render(records: &[ObsRecord]) -> String {
    let mut out = String::new();
    let mut run = String::new();
    let mut n_rx = 0usize;
    let mut last_tick: Option<&ObsRecord> = None;
    // Latest window snapshot per signal.
    let mut windows: BTreeMap<&str, (u64, &WindowStats)> = BTreeMap::new();
    // Rule name → latest state.
    let mut alerts: BTreeMap<&str, (u64, AlertState)> = BTreeMap::new();
    let mut events = 0usize;
    let mut jobs = 0usize;
    let mut summary: Option<&ObsRecord> = None;
    let mut panic: Option<&ObsRecord> = None;
    let mut profile: Option<&ObsRecord> = None;

    for r in records {
        match r {
            ObsRecord::Meta {
                run: rn, n_rx: n, ..
            } => {
                run = rn.clone();
                n_rx = *n as usize;
            }
            ObsRecord::Tick { .. } => last_tick = Some(r),
            ObsRecord::Window {
                tick,
                signal,
                stats,
            } => {
                windows.insert(signal.as_str(), (*tick, stats));
            }
            ObsRecord::Alert {
                tick, rule, state, ..
            } => {
                alerts.insert(rule.as_str(), (*tick, *state));
            }
            ObsRecord::Event(_) => events += 1,
            ObsRecord::Job { .. } => jobs += 1,
            ObsRecord::Panic { .. } => panic = Some(r),
            ObsRecord::Profile { .. } => profile = Some(r),
            ObsRecord::Summary { .. } => summary = Some(r),
        }
    }

    out.push_str(&format!("== densevlc monitor — {run} ==\n"));
    if let Some(ObsRecord::Tick {
        tick,
        t_s,
        per_rx_bps,
        blocked_links,
        replanned,
        ..
    }) = last_tick
    {
        out.push_str(&format!(
            "tick {tick} (t = {t_s:.2} s)  blocked links: {blocked_links}  replanned: {replanned}\n"
        ));
        out.push_str("  rx    now Mb/s    win p50    win p95    samples\n");
        for (i, bps) in per_rx_bps.iter().enumerate() {
            let signal = format!("rx{i}.bps");
            let (p50, p95, n) = windows
                .get(signal.as_str())
                .map(|(_, s)| (fmt_mbps(s.p50), fmt_mbps(s.p95), s.count.to_string()))
                .unwrap_or_else(|| ("-".into(), "-".into(), "-".into()));
            out.push_str(&format!(
                "  rx{i}  {:>10}  {:>9}  {:>9}  {:>9}\n",
                fmt_mbps(*bps),
                p50,
                p95,
                n
            ));
        }
        // Receivers the meta promised but the tick lacks (defensive).
        for i in per_rx_bps.len()..n_rx {
            out.push_str(&format!("  rx{i}  (no data)\n"));
        }
    }

    for (signal, (_, s)) in &windows {
        if !signal.ends_with(".bps") && !signal.ends_with(".sinr") {
            out.push_str(&format!(
                "  {signal}: mean {:.4} p99 {:.4} over {} samples\n",
                s.mean(),
                s.p99,
                s.count
            ));
        }
    }

    let firing: Vec<String> = alerts
        .iter()
        .filter(|(_, (_, st))| *st == AlertState::Firing)
        .map(|(rule, (tick, _))| format!("{rule} (since tick {tick})"))
        .collect();
    if firing.is_empty() {
        out.push_str("alerts: none firing\n");
    } else {
        out.push_str(&format!("alerts FIRING: {}\n", firing.join(", ")));
    }
    if jobs > 0 {
        out.push_str(&format!("experiment jobs completed: {jobs}\n"));
    }
    if events > 0 {
        out.push_str(&format!("events streamed: {events}\n"));
    }
    if let Some(ObsRecord::Panic {
        message, retained, ..
    }) = panic
    {
        out.push_str(&format!(
            "PANIC: {message} (flight recorder retained {retained} lines)\n"
        ));
    }
    if let Some(ObsRecord::Profile {
        nodes,
        root_s,
        top_path,
        top_self_s,
        ..
    }) = profile
    {
        out.push_str(&format!(
            "profile: {nodes} paths over {root_s:.3} s traced; hottest {top_path} ({top_self_s:.3} s self)\n"
        ));
    }
    if let Some(ObsRecord::Summary {
        ticks,
        mean_system_bps,
        alerts_fired,
        alerts_cleared,
        events_dropped,
        spans_dropped,
    }) = summary
    {
        out.push_str(&format!(
            "run complete: {ticks} ticks, mean system {} Mb/s, alerts {alerts_fired} fired / {alerts_cleared} cleared, drops: {events_dropped} events, {spans_dropped} spans\n",
            fmt_mbps(*mean_system_bps),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::OBS_SCHEMA;

    fn stream() -> Vec<ObsRecord> {
        vec![
            ObsRecord::Meta {
                schema: OBS_SCHEMA.into(),
                run: "sim scenario2".into(),
                tick_s: 0.1,
                n_rx: 2,
                every: 5,
            },
            ObsRecord::Tick {
                tick: 9,
                t_s: 0.9,
                per_rx_bps: vec![2.5e6, 0.0],
                per_rx_sinr: vec![12.0, 0.0],
                blocked_links: 1,
                replanned: true,
            },
            ObsRecord::Window {
                tick: 9,
                signal: "rx0.bps".into(),
                stats: WindowStats {
                    count: 10,
                    sum: 2.5e7,
                    min: 2.5e6,
                    max: 2.5e6,
                    p50: 2.5e6,
                    p95: 2.5e6,
                    p99: 2.5e6,
                    dropped: 0,
                },
            },
            ObsRecord::Alert {
                tick: 9,
                rule: "rx1.throughput".into(),
                signal: "rx1.bps".into(),
                state: AlertState::Firing,
                value: 0.0,
                threshold: 1e6,
            },
        ]
    }

    #[test]
    fn dashboard_shows_ticks_windows_and_firing_alerts() {
        let view = render(&stream());
        assert!(view.contains("sim scenario2"));
        assert!(view.contains("tick 9"));
        assert!(view.contains("rx0        2.50"));
        assert!(view.contains("alerts FIRING: rx1.throughput (since tick 9)"));
    }

    #[test]
    fn a_cleared_alert_leaves_the_firing_list() {
        let mut records = stream();
        records.push(ObsRecord::Alert {
            tick: 19,
            rule: "rx1.throughput".into(),
            signal: "rx1.bps".into(),
            state: AlertState::Cleared,
            value: 2e6,
            threshold: 1e6,
        });
        assert!(render(&records).contains("alerts: none firing"));
    }

    #[test]
    fn an_empty_stream_still_renders_a_header() {
        assert!(render(&[]).contains("densevlc monitor"));
    }
}
