//! Crash-safe flight recorder.
//!
//! A bounded ring of the most recent stream lines (ticks, windows,
//! events, alerts) that a panic hook dumps to a file when the process
//! goes down mid-run — the post-mortem for crashes that never reach the
//! normal end-of-run export. The dump itself is a valid NDJSON stream
//! (parseable by [`crate::record::parse_stream`]) ending in a
//! [`ObsRecord::Panic`] marker.
//!
//! The hook chains the previously installed hook, so backtraces and test
//! harness output keep working. Arming is reference-counted through an
//! atomic flag: [`FlightRecorder::arm`] returns a guard, and dropping the
//! guard disarms the recorder without uninstalling the hook (repeatedly
//! swapping hooks from concurrent tests is racy; a dormant chained hook
//! is not).

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::record::ObsRecord;

/// Default number of stream lines the ring retains.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

#[derive(Debug)]
struct FlightInner {
    capacity: usize,
    lines: VecDeque<String>,
    dropped: u64,
    path: PathBuf,
    /// Context lines (e.g. the stream's meta record) replayed at the top
    /// of every dump, outside the bounded ring.
    context: Vec<String>,
}

impl FlightInner {
    /// Writes the post-mortem. Must never panic: it runs inside a panic
    /// hook, where a second panic aborts the process.
    fn dump(&self, message: &str) {
        let mut out = String::new();
        for l in &self.context {
            out.push_str(l);
            out.push('\n');
        }
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        let marker = ObsRecord::Panic {
            message: message.to_string(),
            retained: self.lines.len() as u64,
            dropped: self.dropped,
        };
        out.push_str(&marker.to_line());
        out.push('\n');
        let _ = std::fs::write(&self.path, out);
    }
}

/// Bounded ring of recent stream lines plus the panic hook that dumps it.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    inner: Arc<Mutex<FlightInner>>,
}

/// Disarms the recorder's panic hook when dropped.
pub struct FlightGuard {
    armed: Arc<AtomicBool>,
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        self.armed.store(false, Ordering::SeqCst);
    }
}

fn lock(inner: &Arc<Mutex<FlightInner>>) -> std::sync::MutexGuard<'_, FlightInner> {
    // A panic while the lock is held poisons it; the dump must still run.
    inner.lock().unwrap_or_else(|p| p.into_inner())
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` lines, dumping to `path`.
    pub fn new(path: &Path, capacity: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(Mutex::new(FlightInner {
                capacity: capacity.max(1),
                lines: VecDeque::new(),
                dropped: 0,
                path: path.to_path_buf(),
                context: Vec::new(),
            })),
        }
    }

    /// Adds a context line replayed at the top of every dump (the stream
    /// meta record, typically). Not subject to the ring capacity.
    pub fn push_context(&self, line: &str) {
        lock(&self.inner).context.push(line.to_string());
    }

    /// Records one stream line, evicting the oldest beyond capacity.
    pub fn record_line(&self, line: &str) {
        let mut inner = lock(&self.inner);
        if inner.lines.len() >= inner.capacity {
            inner.lines.pop_front();
            inner.dropped += 1;
        }
        inner.lines.push_back(line.to_string());
    }

    /// Lines currently retained (tests / monitor).
    pub fn retained(&self) -> usize {
        lock(&self.inner).lines.len()
    }

    /// Installs a panic hook that dumps the ring, chaining the previous
    /// hook. The returned guard disarms (but does not uninstall) the hook
    /// on drop; dumping also happens at most once per arm.
    pub fn arm(&self) -> FlightGuard {
        let armed = Arc::new(AtomicBool::new(true));
        let hook_armed = Arc::clone(&armed);
        let inner = Arc::clone(&self.inner);
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if hook_armed.swap(false, Ordering::SeqCst) {
                let message = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic (non-string payload)".to_string());
                lock(&inner).dump(&message);
            }
            previous(info);
        }));
        FlightGuard { armed }
    }

    /// Writes the dump explicitly (without a panic) — used by `monitor`
    /// to snapshot a live ring, and by tests.
    pub fn dump_now(&self, reason: &str) {
        lock(&self.inner).dump(reason);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{parse_stream_strict, ObsRecord, OBS_SCHEMA};

    fn tick_line(tick: u64) -> String {
        ObsRecord::Tick {
            tick,
            t_s: tick as f64 * 0.1,
            per_rx_bps: vec![1.0],
            per_rx_sinr: vec![2.0],
            blocked_links: 0,
            replanned: false,
        }
        .to_line()
    }

    #[test]
    fn ring_keeps_only_the_last_capacity_lines() {
        let dir = std::env::temp_dir().join("vlc_obs_flight_ring");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.ndjson");
        let rec = FlightRecorder::new(&path, 3);
        for t in 0..10 {
            rec.record_line(&tick_line(t));
        }
        assert_eq!(rec.retained(), 3);
        rec.dump_now("test dump");
        let records = parse_stream_strict(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(records.len(), 4); // 3 ticks + panic marker
        assert!(matches!(records[0], ObsRecord::Tick { tick: 7, .. }));
        match &records[3] {
            ObsRecord::Panic {
                message,
                retained,
                dropped,
            } => {
                assert_eq!(message, "test dump");
                assert_eq!((*retained, *dropped), (3, 7));
            }
            other => panic!("expected panic marker, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn context_lines_survive_ring_eviction() {
        let dir = std::env::temp_dir().join("vlc_obs_flight_ctx");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.ndjson");
        let rec = FlightRecorder::new(&path, 2);
        let meta = ObsRecord::Meta {
            schema: OBS_SCHEMA.into(),
            run: "test".into(),
            tick_s: 0.1,
            n_rx: 1,
            every: 1,
        };
        rec.push_context(&meta.to_line());
        for t in 0..50 {
            rec.record_line(&tick_line(t));
        }
        rec.dump_now("ctx");
        let records = parse_stream_strict(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(records[0], meta, "meta must lead every dump");
        let _ = std::fs::remove_file(&path);
    }

    // The armed panic hook itself is exercised end-to-end in
    // crates/densevlc/tests/obs_stream.rs (catch_unwind) and in CI via
    // DENSEVLC_INJECT_PANIC; installing hooks from unit tests that run
    // concurrently with other panicking tests would be racy here.
}
