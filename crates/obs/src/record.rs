//! The NDJSON stream records and their validating parser.
//!
//! Every line of an observability stream is one JSON object whose `type`
//! field selects the record shape. The writer emits keys in a fixed order
//! and floats in Rust's shortest round-trip formatting, so
//! `parse_line(to_line(r)) == r` exactly — the parser is the same one the
//! round-trip tests, the `obs_check` CI validator, and the monitor view
//! run on, built on `vlc_telemetry::export::value`.
//!
//! Record kinds (`type` values):
//!
//! | type      | emitted                                      |
//! |-----------|----------------------------------------------|
//! | `meta`    | once, at stream start                        |
//! | `tick`    | every simulation tick                        |
//! | `window`  | one per signal every flush interval          |
//! | `event`   | each telemetry event, forwarded at flushes   |
//! | `alert`   | SLO state transitions (fire / clear)         |
//! | `job`     | one per completed `run_all` experiment job   |
//! | `panic`   | written by the flight recorder's crash dump  |
//! | `profile` | self-time profile digest, before the summary |
//! | `summary` | once, at stream end                          |

use crate::window::WindowStats;
use vlc_prof::{Profile, PROF_SCHEMA};
use vlc_telemetry::export::json::{event_from_value, event_to_json};
use vlc_telemetry::export::value::{
    field, field_opt, parse_json, push_f64, push_json_string, JsonValue,
};
use vlc_telemetry::export::ParseError;
use vlc_telemetry::Event;

/// Stream schema identifier carried by every `meta` record.
pub const OBS_SCHEMA: &str = "densevlc-obs/1";

/// Whether an alert transitioned into or out of breach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// The rule's breach streak reached `for_windows`.
    Firing,
    /// The rule's recovery streak reached `clear_windows`.
    Cleared,
}

impl AlertState {
    fn as_str(self) -> &'static str {
        match self {
            AlertState::Firing => "firing",
            AlertState::Cleared => "cleared",
        }
    }
}

/// One line of an observability stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsRecord {
    /// Stream header: schema, run label, and cadence parameters.
    Meta {
        /// Always [`OBS_SCHEMA`]; the parser rejects anything else.
        schema: String,
        /// Human label of the producing run (e.g. `sim scenario2`).
        run: String,
        /// Simulation tick length in seconds (0 when not tick-driven).
        tick_s: f64,
        /// Receivers observed (0 when not a simulation stream).
        n_rx: u64,
        /// Flush / window-emit cadence in ticks.
        every: u64,
    },
    /// One simulation tick.
    Tick {
        /// Tick index from 0.
        tick: u64,
        /// Simulation time, seconds.
        t_s: f64,
        /// Per-receiver throughput under the current plan, bit/s.
        per_rx_bps: Vec<f64>,
        /// Per-receiver SINR (dimensionless).
        per_rx_sinr: Vec<f64>,
        /// LOS links currently blocked by occluders.
        blocked_links: u64,
        /// Whether the controller re-planned this tick.
        replanned: bool,
    },
    /// Rolling-window statistics for one signal.
    Window {
        /// Tick the window ends at (inclusive).
        tick: u64,
        /// Signal name (e.g. `rx0.bps`, `alloc.solve_s`).
        signal: String,
        /// Exact statistics over the window.
        stats: WindowStats,
    },
    /// A telemetry event forwarded into the stream.
    Event(Event),
    /// An SLO rule changed state.
    Alert {
        /// Tick of the evaluation that transitioned the rule.
        tick: u64,
        /// Rule name (e.g. `rx0.throughput`).
        rule: String,
        /// Signal the rule watches.
        signal: String,
        /// Fire or clear.
        state: AlertState,
        /// The statistic value that triggered the transition.
        value: f64,
        /// The rule's threshold.
        threshold: f64,
    },
    /// One completed `run_all` experiment job.
    Job {
        /// Job index in the fixed experiment order.
        index: u64,
        /// Experiment name (e.g. `fig21_baselines`).
        name: String,
    },
    /// Crash marker appended by the flight recorder's dump.
    Panic {
        /// The panic message (as formatted by the panic hook).
        message: String,
        /// Tick records retained in the dump.
        retained: u64,
        /// Older lines the flight ring had already evicted.
        dropped: u64,
    },
    /// Digest of a self-time profile built from the run's trace. The full
    /// profile goes to `--profile-out`; the stream carries the headline so
    /// dashboards and `obs_check` can see profiling happened.
    Profile {
        /// Always [`vlc_prof::PROF_SCHEMA`]; the parser rejects others.
        schema: String,
        /// Distinct call paths in the profile.
        nodes: u64,
        /// Total span calls across all paths.
        calls: u64,
        /// Σ inclusive over root paths — total traced wall time, seconds.
        root_s: f64,
        /// Call path with the most self time.
        top_path: String,
        /// That path's self time, seconds.
        top_self_s: f64,
    },
    /// Stream trailer with end-of-run totals.
    Summary {
        /// Ticks streamed.
        ticks: u64,
        /// Mean system throughput over the run, bit/s.
        mean_system_bps: f64,
        /// Alerts fired.
        alerts_fired: u64,
        /// Alerts cleared.
        alerts_cleared: u64,
        /// Telemetry event-ring drops at the end of the run.
        events_dropped: u64,
        /// Trace span-ring drops at the end of the run.
        spans_dropped: u64,
    },
}

fn push_f64_slice(out: &mut String, vs: &[f64]) {
    out.push('[');
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, *v);
    }
    out.push(']');
}

fn stats_to_json(out: &mut String, s: &WindowStats) {
    out.push_str("{\"count\":");
    out.push_str(&s.count.to_string());
    for (k, v) in [
        ("sum", s.sum),
        ("min", s.min),
        ("max", s.max),
        ("p50", s.p50),
        ("p95", s.p95),
        ("p99", s.p99),
    ] {
        out.push_str(",\"");
        out.push_str(k);
        out.push_str("\":");
        push_f64(out, v);
    }
    out.push_str(",\"dropped\":");
    out.push_str(&s.dropped.to_string());
    out.push('}');
}

impl ObsRecord {
    /// Serializes this record as one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(96);
        match self {
            ObsRecord::Meta {
                schema,
                run,
                tick_s,
                n_rx,
                every,
            } => {
                out.push_str("{\"type\":\"meta\",\"schema\":");
                push_json_string(&mut out, schema);
                out.push_str(",\"run\":");
                push_json_string(&mut out, run);
                out.push_str(",\"tick_s\":");
                push_f64(&mut out, *tick_s);
                out.push_str(&format!(",\"n_rx\":{n_rx},\"every\":{every}}}"));
            }
            ObsRecord::Tick {
                tick,
                t_s,
                per_rx_bps,
                per_rx_sinr,
                blocked_links,
                replanned,
            } => {
                out.push_str(&format!("{{\"type\":\"tick\",\"tick\":{tick},\"t_s\":"));
                push_f64(&mut out, *t_s);
                out.push_str(",\"per_rx_bps\":");
                push_f64_slice(&mut out, per_rx_bps);
                out.push_str(",\"per_rx_sinr\":");
                push_f64_slice(&mut out, per_rx_sinr);
                out.push_str(&format!(
                    ",\"blocked_links\":{blocked_links},\"replanned\":{replanned}}}"
                ));
            }
            ObsRecord::Window {
                tick,
                signal,
                stats,
            } => {
                out.push_str(&format!(
                    "{{\"type\":\"window\",\"tick\":{tick},\"signal\":"
                ));
                push_json_string(&mut out, signal);
                out.push_str(",\"stats\":");
                stats_to_json(&mut out, stats);
                out.push('}');
            }
            ObsRecord::Event(e) => {
                out.push_str("{\"type\":\"event\",\"event\":");
                out.push_str(&event_to_json(e));
                out.push('}');
            }
            ObsRecord::Alert {
                tick,
                rule,
                signal,
                state,
                value,
                threshold,
            } => {
                out.push_str(&format!("{{\"type\":\"alert\",\"tick\":{tick},\"rule\":"));
                push_json_string(&mut out, rule);
                out.push_str(",\"signal\":");
                push_json_string(&mut out, signal);
                out.push_str(",\"state\":\"");
                out.push_str(state.as_str());
                out.push_str("\",\"value\":");
                push_f64(&mut out, *value);
                out.push_str(",\"threshold\":");
                push_f64(&mut out, *threshold);
                out.push('}');
            }
            ObsRecord::Job { index, name } => {
                out.push_str(&format!("{{\"type\":\"job\",\"index\":{index},\"name\":"));
                push_json_string(&mut out, name);
                out.push('}');
            }
            ObsRecord::Panic {
                message,
                retained,
                dropped,
            } => {
                out.push_str("{\"type\":\"panic\",\"message\":");
                push_json_string(&mut out, message);
                out.push_str(&format!(",\"retained\":{retained},\"dropped\":{dropped}}}"));
            }
            ObsRecord::Profile {
                schema,
                nodes,
                calls,
                root_s,
                top_path,
                top_self_s,
            } => {
                out.push_str("{\"type\":\"profile\",\"schema\":");
                push_json_string(&mut out, schema);
                out.push_str(&format!(",\"nodes\":{nodes},\"calls\":{calls},\"root_s\":"));
                push_f64(&mut out, *root_s);
                out.push_str(",\"top_path\":");
                push_json_string(&mut out, top_path);
                out.push_str(",\"top_self_s\":");
                push_f64(&mut out, *top_self_s);
                out.push('}');
            }
            ObsRecord::Summary {
                ticks,
                mean_system_bps,
                alerts_fired,
                alerts_cleared,
                events_dropped,
                spans_dropped,
            } => {
                out.push_str(&format!(
                    "{{\"type\":\"summary\",\"ticks\":{ticks},\"mean_system_bps\":"
                ));
                push_f64(&mut out, *mean_system_bps);
                out.push_str(&format!(
                    ",\"alerts_fired\":{alerts_fired},\"alerts_cleared\":{alerts_cleared},\"events_dropped\":{events_dropped},\"spans_dropped\":{spans_dropped}}}"
                ));
            }
        }
        out
    }

    /// Builds the stream digest of a full profile: node/call totals, the
    /// traced root wall time, and the hottest path by self time (empty
    /// when the profile is — e.g. tracing produced no closed spans).
    pub fn profile_summary(profile: &Profile) -> ObsRecord {
        let top = profile.by_self().into_iter().next();
        ObsRecord::Profile {
            schema: profile.schema.clone(),
            nodes: profile.nodes.len() as u64,
            calls: profile.nodes.iter().map(|n| n.calls).sum(),
            root_s: profile.total_root_s(),
            top_path: top.map(|n| n.path.clone()).unwrap_or_default(),
            top_self_s: top.map(|n| n.self_s).unwrap_or(0.0),
        }
    }

    /// Parses and validates one NDJSON line.
    pub fn parse_line(line: &str) -> Result<ObsRecord, ParseError> {
        let root = parse_json(line)?;
        let obj = root.as_obj("stream record")?;
        let kind = field(obj, "type")?.as_str("type")?;
        match kind {
            "meta" => {
                let schema = field(obj, "schema")?.as_str("schema")?.to_string();
                if schema != OBS_SCHEMA {
                    return Err(ParseError::new(
                        0,
                        format!(
                            "unsupported stream schema \"{schema}\" (expected \"{OBS_SCHEMA}\")"
                        ),
                    ));
                }
                Ok(ObsRecord::Meta {
                    schema,
                    run: field(obj, "run")?.as_str("run")?.to_string(),
                    tick_s: field(obj, "tick_s")?.as_f64("tick_s")?,
                    n_rx: field(obj, "n_rx")?.as_u64("n_rx")?,
                    every: field(obj, "every")?.as_u64("every")?,
                })
            }
            "tick" => Ok(ObsRecord::Tick {
                tick: field(obj, "tick")?.as_u64("tick")?,
                t_s: field(obj, "t_s")?.as_f64("t_s")?,
                per_rx_bps: parse_f64_arr(field(obj, "per_rx_bps")?, "per_rx_bps")?,
                per_rx_sinr: parse_f64_arr(field(obj, "per_rx_sinr")?, "per_rx_sinr")?,
                blocked_links: field(obj, "blocked_links")?.as_u64("blocked_links")?,
                replanned: field(obj, "replanned")?.as_bool("replanned")?,
            }),
            "window" => Ok(ObsRecord::Window {
                tick: field(obj, "tick")?.as_u64("tick")?,
                signal: field(obj, "signal")?.as_str("signal")?.to_string(),
                stats: parse_stats(field(obj, "stats")?)?,
            }),
            "event" => Ok(ObsRecord::Event(event_from_value(field(obj, "event")?)?)),
            "alert" => {
                let state = match field(obj, "state")?.as_str("state")? {
                    "firing" => AlertState::Firing,
                    "cleared" => AlertState::Cleared,
                    other => {
                        return Err(ParseError::new(
                            0,
                            format!("unknown alert state \"{other}\""),
                        ))
                    }
                };
                Ok(ObsRecord::Alert {
                    tick: field(obj, "tick")?.as_u64("tick")?,
                    rule: field(obj, "rule")?.as_str("rule")?.to_string(),
                    signal: field(obj, "signal")?.as_str("signal")?.to_string(),
                    state,
                    value: field(obj, "value")?.as_f64("value")?,
                    threshold: field(obj, "threshold")?.as_f64("threshold")?,
                })
            }
            "job" => Ok(ObsRecord::Job {
                index: field(obj, "index")?.as_u64("index")?,
                name: field(obj, "name")?.as_str("name")?.to_string(),
            }),
            "panic" => Ok(ObsRecord::Panic {
                message: field(obj, "message")?.as_str("message")?.to_string(),
                retained: field(obj, "retained")?.as_u64("retained")?,
                dropped: field(obj, "dropped")?.as_u64("dropped")?,
            }),
            "profile" => {
                let schema = field(obj, "schema")?.as_str("schema")?.to_string();
                if schema != PROF_SCHEMA {
                    return Err(ParseError::new(
                        0,
                        format!(
                            "unsupported profile schema \"{schema}\" (expected \"{PROF_SCHEMA}\")"
                        ),
                    ));
                }
                Ok(ObsRecord::Profile {
                    schema,
                    nodes: field(obj, "nodes")?.as_u64("nodes")?,
                    calls: field(obj, "calls")?.as_u64("calls")?,
                    root_s: field(obj, "root_s")?.as_f64("root_s")?,
                    top_path: field(obj, "top_path")?.as_str("top_path")?.to_string(),
                    top_self_s: field(obj, "top_self_s")?.as_f64("top_self_s")?,
                })
            }
            "summary" => Ok(ObsRecord::Summary {
                ticks: field(obj, "ticks")?.as_u64("ticks")?,
                mean_system_bps: field(obj, "mean_system_bps")?.as_f64("mean_system_bps")?,
                alerts_fired: field(obj, "alerts_fired")?.as_u64("alerts_fired")?,
                alerts_cleared: field(obj, "alerts_cleared")?.as_u64("alerts_cleared")?,
                events_dropped: field(obj, "events_dropped")?.as_u64("events_dropped")?,
                spans_dropped: field_opt(obj, "spans_dropped")
                    .map_or(Ok(0), |v| v.as_u64("spans_dropped"))?,
            }),
            other => Err(ParseError::new(
                0,
                format!("unknown record type \"{other}\""),
            )),
        }
    }
}

fn parse_f64_arr(v: &JsonValue, what: &str) -> Result<Vec<f64>, ParseError> {
    v.as_arr(what)?.iter().map(|x| x.as_f64(what)).collect()
}

fn parse_stats(v: &JsonValue) -> Result<WindowStats, ParseError> {
    let s = v.as_obj("stats")?;
    Ok(WindowStats {
        count: field(s, "count")?.as_u64("count")?,
        sum: field(s, "sum")?.as_f64("sum")?,
        min: field(s, "min")?.as_f64("min")?,
        max: field(s, "max")?.as_f64("max")?,
        p50: field(s, "p50")?.as_f64("p50")?,
        p95: field(s, "p95")?.as_f64("p95")?,
        p99: field(s, "p99")?.as_f64("p99")?,
        dropped: field(s, "dropped")?.as_u64("dropped")?,
    })
}

/// Failure while validating a stream: which line, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// The underlying parse failure.
    pub source: ParseError,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.source)
    }
}

impl std::error::Error for StreamError {}

/// Parses and validates a whole NDJSON stream (empty lines are skipped, a
/// trailing partial line — no terminating newline — is ignored so a live
/// file mid-write can still be tailed).
pub fn parse_stream(text: &str) -> Result<Vec<ObsRecord>, StreamError> {
    parse_lines(text, text.ends_with('\n'))
}

/// [`parse_stream`] that also rejects a trailing unterminated line — the
/// strict form `obs_check` runs on completed streams.
pub fn parse_stream_strict(text: &str) -> Result<Vec<ObsRecord>, StreamError> {
    parse_lines(text, true)
}

fn parse_lines(text: &str, include_last: bool) -> Result<Vec<ObsRecord>, StreamError> {
    let lines: Vec<&str> = text.lines().collect();
    let take = if include_last {
        lines.len()
    } else {
        lines.len().saturating_sub(1)
    };
    lines[..take]
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| {
            ObsRecord::parse_line(l).map_err(|source| StreamError {
                line: i + 1,
                source,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ObsRecord> {
        vec![
            ObsRecord::Meta {
                schema: OBS_SCHEMA.into(),
                run: "sim scenario2".into(),
                tick_s: 0.1,
                n_rx: 4,
                every: 10,
            },
            ObsRecord::Tick {
                tick: 3,
                t_s: 0.30000000000000004,
                per_rx_bps: vec![1.5e6, 0.0],
                per_rx_sinr: vec![12.25, 0.0],
                blocked_links: 2,
                replanned: true,
            },
            ObsRecord::Window {
                tick: 9,
                signal: "rx0.bps".into(),
                stats: WindowStats {
                    count: 10,
                    sum: 1.5e7,
                    min: 1.4e6,
                    max: 1.6e6,
                    p50: 1.5e6,
                    p95: 1.6e6,
                    p99: 1.6e6,
                    dropped: 0,
                },
            },
            ObsRecord::Event(Event {
                t_s: 0.9,
                target: "mac.controller".into(),
                kind: "infeasible_round".into(),
                fields: vec![("budget_w".into(), "0".into())],
            }),
            ObsRecord::Alert {
                tick: 19,
                rule: "rx0.throughput".into(),
                signal: "rx0.bps".into(),
                state: AlertState::Firing,
                value: 0.0,
                threshold: 1e6,
            },
            ObsRecord::Job {
                index: 2,
                name: "fig08_throughput_vs_power".into(),
            },
            ObsRecord::Panic {
                message: "injected panic at tick 5".into(),
                retained: 6,
                dropped: 0,
            },
            ObsRecord::Profile {
                schema: PROF_SCHEMA.into(),
                nodes: 42,
                calls: 128,
                root_s: 1.2500000000000002,
                top_path: "bench.run_all;experiment.fig21_baselines".into(),
                top_self_s: 0.325,
            },
            ObsRecord::Summary {
                ticks: 20,
                mean_system_bps: 5.2e6,
                alerts_fired: 1,
                alerts_cleared: 1,
                events_dropped: 0,
                spans_dropped: 0,
            },
        ]
    }

    #[test]
    fn every_record_kind_round_trips_exactly() {
        for r in samples() {
            let line = r.to_line();
            assert!(!line.contains('\n'), "one line per record: {line}");
            assert_eq!(ObsRecord::parse_line(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn a_stream_round_trips_line_by_line() {
        let text: String = samples().iter().map(|r| r.to_line() + "\n").collect();
        assert_eq!(parse_stream(&text).unwrap(), samples());
        assert_eq!(parse_stream_strict(&text).unwrap(), samples());
    }

    #[test]
    fn a_partial_trailing_line_is_tolerated_only_in_lenient_mode() {
        let mut text: String = samples().iter().map(|r| r.to_line() + "\n").collect();
        text.push_str("{\"type\":\"tick\",\"tick\":99,"); // mid-write
        assert_eq!(parse_stream(&text).unwrap().len(), samples().len());
        let err = parse_stream_strict(&text).unwrap_err();
        assert_eq!(err.line, samples().len() + 1);
    }

    #[test]
    fn bad_lines_are_rejected_with_their_line_number() {
        let good = samples()[0].to_line();
        let text = format!("{good}\nnot json\n");
        let err = parse_stream(&text).unwrap_err();
        assert_eq!(err.line, 2);

        assert!(ObsRecord::parse_line("{\"type\":\"nope\"}").is_err());
        assert!(ObsRecord::parse_line("{}").is_err());
        // A meta record with a foreign schema is rejected up front.
        let foreign = "{\"type\":\"meta\",\"schema\":\"other/9\",\"run\":\"x\",\"tick_s\":0.1,\"n_rx\":1,\"every\":1}";
        assert!(ObsRecord::parse_line(foreign).is_err());
        // So is a profile record with one.
        let foreign = "{\"type\":\"profile\",\"schema\":\"other/9\",\"nodes\":1,\"calls\":1,\"root_s\":0.1,\"top_path\":\"r\",\"top_self_s\":0.1}";
        assert!(ObsRecord::parse_line(foreign).is_err());
    }

    #[test]
    fn profile_summary_digests_the_hottest_path() {
        use vlc_telemetry::ManualClock;
        use vlc_trace::Tracer;
        let clock = ManualClock::new();
        let tracer = Tracer::with_clock(clock.clone());
        let root = tracer.root("run");
        let hot = root.child("hot");
        clock.advance(0.75);
        drop(hot);
        clock.advance(0.25);
        drop(root);
        let profile = Profile::from_snapshot(&tracer.snapshot(), 2);
        let r = ObsRecord::profile_summary(&profile);
        let ObsRecord::Profile {
            ref schema,
            nodes,
            calls,
            root_s,
            ref top_path,
            top_self_s,
        } = r
        else {
            panic!("profile record expected");
        };
        assert_eq!(schema, PROF_SCHEMA);
        assert_eq!((nodes, calls), (2, 2));
        assert_eq!(root_s, 1.0);
        assert_eq!(top_path, "run;hot");
        assert_eq!(top_self_s, 0.75);
        // And it round-trips like every other record.
        assert_eq!(ObsRecord::parse_line(&r.to_line()).unwrap(), r);
    }
}
