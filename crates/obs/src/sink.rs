//! Where the NDJSON stream goes.
//!
//! [`ObsSink`] is deliberately line-oriented — the plane hands it complete
//! serialized records, never partial writes — so every implementation
//! trivially preserves the one-record-per-line invariant the parser
//! depends on.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Destination for stream lines.
pub trait ObsSink {
    /// Appends one record line (without its trailing newline).
    fn write_line(&mut self, line: &str) -> io::Result<()>;
    /// Pushes buffered lines to the underlying medium.
    fn flush(&mut self) -> io::Result<()>;
}

/// Buffered append-to-file sink.
pub struct FileSink {
    w: BufWriter<File>,
}

impl FileSink {
    /// Creates (truncating) the stream file.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(FileSink {
            w: BufWriter::new(File::create(path)?),
        })
    }
}

impl ObsSink for FileSink {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.w.write_all(line.as_bytes())?;
        self.w.write_all(b"\n")
    }

    fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// In-memory sink for tests; cloneable handle reads lines back out.
#[derive(Default, Clone)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The lines written so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// The stream as one newline-terminated string.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for l in self.lines() {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }
}

impl ObsSink for MemorySink {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.lines
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(line.to_string());
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards everything; the disabled-observability stand-in.
#[derive(Default, Clone, Copy)]
pub struct NoopSink;

impl ObsSink for NoopSink {
    fn write_line(&mut self, _line: &str) -> io::Result<()> {
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_accumulates_lines_across_clones() {
        let sink = MemorySink::new();
        let mut writer = sink.clone();
        writer.write_line("{\"a\":1}").unwrap();
        writer.write_line("{\"b\":2}").unwrap();
        assert_eq!(sink.lines().len(), 2);
        assert_eq!(sink.text(), "{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn file_sink_writes_one_record_per_line() {
        let dir = std::env::temp_dir().join("vlc_obs_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.ndjson");
        let mut sink = FileSink::create(&path).unwrap();
        sink.write_line("{\"x\":1}").unwrap();
        sink.flush().unwrap();
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"x\":1}\n");
        let _ = std::fs::remove_file(&path);
    }
}
