//! Streaming observability plane for the DenseVLC reproduction.
//!
//! `vlc-telemetry` answers "what happened over the whole run" (snapshot
//! at exit); `vlc-trace` answers "where did the time go" (spans). This
//! crate answers the operational questions in between — *what is the
//! system doing right now, and was it healthy just before it died* —
//! with four pieces composed behind one [`ObsPlane`]:
//!
//! * **Rolling windows** ([`window`]) — a fixed ring of tick buckets per
//!   signal with exact order statistics, deterministic for any
//!   `vlc-par` worker count.
//! * **NDJSON stream** ([`record`], [`sink`]) — one self-describing JSON
//!   record per line (`meta`/`tick`/`window`/`event`/`alert`/`panic`/
//!   `summary`), flushed every N ticks, with a validating parser used by
//!   tests, CI's `obs_check`, and the monitor view alike.
//! * **Flight recorder** ([`flight`]) — a bounded ring of the most
//!   recent stream lines dumped by a chained panic hook, so a crash
//!   mid-run still leaves a parseable post-mortem.
//! * **SLO alerts** ([`alert`]) — declarative threshold rules with
//!   hysteresis (fire after N breaching windows, clear after M healthy
//!   ones) evaluated at every flush.
//!
//! [`options::ObsOptions`] is the shared command-line surface: every
//! binary parses the same `--telemetry`/`--trace`/`--obs-stream`/… flags
//! through it, and [`monitor::render`] turns a parsed stream back into a
//! terminal dashboard.
//!
//! The plane is strictly read-only with respect to the simulation: it
//! consumes tick samples and registry snapshots, so the streamed and
//! unstreamed code paths produce byte-identical results (enforced by
//! `crates/densevlc/tests/obs_stream.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod flight;
pub mod monitor;
pub mod options;
pub mod plane;
pub mod record;
pub mod sink;
pub mod window;

pub use alert::{densevlc_defaults, Cmp, SloEngine, SloRule, Stat};
pub use flight::{FlightGuard, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use options::{inject_panic_from_env, ObsOptions, TelemetryFormat};
pub use plane::{ObsConfig, ObsPlane, TickSample};
pub use record::{
    parse_stream, parse_stream_strict, AlertState, ObsRecord, StreamError, OBS_SCHEMA,
};
pub use sink::{FileSink, MemorySink, NoopSink, ObsSink};
pub use window::{RollingWindow, WindowConfig, WindowStats};
