//! Declarative SLO rules with hysteresis.
//!
//! A rule watches one windowed signal, compares one statistic of the
//! window against a threshold at every flush, and transitions state only
//! after a run of consecutive evaluations agrees: `for_windows` breaching
//! evaluations to fire, `clear_windows` healthy ones to clear. Hysteresis
//! keeps a signal oscillating around the threshold from flapping the
//! alert on every window.
//!
//! Empty windows (`count == 0`) are skipped — no samples is "no data",
//! not "zero", and counting it either way would fire false alerts at
//! stream start before the first bucket fills.

use crate::record::{AlertState, ObsRecord};
use crate::window::WindowStats;

/// Which side of the threshold is a breach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Breach when the statistic is strictly below the threshold.
    Below,
    /// Breach when the statistic is strictly above the threshold.
    Above,
}

/// Which statistic of the window the rule compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stat {
    /// Arithmetic mean.
    Mean,
    /// Exact median.
    P50,
    /// Exact 95th percentile.
    P95,
    /// Exact 99th percentile.
    P99,
    /// Smallest sample.
    Min,
    /// Largest sample.
    Max,
    /// Sum of samples.
    Sum,
    /// Sample count (e.g. for "any occurrence" rules on event-like signals).
    Count,
}

impl Stat {
    fn of(self, s: &WindowStats) -> f64 {
        match self {
            Stat::Mean => s.mean(),
            Stat::P50 => s.p50,
            Stat::P95 => s.p95,
            Stat::P99 => s.p99,
            Stat::Min => s.min,
            Stat::Max => s.max,
            Stat::Sum => s.sum,
            Stat::Count => s.count as f64,
        }
    }
}

/// One service-level objective over a windowed signal.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Rule name, unique within an engine (e.g. `rx0.throughput`).
    pub name: String,
    /// Windowed signal the rule watches (e.g. `rx0.bps`).
    pub signal: String,
    /// Statistic of the window to compare.
    pub stat: Stat,
    /// Breach direction.
    pub cmp: Cmp,
    /// Threshold value.
    pub threshold: f64,
    /// Consecutive breaching evaluations required to fire (min 1).
    pub for_windows: u32,
    /// Consecutive healthy evaluations required to clear (min 1).
    pub clear_windows: u32,
}

impl SloRule {
    fn breaches(&self, stats: &WindowStats) -> bool {
        let v = self.stat.of(stats);
        match self.cmp {
            Cmp::Below => v < self.threshold,
            Cmp::Above => v > self.threshold,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct RuleState {
    breach_run: u32,
    ok_run: u32,
    firing: bool,
}

/// Evaluates a rule set against window statistics, emitting state
/// transitions as [`ObsRecord::Alert`]s.
#[derive(Debug, Clone, Default)]
pub struct SloEngine {
    rules: Vec<SloRule>,
    states: Vec<RuleState>,
    fired: u64,
    cleared: u64,
}

impl SloEngine {
    /// An engine over the given rules.
    pub fn new(rules: Vec<SloRule>) -> Self {
        let states = vec![RuleState::default(); rules.len()];
        SloEngine {
            rules,
            states,
            fired: 0,
            cleared: 0,
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Rules currently in the firing state.
    pub fn firing(&self) -> Vec<&SloRule> {
        self.rules
            .iter()
            .zip(&self.states)
            .filter(|(_, s)| s.firing)
            .map(|(r, _)| r)
            .collect()
    }

    /// Total fire transitions so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Total clear transitions so far.
    pub fn cleared(&self) -> u64 {
        self.cleared
    }

    /// Evaluates every rule watching `signal` against `stats` (the window
    /// ending at `tick`), returning alert records for any transitions.
    /// Empty windows are skipped without advancing either streak.
    pub fn evaluate(&mut self, tick: u64, signal: &str, stats: &WindowStats) -> Vec<ObsRecord> {
        let mut out = Vec::new();
        if stats.count == 0 {
            return out;
        }
        for (rule, state) in self.rules.iter().zip(self.states.iter_mut()) {
            if rule.signal != signal {
                continue;
            }
            let value = rule.stat.of(stats);
            if rule.breaches(stats) {
                state.breach_run += 1;
                state.ok_run = 0;
                if !state.firing && state.breach_run >= rule.for_windows.max(1) {
                    state.firing = true;
                    self.fired += 1;
                    out.push(ObsRecord::Alert {
                        tick,
                        rule: rule.name.clone(),
                        signal: rule.signal.clone(),
                        state: AlertState::Firing,
                        value,
                        threshold: rule.threshold,
                    });
                }
            } else {
                state.ok_run += 1;
                state.breach_run = 0;
                if state.firing && state.ok_run >= rule.clear_windows.max(1) {
                    state.firing = false;
                    self.cleared += 1;
                    out.push(ObsRecord::Alert {
                        tick,
                        rule: rule.name.clone(),
                        signal: rule.signal.clone(),
                        state: AlertState::Cleared,
                        value,
                        threshold: rule.threshold,
                    });
                }
            }
        }
        out
    }
}

/// The default DenseVLC rule catalogue (documented in
/// `docs/OBSERVABILITY.md` §SLO rules):
///
/// * `rx{i}.throughput` — mean per-RX throughput below `target_bps` for
///   2 consecutive windows (clears after 2 healthy windows). Catches a
///   receiver starved by blockage or power-budget contention.
/// * `alloc.solver_latency` — p99 solver wall-time above
///   `solver_budget_s` (fires after 1, clears after 2). Wall-time is
///   environment-dependent; this rule is for live monitoring, not
///   deterministic replay.
/// * `phy.uncorrectable` — any RS-uncorrectable block in a window
///   (sum > 0, fire/clear after 1).
pub fn densevlc_defaults(n_rx: usize, target_bps: f64, solver_budget_s: f64) -> Vec<SloRule> {
    let mut rules = Vec::with_capacity(n_rx + 2);
    for i in 0..n_rx {
        rules.push(SloRule {
            name: format!("rx{i}.throughput"),
            signal: format!("rx{i}.bps"),
            stat: Stat::Mean,
            cmp: Cmp::Below,
            threshold: target_bps,
            for_windows: 2,
            clear_windows: 2,
        });
    }
    rules.push(SloRule {
        name: "alloc.solver_latency".into(),
        signal: "alloc.solve_s".into(),
        stat: Stat::P99,
        cmp: Cmp::Above,
        threshold: solver_budget_s,
        for_windows: 1,
        clear_windows: 2,
    });
    rules.push(SloRule {
        name: "phy.uncorrectable".into(),
        signal: "phy.rs_uncorrectable".into(),
        stat: Stat::Sum,
        cmp: Cmp::Above,
        threshold: 0.0,
        for_windows: 1,
        clear_windows: 1,
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(mean: f64) -> WindowStats {
        WindowStats {
            count: 4,
            sum: mean * 4.0,
            min: mean,
            max: mean,
            p50: mean,
            p95: mean,
            p99: mean,
            dropped: 0,
        }
    }

    fn rule() -> SloRule {
        SloRule {
            name: "rx0.throughput".into(),
            signal: "rx0.bps".into(),
            stat: Stat::Mean,
            cmp: Cmp::Below,
            threshold: 1e6,
            for_windows: 2,
            clear_windows: 2,
        }
    }

    #[test]
    fn fires_only_after_for_windows_consecutive_breaches() {
        let mut e = SloEngine::new(vec![rule()]);
        assert!(
            e.evaluate(9, "rx0.bps", &stats(0.0)).is_empty(),
            "1st breach"
        );
        let fired = e.evaluate(19, "rx0.bps", &stats(0.0));
        assert_eq!(fired.len(), 1, "2nd consecutive breach fires");
        assert!(matches!(
            fired[0],
            ObsRecord::Alert {
                state: AlertState::Firing,
                tick: 19,
                ..
            }
        ));
        assert_eq!(e.firing().len(), 1);
        // Already firing: further breaches emit nothing new.
        assert!(e.evaluate(29, "rx0.bps", &stats(0.0)).is_empty());
        assert_eq!(e.fired(), 1);
    }

    #[test]
    fn a_single_healthy_window_resets_the_breach_streak() {
        let mut e = SloEngine::new(vec![rule()]);
        e.evaluate(9, "rx0.bps", &stats(0.0));
        e.evaluate(19, "rx0.bps", &stats(2e6)); // breach streak broken
        assert!(e.evaluate(29, "rx0.bps", &stats(0.0)).is_empty());
        assert_eq!(e.fired(), 0);
    }

    #[test]
    fn clears_only_after_clear_windows_consecutive_healthy() {
        let mut e = SloEngine::new(vec![rule()]);
        e.evaluate(9, "rx0.bps", &stats(0.0));
        e.evaluate(19, "rx0.bps", &stats(0.0)); // fires
        assert!(e.evaluate(29, "rx0.bps", &stats(2e6)).is_empty(), "1st ok");
        let cleared = e.evaluate(39, "rx0.bps", &stats(2e6));
        assert_eq!(cleared.len(), 1);
        assert!(matches!(
            cleared[0],
            ObsRecord::Alert {
                state: AlertState::Cleared,
                ..
            }
        ));
        assert!(e.firing().is_empty());
        assert_eq!((e.fired(), e.cleared()), (1, 1));
    }

    #[test]
    fn empty_windows_advance_neither_streak() {
        let mut e = SloEngine::new(vec![rule()]);
        e.evaluate(9, "rx0.bps", &stats(0.0));
        e.evaluate(19, "rx0.bps", &WindowStats::default()); // no data
                                                            // The breach streak survived the gap.
        assert_eq!(e.evaluate(29, "rx0.bps", &stats(0.0)).len(), 1);
    }

    #[test]
    fn rules_only_see_their_own_signal() {
        let mut e = SloEngine::new(vec![rule()]);
        e.evaluate(9, "rx1.bps", &stats(0.0));
        e.evaluate(19, "rx1.bps", &stats(0.0));
        assert_eq!(e.fired(), 0);
    }

    #[test]
    fn default_catalogue_covers_throughput_solver_and_fec() {
        let rules = densevlc_defaults(2, 1e6, 0.05);
        let names: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "rx0.throughput",
                "rx1.throughput",
                "alloc.solver_latency",
                "phy.uncorrectable"
            ]
        );
        // An uncorrectable block fires immediately.
        let mut e = SloEngine::new(rules);
        let s = WindowStats {
            count: 1,
            sum: 1.0,
            min: 1.0,
            max: 1.0,
            p50: 1.0,
            p95: 1.0,
            p99: 1.0,
            dropped: 0,
        };
        assert_eq!(e.evaluate(9, "phy.rs_uncorrectable", &s).len(), 1);
    }
}
