//! A minimal recursive-descent JSON reader shared by the Chrome-trace and
//! BENCH parsers. Crate-internal on purpose: the workspace carries no
//! serialization crate, and the two formats this crate reads are small.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub(crate) fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad keyword at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 code point starting here.
                let s =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8 in string")?;
                let ch = s.chars().next().expect("non-empty by construction");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

/// Escapes a string for embedding in JSON output (without the quotes).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, -2.5e2, "x\n\"y\""], "b": {"c": true, "d": null}}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-250.0)
        );
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\n\"y\"")
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "line\nquote\" slash\\ tab\t control\u{1} π";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).expect("parses");
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "[1] trailing", "\"open"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let escaped = "\"\\u03c0 direct-π\"";
        let v = parse(escaped).expect("parses");
        assert_eq!(v.as_str(), Some("π direct-π"));
    }
}
