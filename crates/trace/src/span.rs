//! The tracer, RAII span handles, and the bounded finished-span ring.

use crate::snapshot::TraceSnapshot;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use vlc_telemetry::{Clock, MonotonicClock};

/// Default capacity of the finished-span ring. Large enough that every
/// workload in this repo fits without eviction; determinism of the recorded
/// tree is only guaranteed while the ring does not overflow (the eviction
/// order depends on span *finish* order, which is scheduling-dependent).
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// Sequence-number base for [`Span::child_indexed`], far above any
/// plausible [`Span::child`] counter so the two kinds of children never
/// collide in the structural-id hash.
const INDEXED_SEQ_BASE: u64 = 1 << 32;

thread_local! {
    static CURRENT_TRACK: Cell<u32> = const { Cell::new(0) };
}

/// The lane ("track") spans opened on the current thread are labelled
/// with. The main thread is track 0; `vlc-par` workers set their own via
/// [`set_current_track`].
pub fn current_track() -> u32 {
    CURRENT_TRACK.with(Cell::get)
}

/// Sets the current thread's track. Worker threads call this once right
/// after spawning; the thread-local dies with the thread.
pub fn set_current_track(track: u32) {
    CURRENT_TRACK.with(|c| c.set(track));
}

/// The track for worker `w` spawned from a thread on `spawner` track:
/// workers of the main thread get lanes `1..`, workers of nested pools get
/// `spawner·256 + w + 1` so lanes stay distinct one level down.
pub fn worker_track(spawner: u32, w: usize) -> u32 {
    spawner
        .saturating_mul(256)
        .saturating_add(w as u32)
        .saturating_add(1)
}

/// Structural span id: FNV-1a over `(parent id, name, sibling sequence)`.
/// Depends only on the span's position in the tree — never on which thread
/// created it or when — which is what makes the recorded tree identical
/// for any worker count.
fn span_id(parent_id: u64, name: &str, seq: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for b in parent_id
        .to_le_bytes()
        .into_iter()
        .chain([0xfe])
        .chain(name.bytes())
        .chain([0xff])
        .chain(seq.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    // Id 0 is reserved for "no parent"; remap the (astronomically rare)
    // collision instead of colliding with the root sentinel.
    if h == 0 {
        1
    } else {
        h
    }
}

/// One finished span, as stored in the ring and exported in snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Structural id (see module docs); never 0.
    pub id: u64,
    /// Parent span id, or 0 for a root.
    pub parent_id: u64,
    /// Sibling sequence used to derive the id: the per-parent counter for
    /// [`Span::child`], `2³² + index` for [`Span::child_indexed`].
    pub seq: u64,
    /// Span name (e.g. `mac.plan`).
    pub name: String,
    /// Clock time at open, seconds.
    pub start_s: f64,
    /// Clock time at drop, seconds.
    pub end_s: f64,
    /// Lane of the opening thread (0 = main, ≥1 = pool workers). Excluded
    /// from the determinism contract.
    pub track: u32,
    /// `key=value` attributes in attachment order.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Span duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Bounded ring of finished spans: overflow evicts the oldest record and
/// counts it, so a runaway workload degrades to "recent history" instead
/// of unbounded memory.
struct SpanRing {
    capacity: usize,
    buf: VecDeque<SpanRecord>,
    dropped: u64,
}

impl SpanRing {
    fn push(&mut self, record: SpanRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(record);
    }
}

struct TracerInner {
    clock: Box<dyn Clock>,
    ring: Mutex<SpanRing>,
    root_seq: AtomicU64,
}

/// The span recorder. `Tracer::default()` is the no-op tracer, matching
/// `Registry`'s convention; clones share the same ring.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(noop)"),
            Some(inner) => {
                let ring = inner.ring.lock().unwrap();
                write!(
                    f,
                    "Tracer({} spans, {} dropped)",
                    ring.buf.len(),
                    ring.dropped
                )
            }
        }
    }
}

impl Tracer {
    /// A live tracer on the wall clock with the default ring capacity.
    pub fn new() -> Self {
        Self::with_clock(MonotonicClock::new())
    }

    /// A live tracer on an injected clock (deterministic runs pass
    /// [`ManualClock`](vlc_telemetry::ManualClock)).
    pub fn with_clock(clock: impl Clock + 'static) -> Self {
        Self::with_clock_and_capacity(clock, DEFAULT_SPAN_CAPACITY)
    }

    /// A live tracer with an explicit clock and ring capacity (min 1).
    pub fn with_clock_and_capacity(clock: impl Clock + 'static, capacity: usize) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                clock: Box::new(clock),
                ring: Mutex::new(SpanRing {
                    capacity: capacity.max(1),
                    buf: VecDeque::new(),
                    dropped: 0,
                }),
                root_seq: AtomicU64::new(0),
            })),
        }
    }

    /// The inert tracer: hands out no-op spans, records nothing, allocates
    /// nothing. Every operation costs one branch.
    pub fn noop() -> Self {
        Tracer { inner: None }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a root span (parent id 0). Roots are expected to be opened
    /// from one thread at a time; their sequence is a global counter.
    pub fn root(&self, name: &str) -> Span {
        match &self.inner {
            None => Span::noop(),
            Some(inner) => {
                let seq = inner.root_seq.fetch_add(1, Ordering::Relaxed);
                Span::open(Arc::clone(inner), 0, seq, name)
            }
        }
    }

    /// Snapshot of every finished span, sorted by `(start, parent, seq,
    /// name, id)` — a deterministic order under `ManualClock`.
    pub fn snapshot(&self) -> TraceSnapshot {
        match &self.inner {
            None => TraceSnapshot {
                spans: Vec::new(),
                dropped: 0,
            },
            Some(inner) => {
                let ring = inner.ring.lock().unwrap();
                let mut spans: Vec<SpanRecord> = ring.buf.iter().cloned().collect();
                spans.sort_by(|a, b| {
                    a.start_s
                        .total_cmp(&b.start_s)
                        .then(a.parent_id.cmp(&b.parent_id))
                        .then(a.seq.cmp(&b.seq))
                        .then(a.name.cmp(&b.name))
                        .then(a.id.cmp(&b.id))
                });
                TraceSnapshot {
                    spans,
                    dropped: ring.dropped,
                }
            }
        }
    }
}

struct SpanData {
    tracer: Arc<TracerInner>,
    id: u64,
    parent_id: u64,
    seq: u64,
    name: String,
    start_s: f64,
    track: u32,
    attrs: Mutex<Vec<(String, String)>>,
    child_seq: AtomicU64,
}

/// An in-flight span: records itself into the tracer's ring when dropped.
/// The no-op span ([`Span::noop`]) carries nothing and every operation on
/// it is a single branch.
#[must_use = "a span measures the scope it lives in; dropping it immediately records zero duration"]
pub struct Span {
    data: Option<Box<SpanData>>,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.data {
            None => write!(f, "Span(noop)"),
            Some(d) => write!(f, "Span({} #{:#x})", d.name, d.id),
        }
    }
}

impl Span {
    /// The inert span: children are no-ops, attributes vanish, nothing is
    /// recorded on drop. This is what uninstrumented call paths pass.
    pub fn noop() -> Span {
        Span { data: None }
    }

    /// Whether this span records anything.
    pub fn is_enabled(&self) -> bool {
        self.data.is_some()
    }

    /// This span's structural id (`None` on the no-op span).
    pub fn id(&self) -> Option<u64> {
        self.data.as_ref().map(|d| d.id)
    }

    fn open(tracer: Arc<TracerInner>, parent_id: u64, seq: u64, name: &str) -> Span {
        let start_s = tracer.clock.now_s();
        Span {
            data: Some(Box::new(SpanData {
                id: span_id(parent_id, name, seq),
                parent_id,
                seq,
                name: name.to_string(),
                start_s,
                track: current_track(),
                attrs: Mutex::new(Vec::new()),
                child_seq: AtomicU64::new(0),
                tracer,
            })),
        }
    }

    /// Opens a child span at the next sibling sequence. Use this at call
    /// sites that create children *sequentially* (one thread at a time);
    /// for parallel fan-out use [`Span::child_indexed`] so the child's id
    /// does not depend on worker arrival order.
    pub fn child(&self, name: &str) -> Span {
        match &self.data {
            None => Span::noop(),
            Some(d) => {
                let seq = d.child_seq.fetch_add(1, Ordering::Relaxed);
                Span::open(Arc::clone(&d.tracer), d.id, seq, name)
            }
        }
    }

    /// Opens a child span whose sibling sequence is the work-item `index`
    /// — the fan-out form: the child's structural id depends only on
    /// `(parent, name, index)`, so the recorded tree is identical for any
    /// worker count.
    pub fn child_indexed(&self, name: &str, index: usize) -> Span {
        match &self.data {
            None => Span::noop(),
            Some(d) => Span::open(
                Arc::clone(&d.tracer),
                d.id,
                INDEXED_SEQ_BASE + index as u64,
                name,
            ),
        }
    }

    /// Attaches a `key=value` attribute (kept in attachment order).
    pub fn attr(&self, key: &str, value: &str) {
        if let Some(d) = &self.data {
            d.attrs
                .lock()
                .unwrap()
                .push((key.to_string(), value.to_string()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(d) = self.data.take() {
            let end_s = d.tracer.clock.now_s();
            let record = SpanRecord {
                id: d.id,
                parent_id: d.parent_id,
                seq: d.seq,
                name: d.name,
                start_s: d.start_s,
                end_s,
                track: d.track,
                attrs: d.attrs.into_inner().unwrap(),
            };
            d.tracer.ring.lock().unwrap().push(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_telemetry::ManualClock;

    #[test]
    fn noop_tracer_records_nothing_and_is_disabled() {
        let tracer = Tracer::noop();
        assert!(!tracer.is_enabled());
        let root = tracer.root("r");
        assert!(!root.is_enabled());
        assert_eq!(root.id(), None);
        let child = root.child("c");
        child.attr("k", "v");
        let indexed = root.child_indexed("i", 7);
        drop(indexed);
        drop(child);
        drop(root);
        let snap = tracer.snapshot();
        assert_eq!(snap.spans.len(), 0);
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn spans_record_times_and_attrs_under_manual_clock() {
        let clock = ManualClock::new();
        let tracer = Tracer::with_clock(clock.clone());
        let root = tracer.root("round");
        clock.advance(1.0);
        let child = root.child("phase");
        child.attr("k", "v");
        clock.advance(0.5);
        drop(child);
        clock.advance(0.25);
        drop(root);
        let snap = tracer.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let round = snap.find("round").expect("root recorded");
        let phase = snap.find("phase").expect("child recorded");
        assert_eq!(round.parent_id, 0);
        assert_eq!(phase.parent_id, round.id);
        assert_eq!(round.start_s, 0.0);
        assert_eq!(round.end_s, 1.75);
        assert_eq!(phase.start_s, 1.0);
        assert_eq!(phase.duration_s(), 0.5);
        assert_eq!(phase.attrs, vec![("k".to_string(), "v".to_string())]);
    }

    #[test]
    fn structural_ids_are_position_dependent_only() {
        // The same tree built twice (fresh tracers) yields the same ids.
        let build = || {
            let tracer = Tracer::with_clock(ManualClock::new());
            let root = tracer.root("r");
            let a = root.child("a");
            let b = root.child("a"); // same name, next sibling seq
            let i5 = root.child_indexed("item", 5);
            let ids = (a.id(), b.id(), i5.id(), root.id());
            drop((a, b, i5, root));
            ids
        };
        let first = build();
        let second = build();
        assert_eq!(first, second);
        // Sibling sequence disambiguates same-named children.
        assert_ne!(first.0, first.1);
        // Indexed children live in their own sequence namespace.
        assert_ne!(first.0, first.2);
    }

    #[test]
    fn indexed_children_ignore_creation_order() {
        let ids_in_order = |order: &[usize]| {
            let tracer = Tracer::with_clock(ManualClock::new());
            let root = tracer.root("r");
            let mut ids: Vec<(usize, u64)> = order
                .iter()
                .map(|&i| (i, root.child_indexed("item", i).id().unwrap()))
                .collect();
            ids.sort_by_key(|&(i, _)| i);
            drop(root);
            ids
        };
        assert_eq!(ids_in_order(&[0, 1, 2, 3]), ids_in_order(&[3, 1, 0, 2]));
    }

    #[test]
    fn ring_overflow_evicts_oldest_and_counts() {
        let clock = ManualClock::new();
        let tracer = Tracer::with_clock_and_capacity(clock.clone(), 3);
        let root = tracer.root("r");
        for i in 0..5 {
            clock.advance(1.0);
            drop(root.child_indexed("item", i));
        }
        drop(root);
        let snap = tracer.snapshot();
        // Capacity 3: items 0 and 1 were evicted by 3 and 4; the root's
        // own record then evicted item 2.
        assert_eq!(snap.dropped, 3);
        assert_eq!(snap.spans.len(), 3);
        let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"r"));
        assert!(!snap
            .spans
            .iter()
            .any(|s| s.name == "item" && s.seq == INDEXED_SEQ_BASE));
    }

    #[test]
    fn worker_tracks_nest_without_colliding() {
        assert_eq!(worker_track(0, 0), 1);
        assert_eq!(worker_track(0, 3), 4);
        assert_eq!(worker_track(2, 0), 513);
        assert_ne!(worker_track(1, 0), worker_track(0, 1));
    }

    #[test]
    fn track_is_captured_from_the_opening_thread() {
        let tracer = Tracer::with_clock(ManualClock::new());
        let root = tracer.root("r");
        std::thread::scope(|scope| {
            let root = &root;
            scope
                .spawn(move || {
                    set_current_track(worker_track(0, 1));
                    drop(root.child_indexed("on_worker", 0));
                })
                .join()
                .unwrap();
        });
        drop(root);
        let snap = tracer.snapshot();
        assert_eq!(snap.find("on_worker").unwrap().track, 2);
        assert_eq!(snap.find("r").unwrap().track, 0);
    }
}
