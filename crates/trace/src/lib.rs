//! Causal span tracing for the DenseVLC stack.
//!
//! Where `vlc-telemetry` answers *how much* (flat counters and duration
//! histograms), this crate answers *why and in what order*: a [`Tracer`]
//! records hierarchical [`Span`]s — each with an explicit span id, parent
//! id, and `key=value` attributes — into a bounded ring, and the resulting
//! [`TraceSnapshot`] exports to Chrome Trace Event JSON loadable in
//! Perfetto or `chrome://tracing` ([`TraceSnapshot::to_chrome_json`]).
//!
//! Three properties drive the design, mirroring the telemetry crate:
//!
//! 1. **Zero-cost opt-out.** [`Tracer::noop()`] hands out inert spans:
//!    every operation on the default path is one `Option` branch and
//!    allocates nothing. Library APIs take `&Span` so uninstrumented
//!    callers pass [`Span::noop()`].
//! 2. **Deterministic under [`ManualClock`](vlc_telemetry::ManualClock).**
//!    Span ids are *structural* — an FNV-1a hash of `(parent id, name,
//!    sibling sequence)` — so the id of a span does not depend on which
//!    worker thread created it or in what order threads ran. Fan-out call
//!    sites use [`Span::child_indexed`] with the work-item index as the
//!    sequence, making the whole tree identical for any `DENSEVLC_JOBS`
//!    (as long as the span ring does not overflow).
//! 3. **Per-worker lanes.** Each span carries the *track* of the thread
//!    that opened it; `vlc-par` workers tag their threads via
//!    [`set_current_track`], so the Chrome export shows one lane per
//!    worker. Which worker ran which item is inherently scheduling-
//!    dependent, so tracks are metadata *excluded* from the determinism
//!    contract (the canonical [`TraceSnapshot::tree_string`] omits them).
//!
//! The same span data doubles as the perf harness: [`bench::BenchReport`]
//! aggregates per-span-name duration statistics (median / MAD / min / max)
//! into the BENCH.json format consumed by the `bench-compare` regression
//! gate (see `docs/BENCHMARKING.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod chrome;
mod json;
mod snapshot;
mod span;

pub use bench::{
    format_regressions, BenchReport, BenchStats, CompareTolerance, Regression, BENCH_SCHEMA,
};
pub use chrome::{parse_chrome_json, ChromeEvent};
pub use snapshot::TraceSnapshot;
pub use span::{
    current_track, set_current_track, worker_track, Span, SpanRecord, Tracer, DEFAULT_SPAN_CAPACITY,
};
