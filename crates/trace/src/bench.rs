//! BENCH.json: per-span-name duration statistics and the regression rule
//! behind the `bench-compare` gate.
//!
//! A [`BenchReport`] aggregates every span in a [`TraceSnapshot`] by name
//! into robust statistics — median, MAD (median absolute deviation), min,
//! max, sample count — and serializes to the versioned BENCH.json format
//! (`docs/BENCHMARKING.md` documents the schema). Two reports are diffed
//! with [`BenchReport::compare`]: a phase regresses when its new median
//! exceeds the old median by *both* a relative factor and the larger of a
//! MAD-scaled noise band and an absolute floor, so sub-millisecond jitter
//! on fast phases never trips the gate.

use crate::json::{escape, parse, Json};
use crate::snapshot::TraceSnapshot;

/// Schema tag written into every BENCH.json file.
pub const BENCH_SCHEMA: &str = "densevlc-bench/1";

/// Robust duration statistics for one span name, in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStats {
    /// Number of spans aggregated.
    pub samples: u64,
    /// Median duration.
    pub median_s: f64,
    /// Median absolute deviation from the median.
    pub mad_s: f64,
    /// Fastest sample.
    pub min_s: f64,
    /// Slowest sample.
    pub max_s: f64,
}

/// A BENCH.json document: per-span-name statistics plus run provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema tag ([`BENCH_SCHEMA`]).
    pub schema: String,
    /// Worker count the run used.
    pub jobs: usize,
    /// How many times the workload was repeated.
    pub repeats: usize,
    /// `(span name, stats)` sorted by name.
    pub entries: Vec<(String, BenchStats)>,
}

/// Noise tolerance for [`BenchReport::compare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareTolerance {
    /// Minimum relative slowdown to flag (0.2 = 20 %).
    pub rel: f64,
    /// Noise band width in MADs of the old distribution.
    pub mad_k: f64,
    /// Absolute floor in seconds: deltas below this never flag.
    pub abs_floor_s: f64,
}

impl Default for CompareTolerance {
    fn default() -> Self {
        CompareTolerance {
            rel: 0.2,
            mad_k: 5.0,
            abs_floor_s: 0.002,
        }
    }
}

/// One flagged regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The regressed span name.
    pub name: String,
    /// Baseline median, seconds.
    pub old_median_s: f64,
    /// New median, seconds.
    pub new_median_s: f64,
    /// The threshold the new median had to stay under.
    pub threshold_s: f64,
}

/// Renders flagged regressions as the aligned table `bench_compare` and
/// `bench_gate` both print — one place for the format, so their outputs
/// (and the tests pinning them) cannot drift apart.
pub fn format_regressions(regressions: &[Regression]) -> String {
    let mut out = String::new();
    for r in regressions {
        out.push_str(&format!(
            "  {:<32} {:>12.6}s -> {:>12.6}s (threshold {:+.6}s)\n",
            r.name, r.old_median_s, r.new_median_s, r.threshold_s
        ));
    }
    out
}

/// Median of a sorted slice (mean of the middle pair for even lengths).
fn median_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

impl BenchStats {
    /// Computes the statistics from raw durations.
    pub fn from_durations(mut durations: Vec<f64>) -> Self {
        durations.sort_by(f64::total_cmp);
        let median = median_sorted(&durations);
        let mut deviations: Vec<f64> = durations.iter().map(|d| (d - median).abs()).collect();
        deviations.sort_by(f64::total_cmp);
        BenchStats {
            samples: durations.len() as u64,
            median_s: median,
            mad_s: median_sorted(&deviations),
            min_s: durations.first().copied().unwrap_or(0.0),
            max_s: durations.last().copied().unwrap_or(0.0),
        }
    }
}

impl BenchReport {
    /// Aggregates a trace snapshot: one entry per distinct span name.
    pub fn from_snapshot(snapshot: &TraceSnapshot, jobs: usize, repeats: usize) -> Self {
        let mut by_name: Vec<(String, Vec<f64>)> = Vec::new();
        for span in &snapshot.spans {
            match by_name.iter_mut().find(|(n, _)| *n == span.name) {
                Some((_, durations)) => durations.push(span.duration_s()),
                None => by_name.push((span.name.clone(), vec![span.duration_s()])),
            }
        }
        by_name.sort_by(|a, b| a.0.cmp(&b.0));
        BenchReport {
            schema: BENCH_SCHEMA.to_string(),
            jobs,
            repeats,
            entries: by_name
                .into_iter()
                .map(|(name, durations)| (name, BenchStats::from_durations(durations)))
                .collect(),
        }
    }

    /// The stats for one span name, if present.
    pub fn stats(&self, name: &str) -> Option<&BenchStats> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Serializes to the BENCH.json format (deterministic: entries are
    /// name-sorted and floats use shortest-roundtrip formatting).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"schema\": \"{}\",\n  \"jobs\": {},\n  \"repeats\": {},\n  \"phases\": {{\n",
            escape(&self.schema),
            self.jobs,
            self.repeats
        );
        let rows: Vec<String> = self
            .entries
            .iter()
            .map(|(name, s)| {
                format!(
                    "    \"{}\": {{\"samples\": {}, \"median_s\": {:?}, \"mad_s\": {:?}, \"min_s\": {:?}, \"max_s\": {:?}}}",
                    escape(name),
                    s.samples,
                    s.median_s,
                    s.mad_s,
                    s.min_s,
                    s.max_s
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses a BENCH.json document, validating the schema tag.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing `schema`")?;
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "unsupported schema `{schema}` (expected `{BENCH_SCHEMA}`)"
            ));
        }
        let num = |v: &Json, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("missing number `{key}`"))
        };
        let phases = match doc.get("phases") {
            Some(Json::Obj(fields)) => fields,
            _ => return Err("missing `phases` object".to_string()),
        };
        let mut entries = Vec::with_capacity(phases.len());
        for (name, stats) in phases {
            entries.push((
                name.clone(),
                BenchStats {
                    samples: num(stats, "samples")? as u64,
                    median_s: num(stats, "median_s")?,
                    mad_s: num(stats, "mad_s")?,
                    min_s: num(stats, "min_s")?,
                    max_s: num(stats, "max_s")?,
                },
            ));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(BenchReport {
            schema: schema.to_string(),
            jobs: num(&doc, "jobs").unwrap_or(0.0) as usize,
            repeats: num(&doc, "repeats").unwrap_or(0.0) as usize,
            entries,
        })
    }

    /// Diffs `new` against `self` (the baseline): a phase is flagged when
    /// its new median exceeds
    /// `old median + max(rel · old median, mad_k · old MAD, abs floor)`.
    /// Phases present in only one report are skipped (the workload set may
    /// legitimately evolve across PRs). Improvements never flag.
    pub fn compare(&self, new: &BenchReport, tol: &CompareTolerance) -> Vec<Regression> {
        let mut regressions = Vec::new();
        for (name, old) in &self.entries {
            let Some(fresh) = new.stats(name) else {
                continue;
            };
            let band = (tol.rel * old.median_s)
                .max(tol.mad_k * old.mad_s)
                .max(tol.abs_floor_s);
            let threshold = old.median_s + band;
            if fresh.median_s > threshold {
                regressions.push(Regression {
                    name: name.clone(),
                    old_median_s: old.median_s,
                    new_median_s: fresh.median_s,
                    threshold_s: threshold,
                });
            }
        }
        regressions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;
    use vlc_telemetry::ManualClock;

    fn report_with(name: &str, medians: &[f64]) -> BenchReport {
        BenchReport {
            schema: BENCH_SCHEMA.to_string(),
            jobs: 1,
            repeats: medians.len(),
            entries: vec![(
                name.to_string(),
                BenchStats::from_durations(medians.to_vec()),
            )],
        }
    }

    #[test]
    fn stats_are_robust_medians() {
        let s = BenchStats::from_durations(vec![3.0, 1.0, 2.0, 100.0]);
        assert_eq!(s.samples, 4);
        assert_eq!(s.median_s, 2.5);
        assert_eq!(s.min_s, 1.0);
        assert_eq!(s.max_s, 100.0);
        // Deviations from 2.5, sorted: [0.5, 0.5, 1.5, 97.5] → median 1.0.
        assert_eq!(s.mad_s, 1.0);
        let empty = BenchStats::from_durations(vec![]);
        assert_eq!(empty.samples, 0);
        assert_eq!(empty.median_s, 0.0);
    }

    #[test]
    fn from_snapshot_groups_by_name() {
        let clock = ManualClock::new();
        let tracer = Tracer::with_clock(clock.clone());
        let root = tracer.root("run");
        for i in 0..3 {
            let child = root.child_indexed("phase", i);
            clock.advance(0.1 * (i + 1) as f64);
            drop(child);
        }
        drop(root);
        let report = BenchReport::from_snapshot(&tracer.snapshot(), 2, 1);
        assert_eq!(report.jobs, 2);
        let phase = report.stats("phase").expect("aggregated");
        assert_eq!(phase.samples, 3);
        assert!((phase.median_s - 0.2).abs() < 1e-12);
        assert_eq!(report.stats("run").unwrap().samples, 1);
        // Entries are name-sorted.
        assert!(report.entries.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let report = report_with("mac.plan", &[0.001, 0.0015, 0.0012]);
        let parsed = BenchReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(parsed, report);
    }

    #[test]
    fn from_json_rejects_other_schemas() {
        let text = r#"{"schema": "something-else/9", "phases": {}}"#;
        assert!(BenchReport::from_json(text).is_err());
        assert!(BenchReport::from_json("{}").is_err());
    }

    #[test]
    fn identical_reports_never_regress() {
        let report = report_with("mac.plan", &[0.010, 0.011, 0.012]);
        assert!(report
            .compare(&report, &CompareTolerance::default())
            .is_empty());
    }

    #[test]
    fn large_slowdowns_flag_and_improvements_do_not() {
        let old = report_with("alloc.optimal.solve", &[0.100, 0.101, 0.102]);
        let slow = report_with("alloc.optimal.solve", &[0.200, 0.201, 0.202]);
        let fast = report_with("alloc.optimal.solve", &[0.010, 0.011, 0.012]);
        let tol = CompareTolerance::default();
        let found = old.compare(&slow, &tol);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name, "alloc.optimal.solve");
        assert!(found[0].new_median_s > found[0].threshold_s);
        assert!(old.compare(&fast, &tol).is_empty());
    }

    #[test]
    fn abs_floor_shields_micro_phases() {
        // A 3× slowdown on a 0.1 ms phase stays under the 2 ms floor.
        let old = report_with("tiny", &[0.0001]);
        let slow = report_with("tiny", &[0.0003]);
        assert!(old.compare(&slow, &CompareTolerance::default()).is_empty());
    }

    #[test]
    fn mad_band_shields_noisy_phases() {
        // Median 10 ms with 4 ms MAD: 5·MAD = 20 ms of headroom, so a
        // 25 ms median (2.5×) is still inside the noise band.
        let old = report_with("noisy", &[0.006, 0.010, 0.014, 0.002, 0.018]);
        let wobble = report_with("noisy", &[0.025]);
        assert!(old
            .compare(&wobble, &CompareTolerance::default())
            .is_empty());
        // 35 ms is beyond both the relative and MAD bands: flagged.
        let bad = report_with("noisy", &[0.035]);
        assert_eq!(old.compare(&bad, &CompareTolerance::default()).len(), 1);
    }

    #[test]
    fn phases_unique_to_one_report_are_skipped() {
        let old = report_with("gone", &[0.5]);
        let new = report_with("fresh", &[0.5]);
        assert!(old.compare(&new, &CompareTolerance::default()).is_empty());
    }
}
