//! Chrome Trace Event JSON export (Perfetto / `chrome://tracing`) and a
//! validating parser for tests and tooling.
//!
//! Each finished span becomes one complete event (`"ph": "X"`) with
//! microsecond timestamps; the span's worker lane is the `tid`, so
//! Perfetto shows one horizontal lane per `vlc-par` worker. Metadata
//! events name the process and every lane. Span attributes and the
//! structural span/parent ids ride in `args`, so the causal tree survives
//! the export even though the Chrome format itself is flat.

use crate::json::{escape, parse, Json};
use crate::snapshot::TraceSnapshot;

/// One event read back from a Chrome Trace Event file (the subset this
/// crate emits: complete `X` events and `M` metadata events).
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Event name (span name, or `process_name`/`thread_name` metadata).
    pub name: String,
    /// Phase: `X` for spans, `M` for metadata.
    pub ph: String,
    /// Start timestamp in microseconds (0 for metadata).
    pub ts_us: f64,
    /// Duration in microseconds (0 for metadata).
    pub dur_us: f64,
    /// Process id (always 1 here).
    pub pid: u64,
    /// Thread id — the span's worker lane.
    pub tid: u64,
    /// `args` fields as strings (numbers are formatted back to strings).
    pub args: Vec<(String, String)>,
}

impl ChromeEvent {
    /// The value of an `args` field, if present.
    pub fn arg(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl TraceSnapshot {
    /// Renders the snapshot as Chrome Trace Event JSON (the
    /// `{"traceEvents": [...]}` object form Perfetto loads directly).
    /// Events appear in snapshot order, so the output is byte-identical
    /// for identical snapshots.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<String> = Vec::with_capacity(self.spans.len() + 4);
        events.push(
            r#"{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"densevlc"}}"#
                .to_string(),
        );
        let mut tracks: Vec<u32> = self.spans.iter().map(|s| s.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        for track in tracks {
            let lane = if track == 0 {
                "main".to_string()
            } else {
                format!("worker {track}")
            };
            events.push(format!(
                r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{track},"args":{{"name":"{lane}"}}}}"#
            ));
        }
        for span in &self.spans {
            let mut args = format!(
                r#""span_id":"{:#018x}","parent_id":"{:#018x}""#,
                span.id, span.parent_id
            );
            for (k, v) in &span.attrs {
                args.push_str(&format!(r#","{}":"{}""#, escape(k), escape(v)));
            }
            events.push(format!(
                r#"{{"name":"{}","cat":"densevlc","ph":"X","ts":{:.3},"dur":{:.3},"pid":1,"tid":{},"args":{{{args}}}}}"#,
                escape(&span.name),
                span.start_s * 1e6,
                span.duration_s() * 1e6,
                span.track,
            ));
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&events.join(",\n"));
        out.push_str("\n],\"displayTimeUnit\":\"ms\"");
        if self.dropped > 0 {
            out.push_str(&format!(",\"spansDropped\":{}", self.dropped));
        }
        out.push_str("}\n");
        out
    }
}

/// Parses a Chrome Trace Event document (either the object form with
/// `traceEvents` or a bare event array) into its events, validating the
/// fields this crate's exporter guarantees.
pub fn parse_chrome_json(text: &str) -> Result<Vec<ChromeEvent>, String> {
    let doc = parse(text)?;
    let events = match &doc {
        Json::Arr(_) => &doc,
        Json::Obj(_) => doc
            .get("traceEvents")
            .ok_or("missing `traceEvents` field")?,
        _ => return Err("top level must be an object or array".to_string()),
    };
    let items = events.as_arr().ok_or("`traceEvents` must be an array")?;
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let field_str = |key: &str| -> Result<String, String> {
            item.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("event {i}: missing string `{key}`"))
        };
        let field_num = |key: &str| -> Option<f64> { item.get(key).and_then(Json::as_f64) };
        let ph = field_str("ph")?;
        if ph == "X" && field_num("dur").is_none() {
            return Err(format!("event {i}: complete event without `dur`"));
        }
        let args = match item.get("args") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| {
                    let rendered = match v {
                        Json::Str(s) => s.clone(),
                        Json::Num(n) => format!("{n}"),
                        Json::Bool(b) => format!("{b}"),
                        other => format!("{other:?}"),
                    };
                    (k.clone(), rendered)
                })
                .collect(),
            _ => Vec::new(),
        };
        out.push(ChromeEvent {
            name: field_str("name")?,
            ph,
            ts_us: field_num("ts").unwrap_or(0.0),
            dur_us: field_num("dur").unwrap_or(0.0),
            pid: field_num("pid").unwrap_or(0.0) as u64,
            tid: field_num("tid").unwrap_or(0.0) as u64,
            args,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;
    use vlc_telemetry::ManualClock;

    fn sample() -> TraceSnapshot {
        let clock = ManualClock::new();
        let tracer = Tracer::with_clock(clock.clone());
        let root = tracer.root("round");
        root.attr("budget_w", "1.2");
        clock.advance(0.5);
        let child = root.child("plan");
        clock.advance(0.25);
        drop(child);
        drop(root);
        tracer.snapshot()
    }

    #[test]
    fn export_parses_back_with_ids_and_lanes() {
        let snap = sample();
        let json = snap.to_chrome_json();
        let events = parse_chrome_json(&json).expect("valid Chrome JSON");
        // process_name + thread_name(track 0) + two spans.
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].name, "process_name");
        assert_eq!(events[1].name, "thread_name");
        assert_eq!(events[1].arg("name"), Some("main"));
        let round = events.iter().find(|e| e.name == "round").expect("round");
        let plan = events.iter().find(|e| e.name == "plan").expect("plan");
        assert_eq!(round.ph, "X");
        assert_eq!(round.ts_us, 0.0);
        assert_eq!(round.dur_us, 750_000.0);
        assert_eq!(plan.ts_us, 500_000.0);
        assert_eq!(round.arg("budget_w"), Some("1.2"));
        // The parent link survives the flat format through args.
        assert_eq!(plan.arg("parent_id"), round.arg("span_id"));
        assert_eq!(round.arg("parent_id"), Some("0x0000000000000000"));
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(sample().to_chrome_json(), sample().to_chrome_json());
    }

    #[test]
    fn names_and_attrs_are_escaped() {
        let clock = ManualClock::new();
        let tracer = Tracer::with_clock(clock);
        let root = tracer.root("odd \"name\"\n");
        root.attr("k\\ey", "v\"al\tue");
        drop(root);
        let json = tracer.snapshot().to_chrome_json();
        let events = parse_chrome_json(&json).expect("still valid JSON");
        let span = events.iter().find(|e| e.ph == "X").expect("span event");
        assert_eq!(span.name, "odd \"name\"\n");
        assert_eq!(span.arg("k\\ey"), Some("v\"al\tue"));
    }

    #[test]
    fn parser_rejects_malformed_traces() {
        assert!(parse_chrome_json("{}").is_err());
        assert!(parse_chrome_json(r#"{"traceEvents": 3}"#).is_err());
        assert!(parse_chrome_json(r#"{"traceEvents": [{"ph": "X"}]}"#).is_err());
        assert!(parse_chrome_json("12").is_err());
    }

    #[test]
    fn bare_array_form_is_accepted() {
        let events = parse_chrome_json(r#"[{"name":"a","ph":"X","ts":1,"dur":2,"pid":1,"tid":0}]"#)
            .expect("array form parses");
        assert_eq!(events[0].dur_us, 2.0);
    }
}
