//! Plain-data view of a finished trace: lookups, the canonical tree
//! rendering, and deepest-chain extraction.

use crate::span::SpanRecord;

/// Every finished span at snapshot time, in deterministic order, plus the
/// number of records the ring evicted (0 in any run small enough to care
/// about determinism).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSnapshot {
    /// Finished spans sorted by `(start, parent, seq, name, id)`.
    pub spans: Vec<SpanRecord>,
    /// Records evicted by ring overflow.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The first span with this name, in snapshot order.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// All spans with this name, in snapshot order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Root spans (parent id 0), in sibling order.
    pub fn roots(&self) -> Vec<&SpanRecord> {
        self.children_of(0)
    }

    /// Children of the span with id `parent`, sorted by `(start, seq,
    /// name, id)` — sibling order that is deterministic under
    /// `ManualClock` regardless of which workers ran them.
    pub fn children_of(&self, parent: u64) -> Vec<&SpanRecord> {
        let mut children: Vec<&SpanRecord> = self
            .spans
            .iter()
            .filter(|s| s.parent_id == parent)
            .collect();
        children.sort_by(|a, b| {
            a.start_s
                .total_cmp(&b.start_s)
                .then(a.seq.cmp(&b.seq))
                .then(a.name.cmp(&b.name))
                .then(a.id.cmp(&b.id))
        });
        children
    }

    /// The canonical tree rendering: names, attributes, and timings in
    /// nesting order. Tracks (worker lanes) are deliberately **excluded**
    /// — they are scheduling metadata, and this string is the determinism
    /// contract's unit of comparison (identical for jobs ∈ {1, max} under
    /// `ManualClock`).
    pub fn tree_string(&self) -> String {
        let mut out = String::new();
        for root in self.roots() {
            self.render(root, 0, &mut out);
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "({} spans dropped by ring overflow)\n",
                self.dropped
            ));
        }
        out
    }

    fn render(&self, span: &SpanRecord, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&span.name);
        for (k, v) in &span.attrs {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push_str(&format!(
            " @{:.9}s +{:.9}s\n",
            span.start_s,
            span.duration_s()
        ));
        for child in self.children_of(span.id) {
            self.render(child, depth + 1, out);
        }
    }

    /// The `k` deepest root→leaf chains as `a → b → c` strings, deepest
    /// first (ties broken lexicographically) — a quick "where does the
    /// causality bottom out" summary for examples and logs.
    pub fn deepest_chains(&self, k: usize) -> Vec<String> {
        let mut chains: Vec<(usize, String)> = Vec::new();
        for root in self.roots() {
            self.collect_chains(root, &mut Vec::new(), &mut chains);
        }
        chains.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        chains.into_iter().take(k).map(|(_, c)| c).collect()
    }

    fn collect_chains<'a>(
        &'a self,
        span: &'a SpanRecord,
        path: &mut Vec<&'a str>,
        chains: &mut Vec<(usize, String)>,
    ) {
        path.push(&span.name);
        let children = self.children_of(span.id);
        if children.is_empty() {
            chains.push((path.len(), path.join(" → ")));
        } else {
            for child in children {
                self.collect_chains(child, path, chains);
            }
        }
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;
    use vlc_telemetry::ManualClock;

    fn sample() -> TraceSnapshot {
        let clock = ManualClock::new();
        let tracer = Tracer::with_clock(clock.clone());
        let root = tracer.root("round");
        root.attr("budget_w", "1.2");
        clock.advance(1.0);
        {
            let plan = root.child("plan");
            clock.advance(0.5);
            {
                let rank = plan.child("rank");
                clock.advance(0.25);
                drop(rank);
            }
            drop(plan);
        }
        drop(root.child_indexed("item", 1));
        drop(root.child_indexed("item", 0));
        drop(root);
        tracer.snapshot()
    }

    #[test]
    fn tree_renders_nesting_attrs_and_times() {
        let tree = sample().tree_string();
        // The two `item` siblings share a start time; index order (seq)
        // breaks the tie, so the rendering is stable.
        let expected = concat!(
            "round budget_w=1.2 @0.000000000s +1.750000000s\n",
            "  plan @1.000000000s +0.750000000s\n",
            "    rank @1.500000000s +0.250000000s\n",
            "  item @1.750000000s +0.000000000s\n",
            "  item @1.750000000s +0.000000000s\n",
        );
        assert_eq!(tree, expected);
    }

    #[test]
    fn deepest_chains_rank_by_depth() {
        let chains = sample().deepest_chains(2);
        assert_eq!(chains[0], "round → plan → rank");
        assert_eq!(chains[1], "round → item");
        assert_eq!(sample().deepest_chains(99).len(), 3);
    }

    #[test]
    fn lookups_and_sibling_order() {
        let snap = sample();
        assert_eq!(snap.len(), 5);
        assert!(!snap.is_empty());
        assert_eq!(snap.roots().len(), 1);
        assert_eq!(snap.spans_named("item").count(), 2);
        let root_id = snap.find("round").unwrap().id;
        let kids = snap.children_of(root_id);
        assert_eq!(kids.len(), 3);
        // `item 0` sorts before `item 1` via seq despite equal start times
        // and reversed creation order.
        assert_eq!(kids[1].seq + 1, kids[2].seq);
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let snap = Tracer::with_clock(ManualClock::new()).snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.tree_string(), "");
        assert!(snap.deepest_chains(3).is_empty());
    }
}
