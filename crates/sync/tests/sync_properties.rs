//! Property tests for the synchronization substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vlc_sync::{ClockModel, SyncScheme};

proptest! {
    /// Clock read/true_time_of are inverse for any drift and offset.
    #[test]
    fn clock_read_is_invertible(
        offset in -1.0f64..1.0,
        drift_ppm in -100.0f64..100.0,
        t in 0.0f64..1e4,
    ) {
        let c = ClockModel { offset_s: offset, drift_ppm, jitter_sigma_s: 0.0 };
        prop_assert!((c.true_time_of(c.read(t)) - t).abs() < 1e-6);
    }

    /// NLOS start offsets are always non-negative and bounded by one
    /// sample period plus a few sigma of detection noise.
    #[test]
    fn nlos_offsets_are_bounded(seed in any::<u64>(), rate in 1e3f64..1e6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scheme = SyncScheme::nlos_paper();
        for _ in 0..32 {
            let off = scheme.sample_start_offset(rate, &mut rng);
            prop_assert!(off >= 0.0);
            prop_assert!(off < 1e-6 + 6.0 * 0.06e-6, "offset {off}");
        }
    }

    /// Median pairwise delays are finite, non-negative, and NTP/PTP never
    /// does worse than sync-off at the same rate (statistically, with a
    /// generous slack for Monte-Carlo noise).
    #[test]
    fn scheme_ordering_is_stable(seed in any::<u64>(), rate in 2e3f64..80e3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let off = SyncScheme::SyncOff.median_pairwise_delay(rate, 801, &mut rng);
        let ptp = SyncScheme::NtpPtp.median_pairwise_delay(rate, 801, &mut rng);
        prop_assert!(off.is_finite() && off >= 0.0);
        prop_assert!(ptp.is_finite() && ptp >= 0.0);
        prop_assert!(off > ptp * 1.2, "off {off} vs ptp {ptp} at {rate}");
    }

    /// Disciplining a clock shrinks its offset without touching drift.
    #[test]
    fn discipline_preserves_drift(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let wild = ClockModel::beaglebone(&mut rng);
        let tame = wild.disciplined(5e-6, &mut rng);
        prop_assert_eq!(tame.drift_ppm, wild.drift_ppm);
        prop_assert!(tame.offset_s.abs() <= 6.0 * 5e-6 + 1e-12);
    }
}
