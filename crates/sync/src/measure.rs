//! Oscilloscope-style symbol-edge delay measurement (paper §8.1).
//!
//! The paper connects two TXs' LED anodes to a scope and measures the time
//! difference between corresponding symbol edges, taking the median over a
//! frame and averaging 10 such medians. We reproduce the estimator on
//! sampled waveforms: find the transition instants (with sub-sample linear
//! interpolation), pair each edge of one waveform with the nearest edge of
//! the other, and return the median pairing distance.

/// Finds the transition instants of a symbol waveform, in seconds.
///
/// An edge is a sign change between consecutive samples; its instant is
/// refined by linear interpolation between the two samples.
pub fn symbol_edges(samples: &[f64], sample_rate_hz: f64) -> Vec<f64> {
    assert!(sample_rate_hz > 0.0, "sample rate must be positive");
    let dt = 1.0 / sample_rate_hz;
    let mut edges = Vec::new();
    for i in 1..samples.len() {
        let (a, b) = (samples[i - 1], samples[i]);
        if (a < 0.0 && b >= 0.0) || (a > 0.0 && b <= 0.0) {
            // Linear interpolation to the zero crossing.
            let frac = if (b - a).abs() > 1e-30 {
                a / (a - b)
            } else {
                0.0
            };
            edges.push((i as f64 - 1.0 + frac) * dt);
        }
    }
    edges
}

/// The median delay between corresponding edges of two waveforms, in
/// seconds. Both TXs transmit the *same* chip stream, so the k-th edge of
/// one waveform corresponds to the k-th edge of the other — pairing by
/// index, exactly like reading two aligned scope channels. (Pairing by
/// nearest edge instead would alias offsets near a whole chip to ~0.)
///
/// Returns `None` when either waveform has no edges (e.g. one TX never
/// transmitted — the failure mode the measurement is designed to expose).
pub fn median_edge_delay(a: &[f64], b: &[f64], sample_rate_hz: f64) -> Option<f64> {
    let ea = symbol_edges(a, sample_rate_hz);
    let eb = symbol_edges(b, sample_rate_hz);
    if ea.is_empty() || eb.is_empty() {
        return None;
    }
    let mut delays: Vec<f64> = ea
        .iter()
        .zip(&eb)
        .map(|(&ta, &tb)| (ta - tb).abs())
        .collect();
    delays.sort_by(|x, y| x.partial_cmp(y).expect("finite delays"));
    Some(delays[delays.len() / 2])
}

/// The paper's full procedure: median delay per frame, averaged over
/// several frames. `frames` holds pairs of waveforms.
pub fn average_median_delay(frames: &[(Vec<f64>, Vec<f64>)], sample_rate_hz: f64) -> Option<f64> {
    let medians: Vec<f64> = frames
        .iter()
        .filter_map(|(a, b)| median_edge_delay(a, b, sample_rate_hz))
        .collect();
    if medians.is_empty() {
        return None;
    }
    Some(medians.iter().sum::<f64>() / medians.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_phy::manchester::manchester_encode;
    use vlc_phy::waveform::{render, WaveformConfig};

    fn waveform(delay_s: f64, n: usize) -> Vec<f64> {
        let cfg = WaveformConfig::paper();
        let chips = manchester_encode(&[0xA5, 0x3C, 0x96, 0x0F]);
        render(&chips, &cfg, 1.0, delay_s, n)
    }

    #[test]
    fn edges_of_square_wave_are_periodic() {
        let cfg = WaveformConfig::paper();
        let chips = manchester_encode(&[0xAA]); // 10101010 → alternating
        let w = render(&chips, &cfg, 1.0, 0.0, 170);
        let edges = symbol_edges(&w, cfg.sample_rate_hz);
        assert!(!edges.is_empty());
        // Manchester 0xAA chips alternate every chip: edges every 10 µs…
        for pair in edges.windows(2) {
            let gap = pair[1] - pair[0];
            assert!(gap > 5e-6 && gap < 25e-6, "gap {gap}");
        }
    }

    #[test]
    fn identical_waveforms_have_zero_delay() {
        let w = waveform(0.0, 800);
        let d = median_edge_delay(&w, &w, 1e6).expect("edges exist");
        assert!(d < 1e-12, "delay {d}");
    }

    #[test]
    fn known_offset_is_recovered() {
        // Hard-edged (one-sample) transitions quantize edge instants to the
        // half-sample grid, so the 1 Msps measurement resolves the offset
        // only to ±1 sample; the Table 4 experiment uses a scope-rate
        // waveform for sub-sample accuracy.
        let a = waveform(0.0, 900);
        let b = waveform(3.2e-6, 900);
        let d = median_edge_delay(&a, &b, 1e6).expect("edges exist");
        assert!((d - 3.2e-6).abs() <= 1.0e-6, "measured {d}");
    }

    #[test]
    fn scope_rate_waveform_gives_sub_sample_accuracy() {
        // At a 20 Msps scope emulation the same 3.2 µs offset is resolved
        // within 50 ns.
        let cfg = WaveformConfig {
            symbol_rate_hz: 100_000.0,
            sample_rate_hz: 20e6,
        };
        let chips = manchester_encode(&[0xA5, 0x3C, 0x96, 0x0F]);
        let a = render(&chips, &cfg, 1.0, 0.0, 16_000);
        let b = render(&chips, &cfg, 1.0, 3.2e-6, 16_000);
        let d = median_edge_delay(&a, &b, cfg.sample_rate_hz).expect("edges exist");
        assert!((d - 3.2e-6).abs() < 5e-8, "measured {d}");
    }

    #[test]
    fn silent_channel_yields_none() {
        let a = waveform(0.0, 400);
        let silent = vec![0.0; 400];
        assert!(median_edge_delay(&a, &silent, 1e6).is_none());
        assert!(symbol_edges(&silent, 1e6).is_empty());
    }

    #[test]
    fn average_over_frames_smooths_noise() {
        let frames: Vec<(Vec<f64>, Vec<f64>)> = (0..10)
            .map(|i| {
                let jitter = 1e-6 + 0.2e-6 * (i as f64 - 4.5).signum();
                (waveform(0.0, 900), waveform(jitter, 900))
            })
            .collect();
        let avg = average_median_delay(&frames, 1e6).expect("frames have edges");
        assert!((avg - 1e-6).abs() <= 1.0e-6, "avg {avg}");
    }

    #[test]
    fn sub_sample_offsets_resolved_at_scope_rate() {
        // A 0.35 µs offset (a third of a 1 Msps sample) is resolved at the
        // 20 Msps scope emulation rate.
        let cfg = WaveformConfig {
            symbol_rate_hz: 100_000.0,
            sample_rate_hz: 20e6,
        };
        let chips = manchester_encode(&[0xA5, 0x3C, 0x96, 0x0F]);
        let a = render(&chips, &cfg, 1.0, 0.0, 16_000);
        let b = render(&chips, &cfg, 1.0, 0.35e-6, 16_000);
        let d = median_edge_delay(&a, &b, cfg.sample_rate_hz).expect("edges exist");
        assert!((d - 0.35e-6).abs() < 5e-8, "measured {d}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sample_rate_panics() {
        symbol_edges(&[1.0, -1.0], 0.0);
    }
}
