//! Transmitter synchronization for the DenseVLC reproduction.
//!
//! CFM-MIMO beamspots only work when the TXs of a beamspot radiate the same
//! symbol at the same instant. The paper (§6) compares three regimes:
//!
//! * **No synchronization** — TXs start when the Ethernet multicast frame
//!   happens to reach them; median pairwise start error 10.040 µs (Table 4).
//! * **NTP/PTP** — the controller's clock is NTP-disciplined and PTP aligns
//!   the TXs' clocks; TXs start at an agreed absolute time, residual error
//!   4.565 µs. Fundamental limit: the stack runs in user space on an OS.
//! * **NLOS-VLC** (the paper's contribution) — a leading TX flashes a pilot,
//!   the floor reflects it, and follower TXs detect it with their
//!   downward-facing photodiodes and start after a fixed guard period;
//!   residual error 0.575 µs, set by the follower's 1 Msps sampling phase.
//!
//! This crate models all three as stochastic start-offset generators
//! ([`model`]), implements the pilot-detection physics on top of the
//! floor-bounce channel ([`nlos`]), and provides the oscilloscope-style
//! symbol-edge delay measurement used by the paper's Table 4 ([`measure`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod measure;
pub mod model;
pub mod nlos;

pub use clock::ClockModel;
pub use measure::{median_edge_delay, symbol_edges};
pub use model::SyncScheme;
pub use nlos::{NlosSyncLink, PilotDetection};
