//! Free-running clock models for the embedded TX computers.
//!
//! Each BeagleBone's clock has a fixed offset, a frequency drift (crystal
//! tolerance, tens of ppm), and per-event OS scheduling jitter. These three
//! terms are what the synchronization schemes fight against.

use rand::Rng;
use serde::{Deserialize, Serialize};
use vlc_telemetry::Registry;

/// A free-running clock with offset, drift, and per-event jitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockModel {
    /// Constant offset from true time, in seconds.
    pub offset_s: f64,
    /// Frequency error in parts-per-million (positive = runs fast).
    pub drift_ppm: f64,
    /// Standard deviation of per-event OS scheduling jitter, in seconds.
    pub jitter_sigma_s: f64,
}

impl ClockModel {
    /// An ideal clock.
    pub const IDEAL: ClockModel = ClockModel {
        offset_s: 0.0,
        drift_ppm: 0.0,
        jitter_sigma_s: 0.0,
    };

    /// A typical BeagleBone-class embedded computer: crystal within
    /// ±25 ppm, OS jitter on the order of ten microseconds.
    pub fn beaglebone<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ClockModel {
            offset_s: rng.gen_range(-0.5..0.5), // unsynchronized boot offset
            drift_ppm: rng.gen_range(-25.0..25.0),
            jitter_sigma_s: 10.5e-6,
        }
    }

    /// The local reading of this clock at true time `t`.
    pub fn read(&self, t_true: f64) -> f64 {
        t_true * (1.0 + self.drift_ppm * 1e-6) + self.offset_s
    }

    /// The true time at which this clock reads `t_local`.
    pub fn true_time_of(&self, t_local: f64) -> f64 {
        (t_local - self.offset_s) / (1.0 + self.drift_ppm * 1e-6)
    }

    /// A jittered event time: the true time at which an event scheduled for
    /// local time `t_local` actually fires, including OS scheduling noise.
    pub fn fire_at<R: Rng + ?Sized>(&self, t_local: f64, rng: &mut R) -> f64 {
        self.true_time_of(t_local) + gaussian(rng) * self.jitter_sigma_s
    }

    /// Returns this clock after a discipline step that removes all but
    /// `residual_sigma_s` of the offset (what NTP+PTP achieve).
    pub fn disciplined<R: Rng + ?Sized>(&self, residual_sigma_s: f64, rng: &mut R) -> Self {
        ClockModel {
            offset_s: gaussian(rng) * residual_sigma_s,
            drift_ppm: self.drift_ppm,
            jitter_sigma_s: self.jitter_sigma_s,
        }
    }

    /// Publishes this clock's state into the `sync.offset_s` and
    /// `sync.drift_ppm` gauges so a running simulation can expose how far
    /// the TX clocks have wandered.
    pub fn observe(&self, telemetry: &Registry) {
        telemetry.gauge("sync.offset_s").set(self.offset_s);
        telemetry.gauge("sync.drift_ppm").set(self.drift_ppm);
    }
}

/// One standard normal sample (Box–Muller).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_clock_reads_true_time() {
        let c = ClockModel::IDEAL;
        assert_eq!(c.read(42.0), 42.0);
        assert_eq!(c.true_time_of(42.0), 42.0);
    }

    #[test]
    fn read_and_true_time_are_inverse() {
        let c = ClockModel {
            offset_s: 0.3,
            drift_ppm: 20.0,
            jitter_sigma_s: 0.0,
        };
        for t in [0.0, 1.0, 1e3] {
            assert!((c.true_time_of(c.read(t)) - t).abs() < 1e-9);
        }
    }

    #[test]
    fn drift_accumulates_over_time() {
        let c = ClockModel {
            offset_s: 0.0,
            drift_ppm: 10.0,
            jitter_sigma_s: 0.0,
        };
        // 10 ppm over 100 s = 1 ms.
        assert!((c.read(100.0) - 100.0 - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn fire_at_is_centered_on_scheduled_time() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = ClockModel {
            offset_s: 0.0,
            drift_ppm: 0.0,
            jitter_sigma_s: 10e-6,
        };
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| c.fire_at(1.0, &mut rng) - 1.0).sum::<f64>() / n as f64;
        assert!(mean.abs() < 1e-6, "mean error {mean}");
    }

    #[test]
    fn disciplined_clock_has_small_offset() {
        let mut rng = StdRng::seed_from_u64(4);
        let wild = ClockModel::beaglebone(&mut rng);
        let tame = wild.disciplined(5e-6, &mut rng);
        assert!(tame.offset_s.abs() < 50e-6);
        assert_eq!(tame.drift_ppm, wild.drift_ppm);
    }

    #[test]
    fn beaglebone_parameters_are_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let c = ClockModel::beaglebone(&mut rng);
            assert!(c.drift_ppm.abs() <= 25.0);
            assert!(c.offset_s.abs() <= 0.5);
            assert_eq!(c.jitter_sigma_s, 10.5e-6);
        }
    }
}
