//! Stochastic start-offset models for the three synchronization regimes.
//!
//! A "start offset" is the error, in seconds, between when a TX *should*
//! begin radiating a frame and when it actually does. The calibration
//! anchors come straight from the paper:
//!
//! * Table 4 medians (no sync 10.040 µs, NTP/PTP 4.565 µs, NLOS 0.575 µs);
//! * Fig. 12's decline of measured delay with symbol rate (at low rates the
//!   TXs additionally quantize their start to symbol boundaries of the
//!   software transmit loop);
//! * the §6.1 observation that at a 10 % symbol-overlap tolerance, NTP/PTP
//!   supports at most 14.28 Ksymbols/s.

use crate::clock::gaussian;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Median of `|X − Y|` for independent standard normals is `0.6745·√2·σ`;
/// dividing the Table 4 medians by this constant gives per-TX sigmas.
const MEDIAN_ABS_DIFF: f64 = 0.674_489 * std::f64::consts::SQRT_2;

/// How a group of TXs is synchronized.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SyncScheme {
    /// TXs fire on Ethernet frame arrival; no alignment at all.
    SyncOff,
    /// NTP-disciplined controller clock + PTP among TXs; TXs fire at an
    /// agreed absolute time (§6.1).
    NtpPtp,
    /// The paper's NLOS-VLC scheme: followers align to the leading TX's
    /// reflected pilot, with residual error set by their sampling phase
    /// (§6.2). The field is the follower's sampling rate in Hz.
    NlosVlc {
        /// Follower sampling rate `frx` in Hz (1 MHz in the testbed).
        sample_rate_hz: f64,
    },
}

impl SyncScheme {
    /// The paper's NLOS configuration (1 Msps followers).
    pub fn nlos_paper() -> Self {
        SyncScheme::NlosVlc {
            sample_rate_hz: 1_000_000.0,
        }
    }

    /// Per-TX Gaussian start-error sigma for the clock-based schemes, in
    /// seconds (calibrated from Table 4).
    fn clock_sigma(&self) -> f64 {
        match self {
            SyncScheme::SyncOff => 10.040e-6 / MEDIAN_ABS_DIFF,
            SyncScheme::NtpPtp => 4.565e-6 / MEDIAN_ABS_DIFF,
            SyncScheme::NlosVlc { .. } => 0.06e-6, // edge-detection noise
        }
    }

    /// The symbol-boundary quantization coefficient: the software transmit
    /// loop only starts frames on its loop tick, a fraction `q` of the
    /// symbol period (Fig. 12's rate-dependent term). Zero for NLOS sync,
    /// whose followers count receiver samples instead.
    fn quantization_fraction(&self) -> f64 {
        // Calibrated so NTP/PTP's measured delay equals 10 % of the symbol
        // width at 14.28 Ksymbols/s, the paper's §6.1 rate limit; the
        // sync-off loop tick is twice as coarse, preserving Fig. 12's ≥ 2×
        // separation between the curves.
        match self {
            SyncScheme::SyncOff => 0.54,
            SyncScheme::NtpPtp => 0.27,
            SyncScheme::NlosVlc { .. } => 0.0,
        }
    }

    /// Draws one TX start offset in seconds for a frame transmitted at
    /// `symbol_rate_hz`. For NLOS-VLC the offset is one-sided (a follower
    /// can only start *after* it detects the pilot's sampled edge).
    pub fn sample_start_offset<R: Rng + ?Sized>(&self, symbol_rate_hz: f64, rng: &mut R) -> f64 {
        assert!(symbol_rate_hz > 0.0, "symbol rate must be positive");
        match self {
            SyncScheme::NlosVlc { sample_rate_hz } => {
                let phase: f64 = rng.gen_range(0.0..1.0 / sample_rate_hz);
                phase + gaussian(rng).abs() * self.clock_sigma()
            }
            _ => {
                let clock = gaussian(rng) * self.clock_sigma();
                let t_sym = 1.0 / symbol_rate_hz;
                let quant = rng.gen_range(0.0..1.0f64) * self.quantization_fraction() * t_sym;
                clock + quant
            }
        }
    }

    /// Monte-Carlo median of the pairwise start delay `|Δ|` between two TXs
    /// at a symbol rate — the quantity Fig. 12 plots.
    pub fn median_pairwise_delay<R: Rng + ?Sized>(
        &self,
        symbol_rate_hz: f64,
        trials: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(trials > 0, "need at least one trial");
        let mut deltas: Vec<f64> = (0..trials)
            .map(|_| {
                let a = self.sample_start_offset(symbol_rate_hz, rng);
                let b = self.sample_start_offset(symbol_rate_hz, rng);
                (a - b).abs()
            })
            .collect();
        deltas.sort_by(|a, b| a.partial_cmp(b).expect("finite delays"));
        deltas[trials / 2]
    }

    /// The highest symbol rate at which the median pairwise delay stays
    /// within `overlap_tolerance` (e.g. 0.10) of the symbol width — the
    /// paper's §6.1 limit computation.
    pub fn max_symbol_rate<R: Rng + ?Sized>(&self, overlap_tolerance: f64, rng: &mut R) -> f64 {
        assert!(overlap_tolerance > 0.0 && overlap_tolerance < 1.0);
        // Binary search on the rate; the delay is (stochastically)
        // non-increasing in the symbol period while the budget shrinks.
        let (mut lo, mut hi) = (100.0f64, 10_000_000.0f64);
        for _ in 0..40 {
            let mid = (lo * hi).sqrt();
            let delay = self.median_pairwise_delay(mid, 4001, rng);
            if delay <= overlap_tolerance / mid {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD5EED)
    }

    /// High symbol rate ⇒ the quantization term vanishes and the Table 4
    /// medians emerge.
    #[test]
    fn table4_sync_off_median() {
        let mut r = rng();
        let d = SyncScheme::SyncOff.median_pairwise_delay(10e6, 40_001, &mut r);
        assert!((d - 10.040e-6).abs() < 0.5e-6, "median {d}");
    }

    #[test]
    fn table4_ntp_ptp_median() {
        let mut r = rng();
        let d = SyncScheme::NtpPtp.median_pairwise_delay(10e6, 40_001, &mut r);
        assert!((d - 4.565e-6).abs() < 0.3e-6, "median {d}");
    }

    #[test]
    fn nlos_follower_error_median_is_0_575_us() {
        // Table 4's NLOS row measures leader-vs-follower, i.e. the
        // follower's own start error.
        let mut r = rng();
        let scheme = SyncScheme::nlos_paper();
        let mut errs: Vec<f64> = (0..40_001)
            .map(|_| scheme.sample_start_offset(100_000.0, &mut r))
            .collect();
        errs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = errs[errs.len() / 2];
        assert!((median - 0.575e-6).abs() < 0.06e-6, "median {median}");
    }

    #[test]
    fn ntp_beats_sync_off_by_at_least_2x() {
        // Paper §6.1: NTP/PTP improves the delay by at least a factor of
        // two at every symbol rate.
        let mut r = rng();
        for rate in [1e3, 5e3, 20e3, 60e3] {
            let off = SyncScheme::SyncOff.median_pairwise_delay(rate, 8001, &mut r);
            let ptp = SyncScheme::NtpPtp.median_pairwise_delay(rate, 8001, &mut r);
            assert!(off > 1.8 * ptp, "rate {rate}: off {off} vs ptp {ptp}");
        }
    }

    #[test]
    fn delay_declines_with_symbol_rate() {
        // The Fig. 12 shape: higher symbol rates → smaller measured delay.
        let mut r = rng();
        let slow = SyncScheme::NtpPtp.median_pairwise_delay(1e3, 8001, &mut r);
        let fast = SyncScheme::NtpPtp.median_pairwise_delay(60e3, 8001, &mut r);
        assert!(slow > 5.0 * fast, "slow {slow} fast {fast}");
    }

    #[test]
    fn ntp_max_rate_is_around_14_ksym() {
        // §6.1: at 10 % symbol overlap NTP/PTP supports ≈ 14.28 Ksym/s.
        let mut r = rng();
        let max = SyncScheme::NtpPtp.max_symbol_rate(0.10, &mut r);
        assert!(
            (10_000.0..20_000.0).contains(&max),
            "max NTP/PTP symbol rate {max}"
        );
    }

    #[test]
    fn nlos_supports_much_higher_rates() {
        let mut r = rng();
        let nlos = SyncScheme::nlos_paper().max_symbol_rate(0.10, &mut r);
        let ptp = SyncScheme::NtpPtp.max_symbol_rate(0.10, &mut r);
        assert!(nlos > 5.0 * ptp, "nlos {nlos} vs ptp {ptp}");
        // 100 Ksym/s (the testbed rate) must be comfortably supported.
        assert!(nlos > 100_000.0);
    }

    #[test]
    fn nlos_offsets_are_one_sided() {
        let mut r = rng();
        let scheme = SyncScheme::nlos_paper();
        for _ in 0..1000 {
            assert!(scheme.sample_start_offset(100_000.0, &mut r) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let mut r = rng();
        SyncScheme::SyncOff.sample_start_offset(0.0, &mut r);
    }
}
