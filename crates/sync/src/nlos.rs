//! The NLOS-VLC synchronization link physics (paper §6.2, §7.1).
//!
//! The leading TX transmits a 32-symbol pilot plus its ID; follower TXs
//! listen with their own downward-facing photodiodes. The only optical path
//! between two ceiling-mounted, downward-facing devices is the floor
//! reflection, so the received pilot is very weak — the receive chain's
//! AC-coupled amplifier is exactly what makes it detectable. This module
//! computes the pilot SNR at a follower from the floor-bounce gain and
//! decides detectability.

use rand::Rng;
use serde::{Deserialize, Serialize};
use vlc_channel::nlos::{floor_bounce_gain, floor_bounce_gain_traced, NlosConfig};
use vlc_channel::{NlosTxCache, NoiseParams, RxOptics};
use vlc_geom::{Pose, Room};
use vlc_led::{power::optical_swing_amplitude, LedParams};
use vlc_par::Jobs;
use vlc_telemetry::Registry;
use vlc_trace::Span;

/// Outcome of a pilot-detection attempt at one follower.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PilotDetection {
    /// Pilot SNR at the follower's photodiode (linear).
    pub snr: f64,
    /// Whether the correlation detector finds the pilot.
    pub detected: bool,
}

/// A leader→follower NLOS synchronization link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NlosSyncLink {
    /// Floor-bounce path gain between the two TXs.
    pub bounce_gain: f64,
    /// LED parameters of the leading TX.
    pub led: LedParams,
    /// Follower receiver optics/noise.
    pub noise: NoiseParams,
    /// Photodiode responsivity in A/W.
    pub responsivity: f64,
    /// Correlation gain of the 32-chip pilot (processing gain, linear).
    pub pilot_gain: f64,
    /// Detection threshold on post-correlation SNR (linear).
    pub detection_threshold: f64,
}

impl NlosSyncLink {
    /// Builds the link for two TX poses in a room, using the paper's
    /// device parameters and a 32-symbol pilot.
    pub fn between(
        leader: &Pose,
        follower: &Pose,
        room: &Room,
        half_power_semi_angle: f64,
        optics: &RxOptics,
    ) -> Self {
        Self::between_traced(
            leader,
            follower,
            room,
            half_power_semi_angle,
            optics,
            &Span::noop(),
        )
    }

    /// [`Self::between`] recording a `sync.link_build` span under `parent`
    /// that wraps the floor-bounce quadrature (whose `channel.nlos.floor`
    /// span nests inside). With a noop parent this is the uninstrumented
    /// path plus one branch per span site.
    pub fn between_traced(
        leader: &Pose,
        follower: &Pose,
        room: &Room,
        half_power_semi_angle: f64,
        optics: &RxOptics,
        parent: &Span,
    ) -> Self {
        let build = parent.child("sync.link_build");
        let m = vlc_channel::lambertian::lambertian_order(half_power_semi_angle);
        let bounce_gain = if build.is_enabled() {
            floor_bounce_gain_traced(
                leader,
                follower,
                m,
                optics,
                room,
                &NlosConfig::default(),
                Jobs::from_env(),
                &build,
            )
        } else {
            floor_bounce_gain(leader, follower, m, optics, room, &NlosConfig::default())
        };
        NlosSyncLink {
            bounce_gain,
            led: LedParams::cree_xte_paper(),
            noise: NoiseParams::paper(),
            responsivity: optics.responsivity,
            // 32 pilot chips × 10 samples/chip of coherent correlation.
            pilot_gain: 320.0,
            detection_threshold: 4.0, // ≈ 6 dB post-correlation
        }
    }

    /// [`Self::between`] evaluated through a leader-side [`NlosTxCache`]:
    /// the source→patch table is reused across every follower of the same
    /// leader, so building N follower links costs one cache build plus N
    /// patch→RX sweeps that skip the source-side leg (and its `cosᵐ`
    /// power) per patch. The bounce gain is bitwise identical to
    /// [`Self::between`] for the cached leader pose and room.
    pub fn between_cached(cache: &NlosTxCache, follower: &Pose, optics: &RxOptics) -> Self {
        Self::between_cached_traced(cache, follower, optics, &Span::noop())
    }

    /// [`Self::between_cached`] recording a `sync.link_build_cached` span
    /// under `parent` (the cache's `channel.nlos.floor.cached` quadrature
    /// span nests inside).
    pub fn between_cached_traced(
        cache: &NlosTxCache,
        follower: &Pose,
        optics: &RxOptics,
        parent: &Span,
    ) -> Self {
        let build = parent.child("sync.link_build_cached");
        let bounce_gain = cache.floor_gain_pooled(
            follower,
            optics,
            &vlc_par::Pool::new(Jobs::from_env()),
            &build,
        );
        NlosSyncLink {
            bounce_gain,
            led: LedParams::cree_xte_paper(),
            noise: NoiseParams::paper(),
            responsivity: optics.responsivity,
            pilot_gain: 320.0,
            detection_threshold: 4.0,
        }
    }

    /// Pre-correlation (per-sample) pilot SNR at the follower (linear).
    /// The pilot is a full-swing OOK stream, so its received photocurrent
    /// amplitude is `R · H_bounce · A_opt` with `A_opt` the physical optical
    /// swing amplitude of the LED (≈ 0.5 W at full swing).
    pub fn raw_snr(&self) -> f64 {
        let a_opt = optical_swing_amplitude(&self.led, self.led.max_swing);
        let amp = self.responsivity * self.bounce_gain * a_opt;
        amp * amp / self.noise.noise_power()
    }

    /// Attempts detection: correlation over the pilot chips buys
    /// `pilot_gain` of SNR; detection succeeds when the post-correlation
    /// SNR clears the threshold. A stochastic margin models per-frame noise
    /// realizations near the threshold.
    pub fn detect<R: Rng + ?Sized>(&self, rng: &mut R) -> PilotDetection {
        let snr = self.raw_snr();
        let post = snr * self.pilot_gain;
        // Noise realization: ±1 dB of per-frame wobble near the threshold.
        let wobble = 10f64.powf(rng.gen_range(-0.1..0.1));
        PilotDetection {
            snr,
            detected: post * wobble >= self.detection_threshold,
        }
    }

    /// [`Self::detect`] with telemetry: records the pre-correlation pilot
    /// SNR into the `sync.pilot_snr` gauge and counts the outcome into
    /// `sync.pilot_detections` or `sync.pilot_misses`.
    pub fn detect_instrumented<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        telemetry: &Registry,
    ) -> PilotDetection {
        self.detect_traced(rng, telemetry, &Span::noop())
    }

    /// [`Self::detect_instrumented`] recording a `sync.pilot_detect` span
    /// under `parent` carrying the detection outcome as attributes. With a
    /// noop parent this is the instrumented path plus one branch per span
    /// site.
    pub fn detect_traced<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        telemetry: &Registry,
        parent: &Span,
    ) -> PilotDetection {
        let span = parent.child("sync.pilot_detect");
        let detection = self.detect(rng);
        span.attr("detected", &detection.detected.to_string());
        span.attr("snr", &format!("{:.6e}", detection.snr));
        telemetry.gauge("sync.pilot_snr").set(detection.snr);
        if detection.detected {
            telemetry.counter("sync.pilot_detections").inc();
        } else {
            telemetry.counter("sync.pilot_misses").inc();
        }
        detection
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vlc_geom::TxGrid;

    fn grid_link(a: usize, b: usize, reflectance: f64) -> NlosSyncLink {
        let mut room = Room::paper_testbed();
        room.floor_reflectance = reflectance;
        let grid = TxGrid::paper(&room);
        NlosSyncLink::between(
            &grid.pose(a),
            &grid.pose(b),
            &room,
            15f64.to_radians(),
            &RxOptics::paper(),
        )
    }

    #[test]
    fn neighbor_pilot_is_detectable() {
        // The testbed's §8.1 experiment: TX2 leads, TX3 follows (adjacent).
        let link = grid_link(1, 2, 0.6);
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100).filter(|_| link.detect(&mut rng).detected).count();
        assert!(
            hits >= 95,
            "only {hits}/100 detections, snr {}",
            link.raw_snr()
        );
    }

    #[test]
    fn pilot_detectable_on_dull_floor() {
        // Paper §9: pilots remain detectable on less-reflective floors.
        let link = grid_link(1, 2, 0.25);
        let mut rng = StdRng::seed_from_u64(12);
        let hits = (0..100).filter(|_| link.detect(&mut rng).detected).count();
        assert!(hits >= 80, "only {hits}/100 detections on dull floor");
    }

    #[test]
    fn raw_snr_is_weak_but_positive() {
        // The reflected pilot is "a very weak signal": well below 20 dB
        // pre-correlation, yet nonzero.
        let link = grid_link(1, 2, 0.6);
        let snr = link.raw_snr();
        assert!(snr > 0.0 && snr < 100.0, "snr {snr}");
    }

    #[test]
    fn correlation_gain_rescues_detection() {
        let link = grid_link(1, 2, 0.6);
        let weak = NlosSyncLink {
            pilot_gain: 1.0,
            ..link.clone()
        };
        // If raw SNR alone is below threshold, the 32-chip correlation must
        // be what makes detection work (this is the design point).
        if weak.raw_snr() < weak.detection_threshold {
            let mut rng = StdRng::seed_from_u64(13);
            let hits = (0..100).filter(|_| link.detect(&mut rng).detected).count();
            assert!(hits >= 95);
        }
    }

    #[test]
    fn far_followers_lose_the_pilot() {
        // A follower across the room sees a much weaker bounce.
        let near = grid_link(1, 2, 0.6);
        let far = grid_link(0, 35, 0.6);
        assert!(far.raw_snr() < near.raw_snr());
    }

    #[test]
    fn cached_links_are_bitwise_identical_to_direct_ones() {
        // One leader-side cache serves every follower with the exact gains
        // the per-pair quadrature produces.
        let room = Room::paper_testbed();
        let grid = TxGrid::paper(&room);
        let optics = RxOptics::paper();
        let m = vlc_channel::lambertian::lambertian_order(15f64.to_radians());
        let cache = NlosTxCache::shared(&grid.pose(1), m, &room, &NlosConfig::default());
        for follower in [0usize, 2, 7, 8] {
            let direct = NlosSyncLink::between(
                &grid.pose(1),
                &grid.pose(follower),
                &room,
                15f64.to_radians(),
                &optics,
            );
            let cached = NlosSyncLink::between_cached(&cache, &grid.pose(follower), &optics);
            assert_eq!(
                cached.bounce_gain.to_bits(),
                direct.bounce_gain.to_bits(),
                "follower {follower}"
            );
            assert_eq!(cached, direct);
        }
    }
}
