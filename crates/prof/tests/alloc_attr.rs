//! Installed-allocator behavior of `vlc_prof::alloc_counter`.
//!
//! The crate's unit tests pin what happens WITHOUT the counting allocator
//! (all counts zero, no attributes attached); this integration test binary
//! installs it via `#[global_allocator]` and pins the other half of the
//! contract: counts move, `AllocScope` attaches `allocs`/`deallocs`
//! attributes to spans, and `Profile::from_snapshot` sums them per call
//! path.

use vlc_prof::alloc_counter::{
    allocations_during, counts_during, AllocScope, CountingAlloc, ALLOCS_ATTR, DEALLOCS_ATTR,
};
use vlc_prof::Profile;
use vlc_telemetry::ManualClock;
use vlc_trace::Tracer;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn counts_track_this_threads_allocations() {
    let n = allocations_during(|| {
        let v: Vec<u64> = Vec::with_capacity(64);
        drop(v);
    });
    assert_eq!(n, 1, "one Vec allocation, counted once");

    let c = counts_during(|| {
        let a = vec![0u8; 128];
        let b = vec![0u8; 256];
        drop(a);
        drop(b);
    });
    assert_eq!(c.allocs, 2);
    assert_eq!(c.deallocs, 2);
}

#[test]
fn realloc_counts_as_one_allocation() {
    let mut v: Vec<u8> = Vec::with_capacity(8);
    v.extend_from_slice(&[0; 8]);
    let n = allocations_during(|| {
        // Force a capacity grow: exactly one realloc (or alloc+copy under
        // the hood, but one call into the allocator either way).
        v.reserve_exact(16);
    });
    assert_eq!(n, 1, "a grow is one counted allocation");
}

#[test]
fn other_threads_do_not_pollute_this_threads_window() {
    let n = allocations_during(|| {
        std::thread::spawn(|| {
            let _noise: Vec<u8> = vec![0; 4096];
        })
        .join()
        .unwrap();
        // `spawn`/`join` allocate on *this* thread (closure box, handle),
        // so the window is not zero — but the spawned thread's vec must
        // not appear. Pin an upper bound well under "everything counted".
    });
    let direct = allocations_during(|| {
        let _noise: Vec<u8> = vec![0; 4096];
    });
    assert_eq!(direct, 1);
    assert!(
        n < 64,
        "spawn bookkeeping should be small; cross-thread bleed would add \
         the worker's allocations here (saw {n})"
    );
}

#[test]
fn alloc_scope_attaches_deltas_as_span_attrs() {
    let tracer = Tracer::with_clock(ManualClock::new());
    let root = tracer.root("audit");
    {
        let child = root.child("hot");
        let _scope = AllocScope::new(&child);
        let v: Vec<u64> = (0..100).collect();
        drop(v);
    }
    drop(root);

    let snap = tracer.snapshot();
    let hot = snap
        .spans
        .iter()
        .find(|s| s.name == "hot")
        .expect("child span recorded");
    let attr = |key: &str| {
        hot.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.parse::<u64>().expect("numeric attr"))
    };
    let allocs = attr(ALLOCS_ATTR).expect("allocs attr present");
    let deallocs = attr(DEALLOCS_ATTR).expect("deallocs attr present");
    assert!(allocs >= 1, "the Vec must be attributed (saw {allocs})");
    assert!(
        deallocs >= 1,
        "its drop must be attributed (saw {deallocs})"
    );
}

#[test]
fn profile_sums_attributed_allocations_per_path() {
    let tracer = Tracer::with_clock(ManualClock::new());
    let root = tracer.root("run");
    for _ in 0..3 {
        let step = root.child("step");
        let _scope = AllocScope::new(&step);
        let v: Vec<u8> = vec![7; 512];
        drop(v);
    }
    drop(root);

    let profile = Profile::from_snapshot(&tracer.snapshot(), 1);
    let node = profile.node("run;step").expect("aggregated path");
    assert_eq!(node.calls, 3);
    assert!(
        node.allocs >= 3,
        "each call allocates at least its Vec (saw {})",
        node.allocs
    );
    assert!(node.deallocs >= 3);
}
