//! Exact self-time attribution over a [`TraceSnapshot`].
//!
//! A [`Profile`] aggregates every recorded span by its *call path* — the
//! `;`-joined chain of span names from the root down — and attributes to
//! each path its **inclusive** time (the span's own wall time), its
//! **self** time (inclusive minus the inclusive time of its direct
//! children), call count, and any allocation counts attached by
//! [`crate::alloc_counter::AllocScope`].
//!
//! ## The self-time invariant
//!
//! Self times telescope: summing `incl − Σ children incl` over every span
//! cancels every interior term, so
//!
//! ```text
//! Σ self over all paths  ==  Σ inclusive over root spans
//! ```
//!
//! holds *exactly* (pinned under `ManualClock` by
//! `tests/prof_determinism.rs`). Two caveats, documented rather than
//! papered over:
//!
//! * Under a wall clock, children that ran **in parallel** can overlap
//!   their parent, so an individual self time may be negative. The
//!   telescoping sum still holds; the folded export clamps negative
//!   values to zero for flamegraph tools.
//! * Spans whose parent was evicted by ring overflow are treated as
//!   roots, so the invariant degrades gracefully instead of silently
//!   dropping time.
//!
//! ## Determinism
//!
//! The grouping key is the structural call path, and fan-out siblings
//! created with `Span::child_indexed` share a name, so they merge into one
//! node with `calls == fan-out width` — the profile (and its folded
//! rendering) is byte-identical for any `DENSEVLC_JOBS` under
//! `ManualClock`.

use std::collections::BTreeMap;

use vlc_telemetry::export::value::{field, parse_json, push_f64, push_json_string, JsonValue};
use vlc_trace::TraceSnapshot;

use crate::alloc_counter::{ALLOCS_ATTR, DEALLOCS_ATTR};

/// Schema tag written into every profile JSON document and carried by the
/// `profile` record of the observability stream.
pub const PROF_SCHEMA: &str = "densevlc-prof/1";

/// One aggregated call path.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// `;`-joined span names from the root (folded-stack frame order).
    pub path: String,
    /// Spans folded into this path.
    pub calls: u64,
    /// Total wall time of those spans, seconds.
    pub incl_s: f64,
    /// Inclusive minus direct children's inclusive, seconds. May be
    /// negative under a wall clock when children ran in parallel.
    pub self_s: f64,
    /// Heap allocations attributed via `AllocScope`, summed over calls.
    pub allocs: u64,
    /// Heap deallocations attributed via `AllocScope`, summed over calls.
    pub deallocs: u64,
}

impl ProfileNode {
    /// The last frame of the path (the span's own name).
    pub fn leaf(&self) -> &str {
        self.path.rsplit(';').next().unwrap_or(&self.path)
    }

    /// Number of frames in the path (1 for a root).
    pub fn depth(&self) -> usize {
        self.path.split(';').count()
    }
}

/// A profile: every call path in the trace, sorted by path.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Schema tag ([`PROF_SCHEMA`]).
    pub schema: String,
    /// Worker count the traced run used.
    pub jobs: usize,
    /// Aggregated call paths, sorted by `path`.
    pub nodes: Vec<ProfileNode>,
}

/// Span names may not contain the folded-stack frame separator; a `;`
/// smuggled into a name is rewritten to `:` so paths stay parseable.
fn frame(name: &str) -> String {
    name.replace(';', ":")
}

/// Per-structural-id aggregate, before paths are resolved.
struct IdGroup {
    parent: u64,
    name: String,
    calls: u64,
    incl_s: f64,
    child_incl_s: f64,
    allocs: u64,
    deallocs: u64,
}

fn attr_u64(attrs: &[(String, String)], key: &str) -> u64 {
    attrs
        .iter()
        .filter(|(k, _)| k == key)
        .filter_map(|(_, v)| v.parse::<u64>().ok())
        .sum()
}

impl Profile {
    /// Builds the profile from a snapshot.
    ///
    /// Records are first grouped by structural span id (so a duplicated
    /// position — the same `(parent, name, seq)` recorded twice — cannot
    /// double-subtract its children), then id groups are aggregated by
    /// call path. Orphans (parent id absent from the snapshot, e.g. the
    /// parent is still open or was evicted) are treated as roots.
    pub fn from_snapshot(snapshot: &TraceSnapshot, jobs: usize) -> Self {
        // Pass 1: group by structural id.
        let mut groups: BTreeMap<u64, IdGroup> = BTreeMap::new();
        for s in &snapshot.spans {
            let g = groups.entry(s.id).or_insert_with(|| IdGroup {
                parent: s.parent_id,
                name: frame(&s.name),
                calls: 0,
                incl_s: 0.0,
                child_incl_s: 0.0,
                allocs: 0,
                deallocs: 0,
            });
            g.calls += 1;
            g.incl_s += s.duration_s();
            g.allocs += attr_u64(&s.attrs, ALLOCS_ATTR);
            g.deallocs += attr_u64(&s.attrs, DEALLOCS_ATTR);
        }
        // Pass 2: accumulate each record's inclusive time into its
        // parent's child sum (only when the parent exists; `parent == id`
        // would be a hash-collision cycle and is skipped defensively).
        for s in &snapshot.spans {
            if s.parent_id != 0 && s.parent_id != s.id && groups.contains_key(&s.parent_id) {
                let d = s.duration_s();
                if let Some(p) = groups.get_mut(&s.parent_id) {
                    p.child_incl_s += d;
                }
            }
        }
        // Pass 3: resolve paths (memoized parent-chain walk, cycle-safe).
        let mut paths: BTreeMap<u64, String> = BTreeMap::new();
        fn path_of(
            id: u64,
            groups: &BTreeMap<u64, IdGroup>,
            paths: &mut BTreeMap<u64, String>,
            depth: usize,
        ) -> String {
            if let Some(p) = paths.get(&id) {
                return p.clone();
            }
            let g = &groups[&id];
            let p = if g.parent == 0 || g.parent == id || depth > 512 {
                g.name.clone()
            } else if groups.contains_key(&g.parent) {
                format!("{};{}", path_of(g.parent, groups, paths, depth + 1), g.name)
            } else {
                g.name.clone()
            };
            paths.insert(id, p.clone());
            p
        }
        // Pass 4: aggregate id groups by path.
        let mut by_path: BTreeMap<String, ProfileNode> = BTreeMap::new();
        let ids: Vec<u64> = groups.keys().copied().collect();
        for id in ids {
            let path = path_of(id, &groups, &mut paths, 0);
            let g = &groups[&id];
            let node = by_path.entry(path.clone()).or_insert_with(|| ProfileNode {
                path,
                calls: 0,
                incl_s: 0.0,
                self_s: 0.0,
                allocs: 0,
                deallocs: 0,
            });
            node.calls += g.calls;
            node.incl_s += g.incl_s;
            node.self_s += g.incl_s - g.child_incl_s;
            node.allocs += g.allocs;
            node.deallocs += g.deallocs;
        }
        Profile {
            schema: PROF_SCHEMA.to_string(),
            jobs,
            nodes: by_path.into_values().collect(),
        }
    }

    /// The node for an exact path, if present.
    pub fn node(&self, path: &str) -> Option<&ProfileNode> {
        self.nodes.iter().find(|n| n.path == path)
    }

    /// All nodes whose leaf frame is `name` (a BENCH.json phase name),
    /// in path order.
    pub fn nodes_with_leaf<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a ProfileNode> {
        self.nodes.iter().filter(move |n| n.leaf() == name)
    }

    /// Σ inclusive over root paths (depth 1) — the total traced wall time.
    pub fn total_root_s(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.depth() == 1)
            .map(|n| n.incl_s)
            .sum()
    }

    /// Σ self over every path. Equals [`Profile::total_root_s`] exactly
    /// under `ManualClock` (see the module docs for the telescoping
    /// argument and the wall-clock caveat).
    pub fn total_self_s(&self) -> f64 {
        self.nodes.iter().map(|n| n.self_s).sum()
    }

    /// Nodes ranked by self time, descending (ties broken by path so the
    /// table is deterministic even with equal times).
    pub fn by_self(&self) -> Vec<&ProfileNode> {
        let mut v: Vec<&ProfileNode> = self.nodes.iter().collect();
        v.sort_by(|a, b| b.self_s.total_cmp(&a.self_s).then(a.path.cmp(&b.path)));
        v
    }

    /// Nodes ranked by inclusive time, descending (same tie-break).
    pub fn by_inclusive(&self) -> Vec<&ProfileNode> {
        let mut v: Vec<&ProfileNode> = self.nodes.iter().collect();
        v.sort_by(|a, b| b.incl_s.total_cmp(&a.incl_s).then(a.path.cmp(&b.path)));
        v
    }

    /// The exclusive (self-time) table, top `n` rows.
    pub fn self_table(&self, n: usize) -> String {
        Self::render_table("self", self.by_self().into_iter().take(n), |node| {
            node.self_s
        })
    }

    /// The inclusive table, top `n` rows.
    pub fn inclusive_table(&self, n: usize) -> String {
        Self::render_table("incl", self.by_inclusive().into_iter().take(n), |node| {
            node.incl_s
        })
    }

    fn render_table<'a>(
        metric: &str,
        rows: impl Iterator<Item = &'a ProfileNode>,
        value: impl Fn(&ProfileNode) -> f64,
    ) -> String {
        let mut out = format!(
            "  {:>12}  {:>7}  {:>9}  path\n",
            format!("{metric}_s"),
            "calls",
            "allocs"
        );
        for node in rows {
            out.push_str(&format!(
                "  {:>12.6}  {:>7}  {:>9}  {}\n",
                value(node),
                node.calls,
                node.allocs,
                node.path
            ));
        }
        out
    }

    /// Serializes to the `densevlc-prof/1` JSON document: nodes in path
    /// order, floats in shortest round-trip formatting — deterministic,
    /// and byte-identical across worker counts under `ManualClock`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.nodes.len() * 96);
        out.push_str("{\n  \"schema\": ");
        push_json_string(&mut out, &self.schema);
        out.push_str(&format!(",\n  \"jobs\": {},\n  \"nodes\": [", self.jobs));
        for (i, n) in self.nodes.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"path\": ");
            push_json_string(&mut out, &n.path);
            out.push_str(&format!(", \"calls\": {}, \"incl_s\": ", n.calls));
            push_f64(&mut out, n.incl_s);
            out.push_str(", \"self_s\": ");
            push_f64(&mut out, n.self_s);
            out.push_str(&format!(
                ", \"allocs\": {}, \"deallocs\": {}}}",
                n.allocs, n.deallocs
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a profile document, validating the schema tag. Nodes are
    /// re-sorted by path, so `from_json(to_json(p)) == p`.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = parse_json(text).map_err(|e| e.to_string())?;
        let obj = root.as_obj("profile").map_err(|e| e.to_string())?;
        let schema = field(obj, "schema")
            .and_then(|v| v.as_str("schema").map(str::to_string))
            .map_err(|e| e.to_string())?;
        if schema != PROF_SCHEMA {
            return Err(format!(
                "unsupported profile schema `{schema}` (expected `{PROF_SCHEMA}`)"
            ));
        }
        let jobs = field(obj, "jobs")
            .and_then(|v| v.as_u64("jobs"))
            .map_err(|e| e.to_string())? as usize;
        let items = field(obj, "nodes")
            .and_then(|v| v.as_arr("nodes").map(<[JsonValue]>::to_vec))
            .map_err(|e| e.to_string())?;
        let mut nodes = Vec::with_capacity(items.len());
        for item in &items {
            let n = item.as_obj("node").map_err(|e| e.to_string())?;
            let get = |k: &str| field(n, k).map_err(|e| e.to_string());
            nodes.push(ProfileNode {
                path: get("path")?
                    .as_str("path")
                    .map_err(|e| e.to_string())?
                    .to_string(),
                calls: get("calls")?.as_u64("calls").map_err(|e| e.to_string())?,
                incl_s: get("incl_s")?.as_f64("incl_s").map_err(|e| e.to_string())?,
                self_s: get("self_s")?.as_f64("self_s").map_err(|e| e.to_string())?,
                allocs: get("allocs")?.as_u64("allocs").map_err(|e| e.to_string())?,
                deallocs: get("deallocs")?
                    .as_u64("deallocs")
                    .map_err(|e| e.to_string())?,
            });
        }
        nodes.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Profile {
            schema,
            jobs,
            nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_telemetry::ManualClock;
    use vlc_trace::Tracer;

    /// root (2.0 total): plan (1.0: rank 0.25 + self 0.75), two indexed
    /// `item`s (0.25 each), self 0.5.
    fn sample() -> Profile {
        let clock = ManualClock::new();
        let tracer = Tracer::with_clock(clock.clone());
        let root = tracer.root("round");
        {
            let plan = root.child("plan");
            clock.advance(0.75);
            {
                let rank = plan.child("rank");
                clock.advance(0.25);
                drop(rank);
            }
            drop(plan);
        }
        for i in 0..2 {
            let item = root.child_indexed("item", i);
            clock.advance(0.25);
            drop(item);
        }
        clock.advance(0.5);
        drop(root);
        Profile::from_snapshot(&tracer.snapshot(), 1)
    }

    #[test]
    fn paths_aggregate_and_self_times_telescope() {
        let p = sample();
        let paths: Vec<&str> = p.nodes.iter().map(|n| n.path.as_str()).collect();
        assert_eq!(
            paths,
            ["round", "round;item", "round;plan", "round;plan;rank"]
        );
        // Indexed fan-out merges into one node with calls == width.
        let items = p.node("round;item").unwrap();
        assert_eq!(items.calls, 2);
        assert_eq!(items.incl_s, 0.5);
        assert_eq!(items.self_s, 0.5);
        let plan = p.node("round;plan").unwrap();
        assert_eq!(plan.incl_s, 1.0);
        assert_eq!(plan.self_s, 0.75);
        let root = p.node("round").unwrap();
        assert_eq!(root.incl_s, 2.0);
        assert_eq!(root.self_s, 0.5);
        // The invariant, exactly.
        assert_eq!(p.total_self_s(), p.total_root_s());
        assert_eq!(p.total_root_s(), 2.0);
    }

    #[test]
    fn orphans_are_treated_as_roots() {
        // A child recorded while its parent is still open (no parent
        // record in the snapshot) must surface, not vanish.
        let clock = ManualClock::new();
        let tracer = Tracer::with_clock(clock.clone());
        let root = tracer.root("open_root");
        let child = root.child("done_child");
        clock.advance(1.0);
        drop(child);
        let p = Profile::from_snapshot(&tracer.snapshot(), 1);
        drop(root);
        assert_eq!(p.nodes.len(), 1);
        assert_eq!(p.nodes[0].path, "done_child");
        assert_eq!(p.total_root_s(), 1.0);
        assert_eq!(p.total_self_s(), 1.0);
    }

    #[test]
    fn ranking_and_tables_are_deterministic() {
        let p = sample();
        let by_self: Vec<&str> = p.by_self().iter().map(|n| n.path.as_str()).collect();
        assert_eq!(
            by_self,
            ["round;plan", "round", "round;item", "round;plan;rank"]
        );
        let table = p.self_table(2);
        assert!(table.contains("round;plan"));
        assert!(!table.contains("rank"), "top-2 cuts the table: {table}");
        let incl = p.inclusive_table(1);
        assert!(incl.contains("round"));
    }

    #[test]
    fn json_round_trips_exactly() {
        let p = sample();
        let text = p.to_json();
        let back = Profile::from_json(&text).expect("parses");
        assert_eq!(back, p);
        assert_eq!(back.to_json(), text, "byte-stable serialization");
    }

    #[test]
    fn from_json_rejects_foreign_schemas_and_junk() {
        assert!(
            Profile::from_json("{\"schema\": \"other/9\", \"jobs\": 1, \"nodes\": []}").is_err()
        );
        assert!(Profile::from_json("{}").is_err());
        assert!(Profile::from_json("not json").is_err());
    }

    #[test]
    fn semicolons_in_names_are_sanitized() {
        let tracer = Tracer::with_clock(ManualClock::new());
        drop(tracer.root("a;b"));
        let p = Profile::from_snapshot(&tracer.snapshot(), 1);
        assert_eq!(p.nodes[0].path, "a:b");
    }

    #[test]
    fn leaf_and_depth_helpers() {
        let p = sample();
        let rank = p.node("round;plan;rank").unwrap();
        assert_eq!(rank.leaf(), "rank");
        assert_eq!(rank.depth(), 3);
        assert_eq!(p.node("round").unwrap().depth(), 1);
        assert_eq!(p.nodes_with_leaf("plan").count(), 1);
    }
}
