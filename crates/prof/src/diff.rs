//! Differential profiles: ranked self-time deltas between two runs.
//!
//! [`ProfileDiff::between`] joins two [`Profile`]s on call path and ranks
//! every path by absolute self-time delta — the view that turns "phase X
//! regressed" into "child Y inside phase X owns the regression". The
//! `prof_diff` binary and the bench gate's `--explain` both sit on top
//! of this.

use crate::profile::Profile;

/// One path's before/after comparison. A path present on only one side
/// compares against zeros (`calls == 0` marks the missing side).
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// `;`-joined call path.
    pub path: String,
    /// Self seconds in the old profile (0 when the path is new).
    pub old_self_s: f64,
    /// Self seconds in the new profile (0 when the path vanished).
    pub new_self_s: f64,
    /// Calls in the old profile.
    pub old_calls: u64,
    /// Calls in the new profile.
    pub new_calls: u64,
    /// Alloc delta (new − old, may be negative).
    pub alloc_delta: i64,
}

impl DiffEntry {
    /// `new − old` self seconds; positive means slower.
    pub fn delta_s(&self) -> f64 {
        self.new_self_s - self.old_self_s
    }
}

/// The full join of two profiles, ranked by |self-time delta|.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDiff {
    /// Entries sorted by absolute delta descending, path ascending on
    /// ties — deterministic for deterministic inputs.
    pub entries: Vec<DiffEntry>,
}

impl ProfileDiff {
    /// Joins `old` and `new` on path (outer join; one-sided paths pair
    /// with zeros).
    pub fn between(old: &Profile, new: &Profile) -> Self {
        let mut entries: Vec<DiffEntry> = Vec::new();
        let mut oi = 0;
        let mut ni = 0;
        // Both node lists are sorted by path: a linear merge keeps the
        // join O(n) and the output order deterministic.
        while oi < old.nodes.len() || ni < new.nodes.len() {
            let take_old = ni >= new.nodes.len()
                || (oi < old.nodes.len() && old.nodes[oi].path <= new.nodes[ni].path);
            let take_new = oi >= old.nodes.len()
                || (ni < new.nodes.len() && new.nodes[ni].path <= old.nodes[oi].path);
            let (o, n) = match (take_old, take_new) {
                (true, true) => {
                    let pair = (Some(&old.nodes[oi]), Some(&new.nodes[ni]));
                    oi += 1;
                    ni += 1;
                    pair
                }
                (true, false) => {
                    let pair = (Some(&old.nodes[oi]), None);
                    oi += 1;
                    pair
                }
                _ => {
                    let pair = (None, Some(&new.nodes[ni]));
                    ni += 1;
                    pair
                }
            };
            let path = o.or(n).expect("one side present").path.clone();
            entries.push(DiffEntry {
                path,
                old_self_s: o.map_or(0.0, |x| x.self_s),
                new_self_s: n.map_or(0.0, |x| x.self_s),
                old_calls: o.map_or(0, |x| x.calls),
                new_calls: n.map_or(0, |x| x.calls),
                alloc_delta: n.map_or(0, |x| x.allocs as i64) - o.map_or(0, |x| x.allocs as i64),
            });
        }
        entries.sort_by(|a, b| {
            b.delta_s()
                .abs()
                .total_cmp(&a.delta_s().abs())
                .then(a.path.cmp(&b.path))
        });
        ProfileDiff { entries }
    }

    /// Entries that got slower (`delta > 0`), worst first.
    pub fn regressed(&self) -> impl Iterator<Item = &DiffEntry> {
        self.entries.iter().filter(|e| e.delta_s() > 0.0)
    }

    /// Renders the top `n` entries as an aligned table.
    pub fn table(&self, n: usize) -> String {
        let mut out = format!(
            "  {:>12}  {:>12}  {:>12}  {:>6}  path\n",
            "old_self_s", "new_self_s", "delta_s", "allocs"
        );
        for e in self.entries.iter().take(n) {
            out.push_str(&format!(
                "  {:>12.6}  {:>12.6}  {:>+12.6}  {:>+6}  {}\n",
                e.old_self_s,
                e.new_self_s,
                e.delta_s(),
                e.alloc_delta,
                e.path
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ProfileNode, PROF_SCHEMA};

    fn profile(rows: &[(&str, f64, u64, u64)]) -> Profile {
        let mut nodes: Vec<ProfileNode> = rows
            .iter()
            .map(|&(path, self_s, calls, allocs)| ProfileNode {
                path: path.to_string(),
                calls,
                incl_s: self_s,
                self_s,
                allocs,
                deallocs: 0,
            })
            .collect();
        nodes.sort_by(|a, b| a.path.cmp(&b.path));
        Profile {
            schema: PROF_SCHEMA.to_string(),
            jobs: 1,
            nodes,
        }
    }

    #[test]
    fn ranks_by_absolute_delta_and_joins_one_sided_paths() {
        let old = profile(&[("r", 1.0, 1, 10), ("r;a", 0.5, 2, 0), ("r;gone", 0.2, 1, 0)]);
        let new = profile(&[("r", 1.0, 1, 4), ("r;a", 1.4, 2, 0), ("r;new", 0.05, 1, 0)]);
        let diff = ProfileDiff::between(&old, &new);
        let order: Vec<&str> = diff.entries.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(order, ["r;a", "r;gone", "r;new", "r"]);
        let top = &diff.entries[0];
        assert_eq!(top.delta_s(), 1.4 - 0.5);
        let gone = &diff.entries[1];
        assert_eq!((gone.new_self_s, gone.new_calls), (0.0, 0));
        let fresh = &diff.entries[2];
        assert_eq!((fresh.old_self_s, fresh.old_calls), (0.0, 0));
        assert_eq!(diff.entries[3].alloc_delta, -6);
        // Only the genuinely slower paths count as regressed.
        let reg: Vec<&str> = diff.regressed().map(|e| e.path.as_str()).collect();
        assert_eq!(reg, ["r;a", "r;new"]);
    }

    #[test]
    fn table_is_deterministic_and_truncates() {
        let old = profile(&[("r", 1.0, 1, 0), ("r;a", 0.5, 1, 0)]);
        let new = profile(&[("r", 1.2, 1, 0), ("r;a", 0.6, 1, 0)]);
        let diff = ProfileDiff::between(&old, &new);
        let t = diff.table(1);
        assert_eq!(t, diff.table(1));
        assert!(t.contains("r\n") || t.ends_with("r\n"), "{t}");
        assert!(!t.contains("r;a"), "top-1 truncates: {t}");
    }
}
