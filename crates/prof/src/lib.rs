//! # vlc-prof — deterministic self-time profiler
//!
//! The analysis layer on top of `vlc-trace`: turns a [`TraceSnapshot`]
//! into a [`Profile`] with exact per-call-path self-time attribution,
//! exports it as folded stacks (any flamegraph tool) or a self-contained
//! SVG, diffs two profiles, and explains bench-gate failures by naming
//! the call paths that own a regression. Dependency-free beyond the
//! workspace's own `vlc-trace`/`vlc-telemetry`.
//!
//! The one invariant everything rests on: per path,
//! `self = inclusive − Σ direct children inclusive`, so self times
//! telescope and `Σ self == Σ root inclusive` holds exactly under
//! `ManualClock` (pinned by `tests/prof_determinism.rs` at the workspace
//! root). Because the grouping key is the structural call path, the
//! profile — and its folded rendering — is byte-identical at any
//! `DENSEVLC_JOBS`.
//!
//! [`TraceSnapshot`]: vlc_trace::TraceSnapshot
//!
//! ## Tour
//!
//! ```
//! use vlc_prof::{Profile, to_folded};
//! use vlc_telemetry::ManualClock;
//! use vlc_trace::Tracer;
//!
//! let clock = ManualClock::new();
//! let tracer = Tracer::with_clock(clock.clone());
//! let root = tracer.root("round");
//! let solve = root.child("solve");
//! clock.advance(0.25);
//! drop(solve);
//! clock.advance(0.05);
//! drop(root);
//!
//! let profile = Profile::from_snapshot(&tracer.snapshot(), 1);
//! assert_eq!(profile.total_self_s(), profile.total_root_s());
//! assert_eq!(to_folded(&profile), "round 50000000\nround;solve 250000000\n");
//! ```

// `alloc_counter` must implement `GlobalAlloc`; everything else stays
// safe (deny, not forbid, so that one module can opt out explicitly).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_counter;
pub mod diff;
pub mod explain;
pub mod folded;
pub mod profile;

pub use diff::{DiffEntry, ProfileDiff};
pub use explain::explain_regressions;
pub use folded::{flamegraph_from_profile, parse_folded, to_folded, write_flamegraph, FoldedLine};
pub use profile::{Profile, ProfileNode, PROF_SCHEMA};
