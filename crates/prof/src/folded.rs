//! Folded-stack export, validating parser, and SVG flamegraph writer.
//!
//! The folded format is Brendan Gregg's `flamegraph.pl` input: one line
//! per call path, frames joined by `;`, a space, then an integer weight.
//! [`to_folded`] weights each path by its **self time in nanoseconds**
//! (clamped at zero — see the wall-clock caveat in [`crate::profile`]),
//! so any off-the-shelf flamegraph tool can render a profile. The
//! bundled [`write_flamegraph`] produces a self-contained SVG with no
//! external scripts, for CI artifacts and quick looks.

use std::collections::BTreeMap;

use crate::profile::Profile;

/// One parsed folded line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedLine {
    /// Call-path frames, root first.
    pub frames: Vec<String>,
    /// Sample weight (self time in nanoseconds for profiles written by
    /// [`to_folded`]).
    pub value: u64,
}

/// Renders the profile as folded stacks: every path, in path order, with
/// `round(self_s · 1e9)` nanoseconds as the weight (negative self times
/// clamp to 0). Deterministic: byte-identical for byte-identical
/// profiles.
pub fn to_folded(profile: &Profile) -> String {
    let mut out = String::with_capacity(profile.nodes.len() * 48);
    for node in &profile.nodes {
        out.push_str(&node.path);
        out.push(' ');
        let ns = (node.self_s * 1e9).round().max(0.0) as u64;
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// Parses folded stacks, validating shape with 1-based line numbers in
/// every error: each non-empty line must be `frames SPACE integer` with
/// no empty frame.
pub fn parse_folded(text: &str) -> Result<Vec<FoldedLine>, String> {
    let mut lines = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let (stack, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: missing ' <count>' separator"))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("line {n}: count `{value}` is not a non-negative integer"))?;
        if stack.is_empty() {
            return Err(format!("line {n}: empty stack"));
        }
        let frames: Vec<String> = stack.split(';').map(str::to_string).collect();
        if frames.iter().any(String::is_empty) {
            return Err(format!("line {n}: empty frame in `{stack}`"));
        }
        lines.push(FoldedLine { frames, value });
    }
    Ok(lines)
}

// ------------------------------------------------------------ flamegraph --

/// Merged frame tree built from folded lines.
struct FlameNode {
    /// Own (self) weight at this exact path.
    own: u64,
    children: BTreeMap<String, FlameNode>,
}

impl FlameNode {
    fn new() -> Self {
        FlameNode {
            own: 0,
            children: BTreeMap::new(),
        }
    }

    /// Own weight plus all descendants.
    fn total(&self) -> u64 {
        self.own + self.children.values().map(FlameNode::total).sum::<u64>()
    }

    fn depth(&self) -> usize {
        1 + self
            .children
            .values()
            .map(FlameNode::depth)
            .max()
            .unwrap_or(0)
    }
}

const WIDTH: f64 = 1200.0;
const FRAME_H: f64 = 16.0;
const PAD: f64 = 10.0;
const TITLE_H: f64 = 24.0;

/// FNV-1a over the frame name → stable warm-palette color, so the same
/// frame gets the same color in every rendering.
fn color(name: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let r = 205 + (h % 50) as u8;
    let g = 80 + ((h >> 8) % 110) as u8;
    let b = ((h >> 16) % 60) as u8;
    format!("rgb({r},{g},{b})")
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders folded lines as a self-contained SVG flamegraph (icicle
/// layout: roots on top, children below, width ∝ weight). When every
/// weight is zero — a `ManualClock` trace — each line counts as one
/// sample so the *structure* still renders. Deterministic for identical
/// input.
pub fn write_flamegraph(title: &str, lines: &[FoldedLine]) -> String {
    // Weight of zero total ⇒ count mode (see doc comment).
    let grand: u64 = lines.iter().map(|l| l.value).sum();
    let weight = |l: &FoldedLine| if grand == 0 { 1 } else { l.value };

    let mut root = FlameNode::new();
    for line in lines {
        let mut node = &mut root;
        for f in &line.frames {
            node = node
                .children
                .entry(f.clone())
                .or_insert_with(FlameNode::new);
        }
        node.own += weight(line);
    }
    let total = root.total().max(1);
    let depth = root.depth().saturating_sub(1).max(1);
    let height = TITLE_H + depth as f64 * FRAME_H + PAD * 2.0;
    let unit = if grand == 0 { "samples" } else { "ns" };

    let mut svg = String::with_capacity(lines.len() * 256);
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         font-family=\"monospace\" font-size=\"11\">\n\
         <rect width=\"{w}\" height=\"{h}\" fill=\"#f8f8f8\"/>\n\
         <text x=\"{tx}\" y=\"17\" text-anchor=\"middle\" font-size=\"14\">{t}</text>\n",
        w = WIDTH,
        h = height,
        tx = WIDTH / 2.0,
        t = xml_escape(title),
    ));

    // Recursive layout: each child occupies a sub-range of its parent's
    // x-extent proportional to its total weight; BTreeMap order keeps
    // sibling placement deterministic.
    struct Layout<'a> {
        svg: &'a mut String,
        total: u64,
        unit: &'a str,
    }
    impl Layout<'_> {
        fn walk(&mut self, node: &FlameNode, path: &str, x0: f64, x1: f64, level: usize) {
            let mut x = x0;
            for (name, child) in &node.children {
                let ct = child.total();
                let w = (x1 - x0) * ct as f64 / node.total().max(1) as f64;
                let child_path = if path.is_empty() {
                    name.clone()
                } else {
                    format!("{path};{name}")
                };
                // Sub-half-pixel rectangles are invisible; skip them (and
                // their subtrees, which are narrower still).
                if w >= 0.5 {
                    let y = TITLE_H + PAD + level as f64 * FRAME_H;
                    let pct = 100.0 * ct as f64 / self.total as f64;
                    self.svg.push_str(&format!(
                        "<g><title>{} ({ct} {unit}, {pct:.2}%)</title>\
                         <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{fh}\" \
                         fill=\"{c}\" stroke=\"#f8f8f8\" stroke-width=\"0.5\"/>",
                        xml_escape(&child_path),
                        unit = self.unit,
                        fh = FRAME_H,
                        c = color(name),
                    ));
                    // Rough monospace fit: ~6.6px per glyph at font-size 11.
                    let chars = (w / 6.6) as usize;
                    if chars >= 3 {
                        let label: String = if name.chars().count() <= chars {
                            name.clone()
                        } else {
                            let cut: String = name.chars().take(chars.saturating_sub(2)).collect();
                            format!("{cut}..")
                        };
                        self.svg.push_str(&format!(
                            "<text x=\"{:.2}\" y=\"{:.2}\">{}</text>",
                            x + 2.0,
                            y + FRAME_H - 4.0,
                            xml_escape(&label)
                        ));
                    }
                    self.svg.push_str("</g>\n");
                    self.walk(child, &child_path, x, x + w, level + 1);
                }
                x += w;
            }
        }
    }
    Layout {
        svg: &mut svg,
        total,
        unit,
    }
    .walk(&root, "", PAD, WIDTH - PAD, 0);
    svg.push_str("</svg>\n");
    svg
}

/// Convenience: profile → folded → flamegraph in one call.
pub fn flamegraph_from_profile(title: &str, profile: &Profile) -> Result<String, String> {
    let lines = parse_folded(&to_folded(profile))?;
    Ok(write_flamegraph(title, &lines))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use vlc_telemetry::ManualClock;
    use vlc_trace::Tracer;

    fn profile() -> Profile {
        let clock = ManualClock::new();
        let tracer = Tracer::with_clock(clock.clone());
        let root = tracer.root("main");
        {
            let a = root.child("load");
            clock.advance(0.25);
            drop(a);
        }
        {
            let b = root.child("solve");
            clock.advance(0.5);
            {
                let c = b.child("rank");
                clock.advance(0.125);
                drop(c);
            }
            drop(b);
        }
        clock.advance(0.1);
        drop(root);
        Profile::from_snapshot(&tracer.snapshot(), 1)
    }

    #[test]
    fn folded_round_trips_and_weights_are_self_ns() {
        let p = profile();
        let folded = to_folded(&p);
        assert_eq!(
            folded,
            "main 100000000\nmain;load 250000000\nmain;solve 500000000\nmain;solve;rank 125000000\n"
        );
        let lines = parse_folded(&folded).expect("valid");
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[3].frames, ["main", "solve", "rank"]);
        assert_eq!(lines[3].value, 125_000_000);
        // Total folded weight equals total root wall time.
        let sum: u64 = lines.iter().map(|l| l.value).sum();
        assert_eq!(sum, (p.total_root_s() * 1e9).round() as u64);
    }

    #[test]
    fn parser_rejects_malformed_lines_with_line_numbers() {
        assert!(parse_folded("a;b 12\n\n c;d 3\n").is_ok());
        let e = parse_folded("no_count\n").unwrap_err();
        assert!(e.starts_with("line 1:"), "{e}");
        let e = parse_folded("ok 1\na;b notanum\n").unwrap_err();
        assert!(e.starts_with("line 2:"), "{e}");
        let e = parse_folded("a;;b 4\n").unwrap_err();
        assert!(e.contains("empty frame"), "{e}");
        let e = parse_folded(" 4\n").unwrap_err();
        assert!(e.contains("empty stack"), "{e}");
    }

    #[test]
    fn negative_self_time_clamps_to_zero() {
        // Fabricate a parallel-overlap profile: child wall exceeds parent.
        let mut p = profile();
        for n in &mut p.nodes {
            if n.path == "main" {
                n.self_s = -0.25;
            }
        }
        let folded = to_folded(&p);
        assert!(folded.starts_with("main 0\n"), "{folded}");
        parse_folded(&folded).expect("clamped output stays valid");
    }

    #[test]
    fn flamegraph_is_deterministic_and_structured() {
        let p = profile();
        let lines = parse_folded(&to_folded(&p)).unwrap();
        let svg1 = write_flamegraph("bench", &lines);
        let svg2 = write_flamegraph("bench", &lines);
        assert_eq!(svg1, svg2);
        assert!(svg1.starts_with("<svg "));
        assert!(svg1.ends_with("</svg>\n"));
        assert!(svg1.contains(">bench<"));
        assert!(svg1.contains("main;solve;rank"));
        // Three levels of frames → three rows of rects plus background.
        assert!(svg1.matches("<rect ").count() >= 4);
    }

    #[test]
    fn zero_weight_traces_render_in_count_mode() {
        // ManualClock with no advances: all self times zero.
        let tracer = Tracer::with_clock(ManualClock::new());
        let root = tracer.root("r");
        drop(root.child("a"));
        drop(root.child("b"));
        drop(root);
        let p = Profile::from_snapshot(&tracer.snapshot(), 1);
        let lines = parse_folded(&to_folded(&p)).unwrap();
        let svg = flamegraph_from_profile("zero", &p).unwrap();
        assert_eq!(lines.iter().map(|l| l.value).sum::<u64>(), 0);
        assert!(svg.contains("samples"), "count mode unit");
        assert!(svg.contains("r;a"), "structure still renders: {svg}");
    }
}
