//! Turning a bench-gate failure into an explanation.
//!
//! `bench_compare` and `bench_gate` flag *phases* — leaf names of
//! `run_all`'s probe spans — but a phase name says nothing about which
//! child owns the time. [`explain_regressions`] cross-references the
//! flagged phases against a profile (and optionally a baseline profile)
//! and prints, per regression, the guilty subtree ranked by self time,
//! with full call paths.

use vlc_trace::Regression;

use crate::diff::ProfileDiff;
use crate::profile::{Profile, ProfileNode};

/// Paths relevant to one regressed phase: the phase's own paths plus
/// everything beneath them, ranked by self time (or by self-time delta
/// when a baseline profile is supplied).
fn phase_paths<'p>(profile: &'p Profile, phase: &str) -> Vec<&'p ProfileNode> {
    let prefixes: Vec<String> = profile
        .nodes_with_leaf(phase)
        .map(|n| n.path.clone())
        .collect();
    let mut hits: Vec<&ProfileNode> = profile
        .nodes
        .iter()
        .filter(|n| {
            prefixes
                .iter()
                .any(|p| n.path == *p || n.path.starts_with(&format!("{p};")))
        })
        .collect();
    hits.sort_by(|a, b| b.self_s.total_cmp(&a.self_s).then(a.path.cmp(&b.path)));
    hits
}

/// Formats the explanation for a set of flagged regressions.
///
/// For each regression the output names the phase, then the top `top_n`
/// call paths inside it. With both profiles available the ranking uses
/// the self-time *delta* (what actually changed); with only the new
/// profile it falls back to absolute self time (where the time *is*).
/// Phases absent from the profile are reported as such rather than
/// silently skipped. Deterministic for deterministic inputs.
pub fn explain_regressions(
    regressions: &[Regression],
    new_profile: &Profile,
    old_profile: Option<&Profile>,
    top_n: usize,
) -> String {
    let mut out = String::new();
    let diff = old_profile.map(|old| ProfileDiff::between(old, new_profile));
    for r in regressions {
        out.push_str(&format!(
            "explain: {} regressed {:+.6}s (median {:.6}s -> {:.6}s)\n",
            r.name,
            r.new_median_s - r.old_median_s,
            r.old_median_s,
            r.new_median_s
        ));
        let paths = phase_paths(new_profile, &r.name);
        if paths.is_empty() {
            out.push_str(&format!(
                "  (no span named `{}` in the profile — was it traced?)\n",
                r.name
            ));
            continue;
        }
        match &diff {
            Some(diff) => {
                // Rank this phase's paths by how much *slower* they got.
                let mut rows: Vec<_> = diff
                    .entries
                    .iter()
                    .filter(|e| paths.iter().any(|p| p.path == e.path))
                    .collect();
                rows.sort_by(|a, b| {
                    b.delta_s()
                        .total_cmp(&a.delta_s())
                        .then(a.path.cmp(&b.path))
                });
                for e in rows.into_iter().take(top_n) {
                    out.push_str(&format!(
                        "  {:>+12.6}s self ({:.6}s -> {:.6}s, allocs {:+})  {}\n",
                        e.delta_s(),
                        e.old_self_s,
                        e.new_self_s,
                        e.alloc_delta,
                        e.path
                    ));
                }
            }
            None => {
                for n in paths.into_iter().take(top_n) {
                    out.push_str(&format!(
                        "  {:>12.6}s self  {:>7} calls  {:>9} allocs  {}\n",
                        n.self_s, n.calls, n.allocs, n.path
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ProfileNode, PROF_SCHEMA};

    fn profile(rows: &[(&str, f64)]) -> Profile {
        let mut nodes: Vec<ProfileNode> = rows
            .iter()
            .map(|&(path, self_s)| ProfileNode {
                path: path.to_string(),
                calls: 1,
                incl_s: self_s,
                self_s,
                allocs: 0,
                deallocs: 0,
            })
            .collect();
        nodes.sort_by(|a, b| a.path.cmp(&b.path));
        Profile {
            schema: PROF_SCHEMA.to_string(),
            jobs: 1,
            nodes,
        }
    }

    fn regression(name: &str) -> Regression {
        Regression {
            name: name.to_string(),
            old_median_s: 0.010,
            new_median_s: 0.025,
            threshold_s: 0.012,
        }
    }

    #[test]
    fn names_the_guilty_child_path_without_a_baseline() {
        let p = profile(&[
            ("run;solve", 0.001),
            ("run;solve;rank", 0.020),
            ("run;solve;assign", 0.004),
            ("run;other", 0.9),
        ]);
        let text = explain_regressions(&[regression("solve")], &p, None, 2);
        assert!(text.contains("solve regressed +0.015000s"), "{text}");
        // Top path inside the phase, not the unrelated hot path.
        let rank_pos = text.find("run;solve;rank").expect("guilty path named");
        assert!(!text.contains("run;other"), "{text}");
        let assign_pos = text.find("run;solve;assign").expect("runner-up shown");
        assert!(rank_pos < assign_pos, "ranked by self time: {text}");
    }

    #[test]
    fn with_a_baseline_ranks_by_delta_not_absolute() {
        let old = profile(&[
            ("run;solve", 0.001),
            ("run;solve;rank", 0.018),
            ("run;solve;assign", 0.001),
        ]);
        let new = profile(&[
            ("run;solve", 0.001),
            ("run;solve;rank", 0.019),
            ("run;solve;assign", 0.013),
        ]);
        let text = explain_regressions(&[regression("solve")], &new, Some(&old), 1);
        // `assign` grew +0.012 vs `rank`'s +0.001: delta ranking puts
        // assign first even though rank has more absolute self time.
        assert!(text.contains("run;solve;assign"), "{text}");
        assert!(!text.contains("run;solve;rank"), "{text}");
    }

    #[test]
    fn missing_phases_are_reported_not_skipped() {
        let p = profile(&[("run", 1.0)]);
        let text = explain_regressions(&[regression("ghost")], &p, None, 3);
        assert!(text.contains("no span named `ghost`"), "{text}");
    }

    #[test]
    fn output_is_deterministic() {
        let p = profile(&[
            ("run;solve", 0.5),
            ("run;solve;a", 0.5),
            ("run;solve;b", 0.5),
        ]);
        let a = explain_regressions(&[regression("solve")], &p, None, 10);
        let b = explain_regressions(&[regression("solve")], &p, None, 10);
        assert_eq!(a, b);
        // Equal self times tie-break by path.
        let ia = a.find("run;solve;a").unwrap();
        let ib = a.find("run;solve;b").unwrap();
        assert!(ia < ib, "{a}");
    }
}
