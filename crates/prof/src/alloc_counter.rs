//! A reusable counting global allocator and span-scoped attribution.
//!
//! Several test suites (`vlc-phy`'s zero-alloc audit, `vlc-densevlc`'s
//! e2e identity test) and the CLI's `profile` subcommand all need the
//! same thing: count heap allocations made by *this thread* between two
//! points. This module is the single implementation; installing it is
//! two lines in the consuming binary or test crate:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: vlc_prof::alloc_counter::CountingAlloc =
//!     vlc_prof::alloc_counter::CountingAlloc;
//! ```
//!
//! ## Why thread-local
//!
//! Tests run on parallel harness threads, and the harness itself
//! allocates (thread spawning, output capture, completion channels). A
//! process-global counter picks up that noise; a thread-local one
//! attributes every allocation to the thread that made it. The
//! const-initialised `Cell<u64>` has no lazy initialiser and no
//! destructor, so touching it from inside the allocator cannot recurse.
//!
//! ## Span attribution caveats
//!
//! [`AllocScope`] attaches this thread's alloc/dealloc deltas to a span
//! as attributes, which [`crate::Profile`] sums per call path. Being
//! thread-local, a scope only sees allocations made on the thread that
//! opened it — work fanned out to a pool is *not* attributed to the
//! dispatching span. When `CountingAlloc` is not installed the deltas
//! are zero and no attributes are attached, so tracing code can use
//! `AllocScope` unconditionally.

// The one place in the profiler that needs `unsafe`: implementing
// `GlobalAlloc`. Kept to pass-through calls plus a `Cell` bump.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use vlc_trace::Span;

/// Attribute key `AllocScope` writes allocation counts under.
pub const ALLOCS_ATTR: &str = "allocs";
/// Attribute key `AllocScope` writes deallocation counts under.
pub const DEALLOCS_ATTR: &str = "deallocs";

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static DEALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A [`GlobalAlloc`] that forwards to [`System`] while counting this
/// thread's allocations and deallocations. Install with
/// `#[global_allocator]` in the consuming crate (a library cannot
/// install it for you).
pub struct CountingAlloc;

fn bump(counter: &'static std::thread::LocalKey<Cell<u64>>) {
    // TLS is briefly unavailable during thread teardown; allocations
    // there belong to the runtime, never to a measurement window.
    let _ = counter.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump(&ALLOCS);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        bump(&DEALLOCS);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is one allocation (and implicitly retires the old
        // block); counting it once matches the historical audits.
        bump(&ALLOCS);
        System.realloc(ptr, layout, new_size)
    }
}

/// This thread's running totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocCounts {
    /// Allocations (including reallocs) since thread start.
    pub allocs: u64,
    /// Deallocations since thread start.
    pub deallocs: u64,
}

/// Snapshot of this thread's counters. All zeros unless
/// [`CountingAlloc`] is installed as the global allocator.
pub fn counts() -> AllocCounts {
    AllocCounts {
        allocs: ALLOCS.with(|c| c.get()),
        deallocs: DEALLOCS.with(|c| c.get()),
    }
}

/// Runs `f` and returns how many heap allocations this thread performed
/// during it (the zero-alloc audit primitive).
pub fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

/// Runs `f` and returns this thread's alloc *and* dealloc deltas.
pub fn counts_during(f: impl FnOnce()) -> AllocCounts {
    let before = counts();
    let after = {
        f();
        counts()
    };
    AllocCounts {
        allocs: after.allocs - before.allocs,
        deallocs: after.deallocs - before.deallocs,
    }
}

/// Guard that attributes this thread's allocation deltas to a span.
///
/// On drop it reads the deltas *before* touching the span (attaching an
/// attribute itself allocates) and writes [`ALLOCS_ATTR`] /
/// [`DEALLOCS_ATTR`] attributes — but only when a delta is nonzero, so
/// without the counting allocator installed no attributes appear.
pub struct AllocScope<'s> {
    span: &'s Span,
    start: AllocCounts,
}

impl<'s> AllocScope<'s> {
    /// Starts attributing this thread's allocations to `span`.
    pub fn new(span: &'s Span) -> Self {
        AllocScope {
            span,
            start: counts(),
        }
    }
}

impl Drop for AllocScope<'_> {
    fn drop(&mut self) {
        // Read first: Span::attr allocates, and those allocations must
        // not count against the scope being closed.
        let now = counts();
        let allocs = now.allocs - self.start.allocs;
        let deallocs = now.deallocs - self.start.deallocs;
        if allocs > 0 {
            self.span.attr(ALLOCS_ATTR, &allocs.to_string());
        }
        if deallocs > 0 {
            self.span.attr(DEALLOCS_ATTR, &deallocs.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    // The counting allocator is NOT installed in this crate's own test
    // binary (unit tests here share the process with doc builds and the
    // rest of the suite); these tests pin the uninstalled behavior. The
    // installed behavior is pinned by `crates/prof/tests/alloc_attr.rs`,
    // which does install it.
    use super::*;
    use vlc_telemetry::ManualClock;
    use vlc_trace::Tracer;

    #[test]
    fn without_the_allocator_counts_stay_zero() {
        let n = allocations_during(|| {
            let v: Vec<u64> = (0..64).collect();
            assert_eq!(v.len(), 64);
        });
        assert_eq!(n, 0);
        assert_eq!(counts_during(|| {}), AllocCounts::default());
    }

    #[test]
    fn scope_attaches_nothing_when_deltas_are_zero() {
        let tracer = Tracer::with_clock(ManualClock::new());
        let root = tracer.root("r");
        {
            let _scope = AllocScope::new(&root);
            let _v: Vec<u8> = vec![0; 32];
        }
        drop(root);
        let snap = tracer.snapshot();
        assert!(snap.spans[0].attrs.is_empty(), "no attrs without counter");
    }
}
