//! VLC physical layer for the DenseVLC reproduction.
//!
//! DenseVLC's PHY (paper §3.3, §7) is a modified On-Off-Keying scheme:
//! the LED current swings around the illumination bias, Manchester coding
//! keeps average brightness constant, and a Reed–Solomon outer code protects
//! the payload (16 parity bytes per 200 payload bytes, Table 3). The
//! receiver front-end is a three-stage analog chain — transimpedance
//! amplifier, AC-coupled amplifier, 7th-order Butterworth anti-aliasing
//! filter — followed by a 1 Msps ADC, and link quality is estimated with
//! the M2M4 moments method. This crate implements all of it:
//!
//! * [`manchester`] — Manchester bit/chip coding.
//! * [`packed`] — the bit-packed fast path: chip streams as `u64` words
//!   with LUT encode and word-wise decode, bit-identical to [`manchester`].
//! * [`gf256`] + [`rs`] — GF(2⁸) arithmetic and the Reed–Solomon
//!   encoder/decoder (t = 8 symbol corrections per 216-byte block).
//! * [`frame`] — the Table 3 frame layout: TX-ID mask, pilot, preamble,
//!   SFD, header fields, payload, per-chunk RS parity.
//! * [`waveform`] — symbol-level OOK waveform synthesis and slicing.
//! * [`frontend`] — the analog receive chain as discrete-time filters plus
//!   the quantizing ADC.
//! * [`snr`] — the M2M4 SNR estimator (paper §7.2).
//! * [`fft`] + [`ofdm`] — the §9 extension: an in-tree radix-2 FFT and a
//!   DCO-OFDM modem for intensity-modulated VLC.
//! * [`interleave`] — a block interleaver diluting channel bursts across
//!   Reed–Solomon chunks.
//! * [`codec`] — the pluggable [`codec::CodecStack`] trait the frame
//!   pipeline runs on, with the stock stack catalogue (paper RS,
//!   interleaved RS, convolutional+CRC, CRC-only baseline).
//! * [`conv`] + [`crc`] — the primitives behind the alternative stacks: a
//!   K=7 rate-1/2 convolutional code with Viterbi decoding, and CRC-32.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod conv;
pub mod crc;
pub mod fft;
pub mod frame;
pub mod frontend;
pub mod gf256;
pub mod interleave;
pub mod manchester;
pub mod ofdm;
pub mod packed;
pub mod rs;
pub mod snr;
pub mod waveform;

pub use codec::{CodecError, CodecStack, Correction, CrcStack, InterleavedRsStack, RsStack};
pub use frame::{Frame, FrameError, FrameHeader};
pub use manchester::{manchester_decode, manchester_encode, Chip};
pub use packed::{packed_decode, packed_encode, PackedChips};
pub use rs::{ReedSolomon, RsCodec, RsError, RsParams};
pub use snr::m2m4_snr;
