//! The pluggable FEC stack behind the frame pipeline.
//!
//! The paper fixes its PHY at Manchester + RS(216, 200); this module makes
//! the byte-level FEC layer a trait so the frame pipeline (and the
//! `codec_campaign` bench harness) can run the same wire format over
//! alternative codes. A [`CodecStack`] owns all of its scratch, encodes a
//! payload into caller buffers and decodes it back, and reports its
//! overhead and correction guarantees.
//!
//! Every stack keeps the repo's twin discipline: the `&mut self` methods
//! ([`CodecStack::encode_into`] / [`CodecStack::decode_into`]) are the
//! zero-alloc workspace path (0 heap allocations per frame once warm —
//! proven in `crates/phy/tests/zero_alloc.rs`), while
//! [`CodecStack::encode_ref`] / [`CodecStack::decode_ref`] are allocating
//! reference implementations pinned equivalent by the proptests in
//! `crates/phy/tests/codec_identity.rs`.
//!
//! The stock catalogue ([`registry`]):
//!
//! | name          | scheme                                   | overhead on 200 B |
//! |---------------|------------------------------------------|-------------------|
//! | `rs`          | the paper's chunked RS(216, 200)         | 16 B              |
//! | `rs+il16`     | RS(216, 200) under a depth-16 interleave | 16 B              |
//! | `conv_k7+crc32` | rate-1/2 K=7 convolutional over payload‖CRC-32 | 208 B      |
//! | `crc32`       | uncoded, CRC-32 detect-only baseline     | 4 B               |

use crate::conv::{self, ConvWorkspace};
use crate::crc::{crc32, CRC_LEN};
use crate::interleave::Interleaver;
use crate::rs::{ReedSolomon, RsCodec, RsError, RsParams};
use std::fmt;

/// Errors surfaced by a [`CodecStack`] decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The stack could not recover the payload (too many errors, or an
    /// integrity check failed).
    Uncorrectable,
    /// The coded stream does not have the length the stack expects for the
    /// declared payload length (truncation / chip deletion).
    BadLength {
        /// Offending coded length in bytes.
        len: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Uncorrectable => write!(f, "codec stack could not recover the payload"),
            CodecError::BadLength { len } => write!(f, "invalid coded stream length {len}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<RsError> for CodecError {
    fn from(e: RsError) -> Self {
        match e {
            RsError::TooManyErrors => CodecError::Uncorrectable,
            RsError::BadBlockLength { len } => CodecError::BadLength { len },
        }
    }
}

/// A stack's correction-capacity metadata, as advertised guarantees (what
/// the code *promises*, not what it may opportunistically achieve).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Correction {
    /// Guaranteed correctable byte errors per coded block of
    /// [`Correction::block_len`] bytes. 0 for detect-only stacks and for
    /// codes (like the convolutional stack) whose guarantee is statistical
    /// rather than per-block.
    pub t_per_block: usize,
    /// Coded block size in bytes over which `t_per_block` applies; 0 when
    /// no block-level guarantee exists.
    pub block_len: usize,
    /// Longest single channel byte-burst guaranteed recoverable (one burst
    /// per frame); 0 when nothing is guaranteed.
    pub burst_tolerance: usize,
}

/// A pluggable FEC codec stack over caller buffers.
///
/// Contract:
/// * `encode_into(payload, out)` **appends** exactly
///   `encoded_len(payload.len())` bytes to `out`.
/// * `decode_into(coded, payload_len, payload_out)` **appends** exactly
///   `payload_len` recovered bytes to `payload_out` on success and appends
///   nothing on error; `coded` must be `encoded_len(payload_len)` bytes or
///   the stack returns [`CodecError::BadLength`]. The `Ok` value counts
///   corrected symbols in the stack's native unit (bytes for the RS
///   stacks, channel bits for the convolutional stack, always 0 for the
///   detect-only baseline).
/// * `decode(encode(payload)) == payload` for every payload up to the
///   frame layer's maximum — pinned for all registered stacks by
///   `crates/phy/tests/codec_identity.rs`.
pub trait CodecStack {
    /// Stable identifier used in campaign reports and obs streams.
    fn name(&self) -> &str;

    /// Coded length in bytes for a `payload_len`-byte payload.
    fn encoded_len(&self, payload_len: usize) -> usize;

    /// Advertised correction guarantees.
    fn correction(&self) -> Correction;

    /// Appends the coded payload to `out` (workspace path).
    fn encode_into(&mut self, payload: &[u8], out: &mut Vec<u8>);

    /// Recovers the payload from `coded`, appending it to `payload_out`;
    /// returns the corrected-symbol count (workspace path).
    fn decode_into(
        &mut self,
        coded: &[u8],
        payload_len: usize,
        payload_out: &mut Vec<u8>,
    ) -> Result<usize, CodecError>;

    /// Allocating reference twin of [`CodecStack::encode_into`].
    fn encode_ref(&self, payload: &[u8]) -> Vec<u8>;

    /// Allocating reference twin of [`CodecStack::decode_into`].
    fn decode_ref(&self, coded: &[u8], payload_len: usize) -> Result<(Vec<u8>, usize), CodecError>;
}

/// The paper's stack: chunked RS(216, 200) (or any `nroots`), no
/// interleaving — [`RsCodec`] behind the [`CodecStack`] trait. The frame
/// pipeline runs on this implementation; `e2e` identity tests pin it
/// bit-identical to the pre-trait code path.
#[derive(Debug, Clone)]
pub struct RsStack {
    codec: RsCodec,
    scratch: Vec<u8>,
}

impl RsStack {
    /// A stack with `nroots` parity bytes per chunk.
    pub fn new(nroots: usize) -> Self {
        RsStack {
            codec: RsCodec::new(nroots),
            scratch: Vec::new(),
        }
    }

    /// The paper's RS(216, 200) stack.
    pub fn paper() -> Self {
        RsStack::new(RsParams::PAPER.nroots)
    }

    /// The underlying scalar codec (for [`crate::frame::Frame::to_bytes`]
    /// interop and reference paths).
    pub fn reference(&self) -> &ReedSolomon {
        self.codec.reference()
    }
}

impl CodecStack for RsStack {
    fn name(&self) -> &str {
        "rs"
    }

    fn encoded_len(&self, payload_len: usize) -> usize {
        payload_len + payload_len.div_ceil(RsParams::PAPER.chunk) * self.codec.parity_len()
    }

    fn correction(&self) -> Correction {
        let t = self.codec.correction_capacity();
        Correction {
            t_per_block: t,
            block_len: RsParams::PAPER.chunk + self.codec.parity_len(),
            burst_tolerance: t,
        }
    }

    fn encode_into(&mut self, payload: &[u8], out: &mut Vec<u8>) {
        self.codec.encode_payload_into(payload, out);
    }

    fn decode_into(
        &mut self,
        coded: &[u8],
        payload_len: usize,
        payload_out: &mut Vec<u8>,
    ) -> Result<usize, CodecError> {
        self.scratch.clear();
        self.scratch.extend_from_slice(coded);
        let corrected = self
            .codec
            .decode_payload_in_place(&mut self.scratch, payload_len)?;
        self.codec
            .extract_payload_into(&self.scratch, payload_len, payload_out);
        Ok(corrected)
    }

    fn encode_ref(&self, payload: &[u8]) -> Vec<u8> {
        self.codec.reference().encode_payload(payload)
    }

    fn decode_ref(&self, coded: &[u8], payload_len: usize) -> Result<(Vec<u8>, usize), CodecError> {
        let mut buf = coded.to_vec();
        Ok(self
            .codec
            .reference()
            .decode_payload(&mut buf, payload_len)?)
    }
}

/// RS under a block interleaver: same overhead as [`RsStack`], but a
/// channel burst is diluted across `depth` chunks, stretching the
/// guaranteed burst tolerance from `t` to `depth × t` bytes (verified
/// empirically by `crates/phy/tests/burst_tolerance.rs`).
#[derive(Debug, Clone)]
pub struct InterleavedRsStack {
    codec: RsCodec,
    il: Interleaver,
    name: String,
    scratch: Vec<u8>,
}

impl InterleavedRsStack {
    /// A stack with `nroots` parity bytes per chunk under a `depth`-row
    /// interleaver.
    pub fn new(nroots: usize, depth: usize) -> Self {
        InterleavedRsStack {
            codec: RsCodec::new(nroots),
            il: Interleaver::new(depth),
            name: format!("rs+il{depth}"),
            scratch: Vec::new(),
        }
    }

    /// The paper's RS parameters under a depth-16 interleaver.
    pub fn paper16() -> Self {
        InterleavedRsStack::new(RsParams::PAPER.nroots, 16)
    }
}

impl CodecStack for InterleavedRsStack {
    fn name(&self) -> &str {
        &self.name
    }

    fn encoded_len(&self, payload_len: usize) -> usize {
        payload_len + payload_len.div_ceil(RsParams::PAPER.chunk) * self.codec.parity_len()
    }

    fn correction(&self) -> Correction {
        let t = self.codec.correction_capacity();
        Correction {
            t_per_block: t,
            block_len: RsParams::PAPER.chunk + self.codec.parity_len(),
            burst_tolerance: self.il.burst_tolerance(t),
        }
    }

    fn encode_into(&mut self, payload: &[u8], out: &mut Vec<u8>) {
        self.scratch.clear();
        self.codec.encode_payload_into(payload, &mut self.scratch);
        self.il.interleave_into(&self.scratch, out);
    }

    fn decode_into(
        &mut self,
        coded: &[u8],
        payload_len: usize,
        payload_out: &mut Vec<u8>,
    ) -> Result<usize, CodecError> {
        if coded.len() != self.encoded_len(payload_len) {
            return Err(CodecError::BadLength { len: coded.len() });
        }
        self.scratch.clear();
        self.il.deinterleave_into(coded, &mut self.scratch);
        let corrected = self
            .codec
            .decode_payload_in_place(&mut self.scratch, payload_len)?;
        self.codec
            .extract_payload_into(&self.scratch, payload_len, payload_out);
        Ok(corrected)
    }

    fn encode_ref(&self, payload: &[u8]) -> Vec<u8> {
        self.il
            .interleave(&self.codec.reference().encode_payload(payload))
    }

    fn decode_ref(&self, coded: &[u8], payload_len: usize) -> Result<(Vec<u8>, usize), CodecError> {
        if coded.len() != self.encoded_len(payload_len) {
            return Err(CodecError::BadLength { len: coded.len() });
        }
        let mut buf = self.il.deinterleave(coded);
        Ok(self
            .codec
            .reference()
            .decode_payload(&mut buf, payload_len)?)
    }
}

/// A rate-1/2 constraint-length-7 convolutional code over `payload ‖
/// CRC-32`: the Viterbi decoder always produces *some* bit stream, so the
/// CRC is what turns a wrong path into a detected failure. Roughly 2×
/// overhead buys correction of scattered bit errors well past the RS
/// stacks' byte budget — but no hard per-block guarantee (see
/// [`Correction`]).
#[derive(Debug, Clone, Default)]
pub struct ConvStack {
    ws: ConvWorkspace,
    buf: Vec<u8>,
}

impl ConvStack {
    /// Creates the stack (buffers grow on first use).
    pub fn new() -> Self {
        ConvStack::default()
    }
}

impl CodecStack for ConvStack {
    fn name(&self) -> &str {
        "conv_k7+crc32"
    }

    fn encoded_len(&self, payload_len: usize) -> usize {
        conv::coded_len(payload_len + CRC_LEN)
    }

    fn correction(&self) -> Correction {
        // Free distance 10 corrects scattered bit errors, but any dense
        // burst defeats the code's 6-bit memory: no byte-level guarantee.
        Correction {
            t_per_block: 0,
            block_len: 0,
            burst_tolerance: 0,
        }
    }

    fn encode_into(&mut self, payload: &[u8], out: &mut Vec<u8>) {
        self.buf.clear();
        self.buf.extend_from_slice(payload);
        self.buf.extend_from_slice(&crc32(payload).to_be_bytes());
        self.ws.encode_into(&self.buf, out);
    }

    fn decode_into(
        &mut self,
        coded: &[u8],
        payload_len: usize,
        payload_out: &mut Vec<u8>,
    ) -> Result<usize, CodecError> {
        self.buf.clear();
        let corrected = self
            .ws
            .decode_into(coded, payload_len + CRC_LEN, &mut self.buf)
            .ok_or(CodecError::BadLength { len: coded.len() })?;
        let (msg, tail) = self.buf.split_at(payload_len);
        if tail != crc32(msg).to_be_bytes() {
            return Err(CodecError::Uncorrectable);
        }
        payload_out.extend_from_slice(msg);
        Ok(corrected)
    }

    fn encode_ref(&self, payload: &[u8]) -> Vec<u8> {
        let mut msg = payload.to_vec();
        msg.extend_from_slice(&crc32(payload).to_be_bytes());
        conv::conv_encode(&msg)
    }

    fn decode_ref(&self, coded: &[u8], payload_len: usize) -> Result<(Vec<u8>, usize), CodecError> {
        let (mut msg, corrected) = conv::viterbi_decode(coded, payload_len + CRC_LEN)
            .ok_or(CodecError::BadLength { len: coded.len() })?;
        let tail = msg.split_off(payload_len);
        if tail != crc32(&msg).to_be_bytes() {
            return Err(CodecError::Uncorrectable);
        }
        Ok((msg, corrected))
    }
}

/// The uncoded baseline: `payload ‖ CRC-32`, 4 bytes of overhead, zero
/// correction — every corrupted frame is a detected loss. This is the
/// frontier's origin point: any FEC stack must beat it on PER to justify
/// its overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrcStack;

impl CrcStack {
    /// Creates the stack.
    pub fn new() -> Self {
        CrcStack
    }
}

impl CodecStack for CrcStack {
    fn name(&self) -> &str {
        "crc32"
    }

    fn encoded_len(&self, payload_len: usize) -> usize {
        payload_len + CRC_LEN
    }

    fn correction(&self) -> Correction {
        Correction {
            t_per_block: 0,
            block_len: 0,
            burst_tolerance: 0,
        }
    }

    fn encode_into(&mut self, payload: &[u8], out: &mut Vec<u8>) {
        out.extend_from_slice(payload);
        out.extend_from_slice(&crc32(payload).to_be_bytes());
    }

    fn decode_into(
        &mut self,
        coded: &[u8],
        payload_len: usize,
        payload_out: &mut Vec<u8>,
    ) -> Result<usize, CodecError> {
        if coded.len() != payload_len + CRC_LEN {
            return Err(CodecError::BadLength { len: coded.len() });
        }
        let (msg, tail) = coded.split_at(payload_len);
        if tail != crc32(msg).to_be_bytes() {
            return Err(CodecError::Uncorrectable);
        }
        payload_out.extend_from_slice(msg);
        Ok(0)
    }

    fn encode_ref(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(payload.len() + CRC_LEN);
        out.extend_from_slice(payload);
        out.extend_from_slice(&crc32(payload).to_be_bytes());
        out
    }

    fn decode_ref(&self, coded: &[u8], payload_len: usize) -> Result<(Vec<u8>, usize), CodecError> {
        let mut out = Vec::new();
        let corrected = CrcStack.decode_into(coded, payload_len, &mut out)?;
        Ok((out, corrected))
    }
}

/// Every stock stack, in presentation order. The campaign harness, the
/// identity proptests, and the zero-alloc proofs all iterate this list, so
/// a stack added here is automatically swept and gated.
pub fn registry() -> Vec<Box<dyn CodecStack>> {
    vec![
        Box::new(RsStack::paper()),
        Box::new(InterleavedRsStack::paper16()),
        Box::new(ConvStack::new()),
        Box::new(CrcStack::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_stable() {
        let names: Vec<String> = registry().iter().map(|s| s.name().to_string()).collect();
        assert_eq!(names, ["rs", "rs+il16", "conv_k7+crc32", "crc32"]);
    }

    #[test]
    fn encoded_len_matches_encode_output() {
        for stack in registry().iter_mut() {
            for len in [0usize, 1, 17, 199, 200, 201, 517] {
                let payload: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
                let mut out = Vec::new();
                stack.encode_into(&payload, &mut out);
                assert_eq!(
                    out.len(),
                    stack.encoded_len(len),
                    "stack {} len {len}",
                    stack.name()
                );
                assert_eq!(out, stack.encode_ref(&payload), "stack {}", stack.name());
            }
        }
    }

    #[test]
    fn rs_stack_matches_bare_codec() {
        // The trait wrapper must be byte-identical to driving RsCodec by
        // hand — the frame pipeline's bit-identity depends on it.
        let mut stack = RsStack::paper();
        let mut codec = RsCodec::paper();
        let payload: Vec<u8> = (0..300).map(|i| (i % 256) as u8).collect();
        let mut via_stack = Vec::new();
        stack.encode_into(&payload, &mut via_stack);
        let mut via_codec = Vec::new();
        codec.encode_payload_into(&payload, &mut via_codec);
        assert_eq!(via_stack, via_codec);

        via_stack[5] ^= 0x40;
        via_stack[250] ^= 0x11;
        let mut got = Vec::new();
        let corrected = stack
            .decode_into(&via_stack, 300, &mut got)
            .expect("repairable");
        assert_eq!(got, payload);
        assert_eq!(corrected, 2);
    }

    #[test]
    fn interleaved_stack_survives_a_burst_the_bare_stack_cannot() {
        let mut bare = RsStack::paper();
        let mut il = InterleavedRsStack::paper16();
        let payload: Vec<u8> = (0..400).map(|i| (i % 251) as u8).collect();
        let corrupt = |stack: &mut dyn CodecStack| {
            let mut coded = Vec::new();
            stack.encode_into(&payload, &mut coded);
            for b in coded.iter_mut().skip(100).take(14) {
                *b ^= 0xA5;
            }
            let mut out = Vec::new();
            stack.decode_into(&coded, 400, &mut out).map(|c| (out, c))
        };
        assert_eq!(corrupt(&mut bare), Err(CodecError::Uncorrectable));
        let (decoded, corrected) = corrupt(&mut il).expect("interleaving dilutes the burst");
        assert_eq!(decoded, payload);
        assert_eq!(corrected, 14);
    }

    #[test]
    fn conv_stack_corrects_bit_errors_and_detects_garbage() {
        let mut stack = ConvStack::new();
        let payload: Vec<u8> = (0..120u8).collect();
        let mut coded = Vec::new();
        stack.encode_into(&payload, &mut coded);
        // Scattered bit errors: corrected, and counted in bits.
        for &i in &[10usize, 300, 700, 1200] {
            coded[i >> 3] ^= 1 << (7 - (i & 7));
        }
        let mut out = Vec::new();
        let corrected = stack
            .decode_into(&coded, 120, &mut out)
            .expect("sparse errors");
        assert_eq!(out, payload);
        assert_eq!(corrected, 4);
        // A dense burst sails through Viterbi but the CRC rejects it.
        for i in 400..440usize {
            coded[i >> 3] ^= 1 << (7 - (i & 7));
        }
        out.clear();
        assert_eq!(
            stack.decode_into(&coded, 120, &mut out),
            Err(CodecError::Uncorrectable)
        );
        assert!(out.is_empty(), "failed decode must not emit payload bytes");
    }

    #[test]
    fn crc_stack_detects_any_corruption() {
        let mut stack = CrcStack::new();
        let payload = b"goodput over glass".to_vec();
        let mut coded = Vec::new();
        stack.encode_into(&payload, &mut coded);
        let mut out = Vec::new();
        assert_eq!(stack.decode_into(&coded, payload.len(), &mut out), Ok(0));
        assert_eq!(out, payload);
        coded[3] ^= 1;
        out.clear();
        assert_eq!(
            stack.decode_into(&coded, payload.len(), &mut out),
            Err(CodecError::Uncorrectable)
        );
    }

    #[test]
    fn truncation_is_bad_length_for_every_stack() {
        for stack in registry().iter_mut() {
            let payload = vec![7u8; 150];
            let mut coded = Vec::new();
            stack.encode_into(&payload, &mut coded);
            coded.pop();
            let mut out = Vec::new();
            assert_eq!(
                stack.decode_into(&coded, 150, &mut out),
                Err(CodecError::BadLength {
                    len: stack.encoded_len(150) - 1
                }),
                "stack {}",
                stack.name()
            );
        }
    }

    #[test]
    fn correction_metadata_is_consistent() {
        for stack in registry() {
            let c = stack.correction();
            if c.t_per_block > 0 {
                assert!(c.block_len > 0, "stack {}", stack.name());
                assert!(
                    c.burst_tolerance >= c.t_per_block,
                    "stack {}: interleaving can only widen the burst budget",
                    stack.name()
                );
            }
        }
    }
}
