//! CRC-32 (IEEE 802.3) integrity checks.
//!
//! The codec lab's detect-only baseline and the convolutional stack both
//! close their frames with the ubiquitous reflected CRC-32 (polynomial
//! `0xEDB88320`, init and final XOR `0xFFFFFFFF` — the Ethernet / zlib
//! variant). Two implementations live here: a table-driven fast path and a
//! bitwise reference, pinned equivalent by a proptest, mirroring the
//! repo's twin-implementation discipline.

/// Length of the serialized checksum in bytes.
pub const CRC_LEN: usize = 4;

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Computes the CRC-32 of `data` (table-driven).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Bit-at-a-time reference implementation of [`crc32`].
pub fn crc32_bitwise(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
        }
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for this CRC variant.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flips_are_detected() {
        let data = b"densevlc codec lab";
        let clean = crc32(data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.to_vec();
                corrupt[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), clean, "flip at byte {i} bit {bit}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_table_matches_bitwise(data in proptest::collection::vec(any::<u8>(), 0..600)) {
            prop_assert_eq!(crc32(&data), crc32_bitwise(&data));
        }
    }
}
