//! Convolutional coding with hard-decision Viterbi decoding.
//!
//! The codec lab's rate-1/2 alternative to the paper's Reed–Solomon block
//! code: the classic constraint-length-7 code with generators `0o171` and
//! `0o133` (the NASA/CCSDS "Voyager" polynomials, free distance 10). The
//! encoder shifts message bits MSB-first through a 7-bit register and emits
//! two coded bits per message bit; six zero bits flush the register so the
//! trellis ends in state 0. The decoder is a 64-state hard-decision Viterbi:
//! add-compare-select over per-step Hamming branch metrics, one survivor
//! bit per state per step, traceback from the flushed zero state.
//!
//! Two implementations, following the repo's twin discipline:
//! [`conv_encode`] / [`viterbi_decode`] allocate per call and serve as the
//! reference; [`ConvWorkspace`] reuses its survivor storage so a warmed
//! instance encodes and decodes with zero heap allocations (proven by the
//! counting-allocator test in `crates/phy/tests/zero_alloc.rs`), pinned
//! equivalent to the reference by proptests below.

/// Constraint length `K` (register holds the current bit plus 6 prior).
pub const CONSTRAINT: usize = 7;
/// First generator polynomial (`1111001`, taps on register bits 0,3,4,5,6).
pub const G1: u32 = 0o171;
/// Second generator polynomial (`1011011`).
pub const G2: u32 = 0o133;
/// Zero bits appended to return the trellis to state 0.
pub const FLUSH_BITS: usize = CONSTRAINT - 1;

const N_STATES: usize = 1 << FLUSH_BITS;
const INF: u32 = u32::MAX / 2;

/// Coded length in bytes for a `data_len`-byte message: every message bit
/// plus the 6 flush bits produces 2 coded bits, packed MSB-first.
pub const fn coded_len(data_len: usize) -> usize {
    (2 * (8 * data_len + FLUSH_BITS)).div_ceil(8)
}

/// Reads bit `i` (MSB-first within each byte) of `bytes`.
#[inline]
fn bit(bytes: &[u8], i: usize) -> u8 {
    (bytes[i >> 3] >> (7 - (i & 7))) & 1
}

/// The two coded bits for shift-register contents `sr` (7 bits, current
/// message bit in bit 0).
#[inline]
fn branch_bits(sr: u32) -> (u8, u8) {
    (
        ((sr & G1).count_ones() & 1) as u8,
        ((sr & G2).count_ones() & 1) as u8,
    )
}

/// Encodes `data`, returning the coded bytes — allocating reference twin
/// of [`ConvWorkspace::encode_into`].
pub fn conv_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(coded_len(data.len()));
    encode_append(data, &mut out);
    out
}

/// The shared encoder body: appends the coded bytes of `data` to `out`.
fn encode_append(data: &[u8], out: &mut Vec<u8>) {
    let n_bits = 8 * data.len() + FLUSH_BITS;
    let mut sr = 0u32;
    let mut acc = 0u8;
    let mut acc_bits = 0u8;
    for i in 0..n_bits {
        let b = if i < 8 * data.len() {
            bit(data, i) as u32
        } else {
            0 // flush
        };
        sr = ((sr << 1) | b) & 0x7F;
        let (c1, c2) = branch_bits(sr);
        for c in [c1, c2] {
            acc = (acc << 1) | c;
            acc_bits += 1;
            if acc_bits == 8 {
                out.push(acc);
                acc = 0;
                acc_bits = 0;
            }
        }
    }
    if acc_bits > 0 {
        out.push(acc << (8 - acc_bits));
    }
}

/// Decodes `coded` back into a `data_len`-byte message, returning the
/// message and the number of channel bit errors the survivor path absorbed
/// (its Hamming distance to the received stream). Returns `None` when
/// `coded` is not exactly [`coded_len`]`(data_len)` bytes — a truncated or
/// overlong stream is detected, not guessed at.
///
/// Allocating reference twin of [`ConvWorkspace::decode_into`].
pub fn viterbi_decode(coded: &[u8], data_len: usize) -> Option<(Vec<u8>, usize)> {
    if coded.len() != coded_len(data_len) {
        return None;
    }
    let steps = 8 * data_len + FLUSH_BITS;
    let mut metric = vec![INF; N_STATES];
    let mut next = vec![INF; N_STATES];
    metric[0] = 0;
    let mut survivors = vec![0u64; steps];
    for (t, surv) in survivors.iter_mut().enumerate() {
        let (r1, r2) = (bit(coded, 2 * t), bit(coded, 2 * t + 1));
        acs_step(&metric, &mut next, surv, r1, r2);
        std::mem::swap(&mut metric, &mut next);
    }
    let mut out = vec![0u8; data_len];
    let corrected = traceback(&survivors, steps, data_len, &mut out, &metric);
    Some((out, corrected))
}

/// One add-compare-select step: fills `next[ns]` from the two predecessors
/// of each state and records the winning high predecessor bit in `surv`.
#[inline]
fn acs_step(metric: &[u32], next: &mut [u32], surv: &mut u64, r1: u8, r2: u8) {
    for (ns, slot) in next.iter_mut().enumerate() {
        let b = (ns & 1) as u32;
        let low = ns >> 1;
        let mut best = INF;
        let mut best_p5 = 0u64;
        for p5 in 0..2usize {
            let p = low | (p5 << (FLUSH_BITS - 1));
            let sr = ((p as u32) << 1) | b;
            let (e1, e2) = branch_bits(sr);
            let bm = u32::from(e1 != r1) + u32::from(e2 != r2);
            let cand = metric[p].saturating_add(bm);
            // Strict `<` keeps the tie on p5 = 0 — deterministic.
            if cand < best {
                best = cand;
                best_p5 = p5 as u64;
            }
        }
        *slot = best;
        if best_p5 == 1 {
            *surv |= 1 << ns;
        }
    }
}

/// Walks the survivor bits back from the flushed zero state, OR-ing the
/// message bits into `out` (which must be `data_len` zeroed bytes starting
/// at `out.len() - data_len`). Returns the best path metric.
fn traceback(
    survivors: &[u64],
    steps: usize,
    data_len: usize,
    out: &mut [u8],
    final_metric: &[u32],
) -> usize {
    let base = out.len() - data_len;
    let mut state = 0usize;
    for t in (0..steps).rev() {
        let b = (state & 1) as u8;
        if t < 8 * data_len && b == 1 {
            out[base + (t >> 3)] |= 1 << (7 - (t & 7));
        }
        let p5 = (survivors[t] >> state) & 1;
        state = (state >> 1) | ((p5 as usize) << (FLUSH_BITS - 1));
    }
    final_metric[0] as usize
}

/// A reusable encoder/decoder workspace: identical outputs to
/// [`conv_encode`] / [`viterbi_decode`], with the survivor storage and
/// path-metric buffers owned by the struct so a warmed instance runs
/// allocation-free.
#[derive(Debug, Clone)]
pub struct ConvWorkspace {
    survivors: Vec<u64>,
    metric: [u32; N_STATES],
    next: [u32; N_STATES],
}

impl Default for ConvWorkspace {
    fn default() -> Self {
        ConvWorkspace::new()
    }
}

impl ConvWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        ConvWorkspace {
            survivors: Vec::new(),
            metric: [INF; N_STATES],
            next: [INF; N_STATES],
        }
    }

    /// Appends the coded bytes of `data` to `out` — zero-alloc once `out`
    /// has capacity (the encoder itself never allocates).
    pub fn encode_into(&mut self, data: &[u8], out: &mut Vec<u8>) {
        encode_append(data, out);
    }

    /// Appends the decoded `data_len`-byte message to `out` and returns the
    /// survivor path's corrected bit count; `None` when `coded` has the
    /// wrong length. Zero-alloc once the survivor buffer and `out` are warm.
    pub fn decode_into(
        &mut self,
        coded: &[u8],
        data_len: usize,
        out: &mut Vec<u8>,
    ) -> Option<usize> {
        if coded.len() != coded_len(data_len) {
            return None;
        }
        let steps = 8 * data_len + FLUSH_BITS;
        self.survivors.clear();
        self.survivors.resize(steps, 0);
        self.metric = [INF; N_STATES];
        self.metric[0] = 0;
        for t in 0..steps {
            let (r1, r2) = (bit(coded, 2 * t), bit(coded, 2 * t + 1));
            acs_step(&self.metric, &mut self.next, &mut self.survivors[t], r1, r2);
            std::mem::swap(&mut self.metric, &mut self.next);
        }
        let base = out.len();
        out.resize(base + data_len, 0);
        let corrected = traceback(
            &self.survivors,
            steps,
            data_len,
            &mut out[base..],
            &self.metric,
        );
        Some(corrected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn coded_len_formula() {
        // 2·(8·len + 6) bits, byte-padded.
        assert_eq!(coded_len(0), 2);
        assert_eq!(coded_len(1), 4);
        assert_eq!(coded_len(10), 22);
        assert_eq!(coded_len(200), 402);
    }

    #[test]
    fn clean_roundtrip() {
        for len in [0usize, 1, 2, 7, 33, 200] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
            let coded = conv_encode(&data);
            assert_eq!(coded.len(), coded_len(len));
            let (decoded, corrected) = viterbi_decode(&coded, len).expect("length ok");
            assert_eq!(decoded, data, "len {len}");
            assert_eq!(corrected, 0, "clean stream needed corrections");
        }
    }

    #[test]
    fn corrects_scattered_bit_errors() {
        // Free distance 10 ⇒ any 4 errors spaced beyond a constraint length
        // are correctable; the decoder reports exactly how many it absorbed.
        let data: Vec<u8> = (0..50u8).collect();
        let mut coded = conv_encode(&data);
        for &i in &[3usize, 40, 90, 150] {
            coded[i >> 3] ^= 1 << (7 - (i & 7));
        }
        let (decoded, corrected) = viterbi_decode(&coded, 50).expect("length ok");
        assert_eq!(decoded, data);
        assert_eq!(corrected, 4);
    }

    #[test]
    fn wrong_length_is_rejected() {
        let coded = conv_encode(&[1, 2, 3]);
        assert!(viterbi_decode(&coded[..coded.len() - 1], 3).is_none());
        assert!(viterbi_decode(&coded, 4).is_none());
        let mut ws = ConvWorkspace::new();
        let mut out = Vec::new();
        assert!(ws
            .decode_into(&coded[..coded.len() - 1], 3, &mut out)
            .is_none());
        assert!(out.is_empty(), "failed decode must not emit bytes");
    }

    #[test]
    fn dense_burst_overwhelms_the_code() {
        // 30 consecutive flipped bits exceed any convolutional memory; the
        // decode returns *something*, but not the message — the CRC layer
        // above (see `codec::ConvStack`) is what detects this.
        let data: Vec<u8> = (0..80u8).collect();
        let mut coded = conv_encode(&data);
        for i in 200..230usize {
            coded[i >> 3] ^= 1 << (7 - (i & 7));
        }
        let (decoded, _) = viterbi_decode(&coded, 80).expect("length ok");
        assert_ne!(decoded, data);
    }

    proptest! {
        #[test]
        fn prop_workspace_matches_reference(
            data in proptest::collection::vec(any::<u8>(), 0..=200),
            err_seed in any::<u64>(),
            n_err in 0usize..=6,
        ) {
            let clean = conv_encode(&data);
            let mut ws = ConvWorkspace::new();
            let mut ws_coded = Vec::new();
            ws.encode_into(&data, &mut ws_coded);
            prop_assert_eq!(&ws_coded, &clean);

            // Equivalence must hold on corrupted streams too.
            let mut coded = clean.clone();
            let n_bits = 2 * (8 * data.len() + FLUSH_BITS);
            let mut rng = StdRng::seed_from_u64(err_seed);
            for _ in 0..n_err {
                let i = rng.gen_range(0..n_bits);
                coded[i >> 3] ^= 1 << (7 - (i & 7));
            }
            let reference = viterbi_decode(&coded, data.len()).expect("length ok");
            let mut ws_out = Vec::new();
            let corrected = ws.decode_into(&coded, data.len(), &mut ws_out).expect("length ok");
            prop_assert_eq!((ws_out, corrected), reference);
        }

        #[test]
        fn prop_sparse_errors_roundtrip(
            data in proptest::collection::vec(any::<u8>(), 1..=64),
            err_seed in any::<u64>(),
        ) {
            // Up to 3 errors, each in a distinct 32-bit stretch: safely
            // within the free-distance budget.
            let mut coded = conv_encode(&data);
            let n_bits = 2 * (8 * data.len() + FLUSH_BITS);
            let mut rng = StdRng::seed_from_u64(err_seed);
            let mut flipped = 0usize;
            for chunk_start in (0..n_bits).step_by(96).take(3) {
                let span = 32.min(n_bits - chunk_start);
                let i = chunk_start + rng.gen_range(0..span);
                coded[i >> 3] ^= 1 << (7 - (i & 7));
                flipped += 1;
            }
            let (decoded, corrected) = viterbi_decode(&coded, data.len()).expect("length ok");
            prop_assert_eq!(decoded, data);
            prop_assert_eq!(corrected, flipped);
        }
    }
}
