//! Symbol-level OOK waveform synthesis, sampling, and slicing.
//!
//! The testbed transmits chips at `ftx` symbols/s and the receiver samples
//! at `frx` samples/s (1 Msps in the paper). The waveform layer turns chip
//! streams into oversampled amplitude sequences (optionally delayed by a
//! per-TX clock offset — the mechanism that makes unsynchronized joint
//! transmission fail, Table 5) and recovers chips from noisy sample streams
//! with a mid-chip slicer.

use crate::manchester::Chip;
use serde::{Deserialize, Serialize};

/// Waveform timing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveformConfig {
    /// Chip (symbol) rate at the transmitter, in chips per second.
    pub symbol_rate_hz: f64,
    /// Receiver sampling rate, in samples per second.
    pub sample_rate_hz: f64,
}

impl WaveformConfig {
    /// The paper's testbed rates: 100 Ksymbols/s transmit, 1 Msps sampling.
    pub fn paper() -> Self {
        WaveformConfig {
            symbol_rate_hz: 100_000.0,
            sample_rate_hz: 1_000_000.0,
        }
    }

    /// Samples per chip (need not be an integer).
    pub fn samples_per_chip(&self) -> f64 {
        self.sample_rate_hz / self.symbol_rate_hz
    }

    /// Chip duration in seconds.
    pub fn chip_duration_s(&self) -> f64 {
        1.0 / self.symbol_rate_hz
    }
}

impl Default for WaveformConfig {
    fn default() -> Self {
        WaveformConfig::paper()
    }
}

/// Renders a chip stream into amplitude samples of length `n_samples`,
/// applying a start delay in seconds (e.g. a TX clock offset). Amplitudes
/// are `amplitude × chip.amplitude()` while the frame is on air and `0.0`
/// (bias only, AC-coupled away) before/after.
pub fn render(
    chips: &[Chip],
    cfg: &WaveformConfig,
    amplitude: f64,
    delay_s: f64,
    n_samples: usize,
) -> Vec<f64> {
    assert!(amplitude >= 0.0, "amplitude must be non-negative");
    // Work in the sample domain so chip boundaries land exactly on samples
    // when the rates divide evenly (the common testbed configuration).
    let spc = cfg.samples_per_chip();
    let delay_samples = delay_s * cfg.sample_rate_hz;
    (0..n_samples)
        .map(|i| {
            let pos = i as f64 - delay_samples;
            if pos < 0.0 {
                return 0.0;
            }
            let idx = (pos / spc) as usize;
            match chips.get(idx) {
                Some(c) => amplitude * c.amplitude(),
                None => 0.0,
            }
        })
        .collect()
}

/// Adds waveform `b` into `a` element-wise (superposition of several TXs'
/// light at one photodiode).
pub fn mix_into(a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "waveform lengths differ");
    for (x, y) in a.iter_mut().zip(b) {
        *x += *y;
    }
}

/// Recovers chips from a sample stream by averaging the middle half of each
/// chip window and slicing at zero (the AC-coupled stream is zero-mean).
///
/// `start_sample` marks where chip 0 begins; `n_chips` chips are recovered.
/// Returns `None` if the stream is too short.
pub fn slice_chips(
    samples: &[f64],
    cfg: &WaveformConfig,
    start_sample: usize,
    n_chips: usize,
) -> Option<Vec<Chip>> {
    let spc = cfg.samples_per_chip();
    let mut chips = Vec::with_capacity(n_chips);
    for k in 0..n_chips {
        let begin = start_sample as f64 + k as f64 * spc;
        // Use the middle half of the chip to dodge edge transients.
        let lo = (begin + 0.25 * spc).floor() as usize;
        let hi = (begin + 0.75 * spc).ceil() as usize;
        if hi > samples.len() || lo >= hi {
            return None;
        }
        let mean: f64 = samples[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        chips.push(if mean >= 0.0 { Chip::High } else { Chip::Low });
    }
    Some(chips)
}

/// Finds the start of a known chip pattern in a sample stream by normalized
/// cross-correlation, scanning candidate offsets at one-sample granularity.
/// Returns the best-matching start sample and the correlation score in
/// `[-1, 1]`, or `None` when the stream is shorter than the pattern.
pub fn correlate_pattern(
    samples: &[f64],
    cfg: &WaveformConfig,
    pattern: &[Chip],
    search_from: usize,
    search_len: usize,
) -> Option<(usize, f64)> {
    let template = render(
        pattern,
        cfg,
        1.0,
        0.0,
        (pattern.len() as f64 * cfg.samples_per_chip()).round() as usize,
    );
    if template.is_empty() {
        return None;
    }
    let t_energy: f64 = template.iter().map(|x| x * x).sum::<f64>().sqrt();
    let mut best: Option<(usize, f64)> = None;
    let last_start = search_from
        .checked_add(search_len)?
        .min(samples.len().checked_sub(template.len())?);
    for start in search_from..=last_start {
        let window = &samples[start..start + template.len()];
        let dot: f64 = window.iter().zip(&template).map(|(a, b)| a * b).sum();
        let w_energy: f64 = window.iter().map(|x| x * x).sum::<f64>().sqrt();
        if w_energy < 1e-30 {
            continue;
        }
        let score = dot / (t_energy * w_energy);
        if best.is_none_or(|(_, b)| score > b) {
            best = Some((start, score));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manchester::manchester_encode;

    fn cfg() -> WaveformConfig {
        WaveformConfig::paper()
    }

    #[test]
    fn paper_rates() {
        let c = cfg();
        assert_eq!(c.samples_per_chip(), 10.0);
        assert_eq!(c.chip_duration_s(), 1e-5);
    }

    #[test]
    fn render_maps_chips_to_levels() {
        let chips = vec![Chip::High, Chip::Low];
        let w = render(&chips, &cfg(), 2.0, 0.0, 25);
        assert!(w[..10].iter().all(|&x| x == 2.0));
        assert!(w[10..20].iter().all(|&x| x == -2.0));
        assert!(w[20..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn render_honors_delay() {
        let chips = vec![Chip::High];
        // 5 µs delay = 5 samples at 1 Msps.
        let w = render(&chips, &cfg(), 1.0, 5e-6, 20);
        assert!(w[..5].iter().all(|&x| x == 0.0));
        assert!(w[5..15].iter().all(|&x| x == 1.0));
    }

    #[test]
    fn mix_superimposes() {
        let chips = vec![Chip::High];
        let mut a = render(&chips, &cfg(), 1.0, 0.0, 12);
        let b = render(&chips, &cfg(), 0.5, 0.0, 12);
        mix_into(&mut a, &b);
        assert!((a[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn slice_recovers_clean_chips() {
        let chips = manchester_encode(&[0x5A, 0xC3]);
        let w = render(&chips, &cfg(), 0.7, 0.0, chips.len() * 10 + 5);
        let got = slice_chips(&w, &cfg(), 0, chips.len()).expect("long enough");
        assert_eq!(got, chips);
    }

    #[test]
    fn slice_tolerates_small_misalignment() {
        let chips = manchester_encode(&[0xF0, 0x0F]);
        // Start 2 samples late (20 % of a chip): mid-chip averaging holds.
        let w = render(&chips, &cfg(), 1.0, 2e-6, chips.len() * 10 + 10);
        let got = slice_chips(&w, &cfg(), 0, chips.len()).expect("long enough");
        assert_eq!(got, chips);
    }

    #[test]
    fn slice_detects_short_stream() {
        let chips = vec![Chip::High; 4];
        let w = render(&chips, &cfg(), 1.0, 0.0, 15);
        assert!(slice_chips(&w, &cfg(), 0, 4).is_none());
    }

    #[test]
    fn correlate_finds_pattern_start() {
        let pattern = manchester_encode(&[0xAA, 0x55]);
        let delay_samples = 37;
        let w = render(&pattern, &cfg(), 0.3, delay_samples as f64 * 1e-6, 600);
        let (start, score) = correlate_pattern(&w, &cfg(), &pattern, 0, 200).expect("found");
        assert_eq!(start, delay_samples);
        assert!(score > 0.99, "score {score}");
    }

    #[test]
    fn correlate_rejects_too_short_stream() {
        let pattern = vec![Chip::High; 64];
        let w = vec![0.0; 10];
        assert!(correlate_pattern(&w, &cfg(), &pattern, 0, 10).is_none());
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mix_length_mismatch_panics() {
        let mut a = vec![0.0; 3];
        mix_into(&mut a, &[0.0; 4]);
    }
}
