//! Symbol-level OOK waveform synthesis, sampling, and slicing.
//!
//! The testbed transmits chips at `ftx` symbols/s and the receiver samples
//! at `frx` samples/s (1 Msps in the paper). The waveform layer turns chip
//! streams into oversampled amplitude sequences (optionally delayed by a
//! per-TX clock offset — the mechanism that makes unsynchronized joint
//! transmission fail, Table 5) and recovers chips from noisy sample streams
//! with a mid-chip slicer.

use crate::manchester::Chip;
use crate::packed::PackedChips;
use serde::{Deserialize, Serialize};

/// Waveform timing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveformConfig {
    /// Chip (symbol) rate at the transmitter, in chips per second.
    pub symbol_rate_hz: f64,
    /// Receiver sampling rate, in samples per second.
    pub sample_rate_hz: f64,
}

impl WaveformConfig {
    /// The paper's testbed rates: 100 Ksymbols/s transmit, 1 Msps sampling.
    pub fn paper() -> Self {
        WaveformConfig {
            symbol_rate_hz: 100_000.0,
            sample_rate_hz: 1_000_000.0,
        }
    }

    /// Samples per chip (need not be an integer).
    pub fn samples_per_chip(&self) -> f64 {
        self.sample_rate_hz / self.symbol_rate_hz
    }

    /// Chip duration in seconds.
    pub fn chip_duration_s(&self) -> f64 {
        1.0 / self.symbol_rate_hz
    }
}

impl Default for WaveformConfig {
    fn default() -> Self {
        WaveformConfig::paper()
    }
}

/// Renders a chip stream into amplitude samples of length `n_samples`,
/// applying a start delay in seconds (e.g. a TX clock offset). Amplitudes
/// are `amplitude × chip.amplitude()` while the frame is on air and `0.0`
/// (bias only, AC-coupled away) before/after.
pub fn render(
    chips: &[Chip],
    cfg: &WaveformConfig,
    amplitude: f64,
    delay_s: f64,
    n_samples: usize,
) -> Vec<f64> {
    assert!(amplitude >= 0.0, "amplitude must be non-negative");
    // Work in the sample domain so chip boundaries land exactly on samples
    // when the rates divide evenly (the common testbed configuration).
    let spc = cfg.samples_per_chip();
    let delay_samples = delay_s * cfg.sample_rate_hz;
    (0..n_samples)
        .map(|i| {
            let pos = i as f64 - delay_samples;
            if pos < 0.0 {
                return 0.0;
            }
            let idx = (pos / spc) as usize;
            match chips.get(idx) {
                Some(c) => amplitude * c.amplitude(),
                None => 0.0,
            }
        })
        .collect()
}

/// Shared fixed-stride render kernel: fills `out` chip run by chip run
/// (each run is a contiguous constant-valued slice — no per-sample branch
/// or division, so the fill autovectorizes) while reproducing the scalar
/// [`render`]'s per-sample boundary decisions *exactly*: a sample `i`
/// belongs to chip `k` iff `i as f64 - delay_samples >= 0` and
/// `((i - delay) / spc) as usize == k`, the very expression `render`
/// evaluates. Run boundaries are estimated in closed form and then
/// corrected by at most a couple of samples against that predicate, so the
/// output is bit-identical to the scalar path for any delay or rate.
fn render_runs_into(
    n_chips: usize,
    chip_high: impl Fn(usize) -> bool,
    cfg: &WaveformConfig,
    amplitude: f64,
    delay_s: f64,
    n_samples: usize,
    out: &mut Vec<f64>,
) {
    assert!(amplitude >= 0.0, "amplitude must be non-negative");
    let spc = cfg.samples_per_chip();
    let d = delay_s * cfg.sample_rate_hz;
    // Every sample is written exactly once below (zero prefix, one run per
    // chip, zero suffix — the runs are contiguous), so a stale buffer of
    // the right length needs no zeroing pass first.
    if out.len() != n_samples {
        out.clear();
        out.resize(n_samples, 0.0);
    }
    // Chip index of sample `i` (valid only for i as f64 >= d): the exact
    // scalar expression, used to verify estimated run boundaries.
    let idx_at = |i: usize| ((i as f64 - d) / spc) as usize;
    // First sample with a non-negative position.
    let first = if d <= 0.0 {
        0usize
    } else {
        (d.ceil() as usize).min(n_samples)
    };
    out[..first].fill(0.0);
    // Exact-grid fast path: when the delay and samples-per-chip are both
    // integer-valued (the paper configuration and any synchronized TX),
    // the scalar predicate `((i - d) / spc) as usize` equals exact integer
    // floor division — `i - d` is an exact integer below 2^51, so the
    // quotient's rounding error is under `2^-53 · (i-d)/spc`, far smaller
    // than the `1/spc` gap to the nearest integer (and exact multiples
    // divide exactly). Chip k therefore ends at sample `d + (k+1)·spc`
    // precisely: no divisions, no boundary corrections.
    if spc.fract() == 0.0
        && spc >= 1.0
        && d.fract() == 0.0
        && d.abs() + (n_chips as f64 + 1.0) * spc < 2.0e15
    {
        let s = spc as i64;
        let d_i = d as i64;
        let mut start = first;
        for k in 0..n_chips {
            if start >= n_samples {
                break;
            }
            let end = ((d_i + (k as i64 + 1) * s).clamp(0, n_samples as i64) as usize).max(start);
            let value = if chip_high(k) { amplitude } else { -amplitude };
            out[start..end].fill(value);
            start = end;
        }
        out[start..].fill(0.0);
        return;
    }
    // Chip k ends at the first sample whose exact scalar index exceeds k
    // (`idx_at` is monotone in `i`, so that boundary is unique). The
    // boundaries are found from a closed-form estimate corrected by a
    // couple of samples against `idx_at` — and because each boundary is
    // independent of the previous one, they are resolved in blocks of 64
    // ahead of the sequential run fill, keeping the divisions pipelined
    // instead of serialized behind each fill.
    let mut bounds = [0usize; 64];
    let mut start = first;
    let mut k0 = 0usize;
    while k0 < n_chips && start < n_samples {
        let block = (n_chips - k0).min(64);
        for (j, b) in bounds[..block].iter_mut().enumerate() {
            let k = k0 + j;
            let est = d + (k as f64 + 1.0) * spc;
            let mut end = if est <= 0.0 {
                0usize
            } else {
                (est.ceil() as usize).min(n_samples)
            };
            while end > 0 && idx_at(end - 1) > k {
                end -= 1;
            }
            while end < n_samples && idx_at(end) == k {
                end += 1;
            }
            *b = end;
        }
        for (j, &b) in bounds[..block].iter().enumerate() {
            let end = b.max(start);
            let value = if chip_high(k0 + j) {
                amplitude
            } else {
                -amplitude
            };
            out[start..end].fill(value);
            start = end;
        }
        k0 += block;
    }
    out[start..].fill(0.0);
}

/// [`render`] into a caller-owned buffer (cleared and resized; no
/// allocation once `out`'s capacity covers `n_samples`), using the
/// fixed-stride run kernel. Bit-identical to [`render`].
pub fn render_into(
    chips: &[Chip],
    cfg: &WaveformConfig,
    amplitude: f64,
    delay_s: f64,
    n_samples: usize,
    out: &mut Vec<f64>,
) {
    render_runs_into(
        chips.len(),
        |k| chips[k] == Chip::High,
        cfg,
        amplitude,
        delay_s,
        n_samples,
        out,
    );
}

/// [`render_into`] over a bit-packed chip stream — the zero-alloc fast
/// path used by the frame pipeline.
pub fn render_packed_into(
    chips: &PackedChips,
    cfg: &WaveformConfig,
    amplitude: f64,
    delay_s: f64,
    n_samples: usize,
    out: &mut Vec<f64>,
) {
    let words = chips.words();
    render_runs_into(
        chips.len(),
        |k| (words[k >> 6] >> (k & 63)) & 1 == 1,
        cfg,
        amplitude,
        delay_s,
        n_samples,
        out,
    );
}

/// Adds waveform `b` into `a` element-wise (superposition of several TXs'
/// light at one photodiode).
pub fn mix_into(a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "waveform lengths differ");
    for (x, y) in a.iter_mut().zip(b) {
        *x += *y;
    }
}

/// Recovers chips from a sample stream by averaging the middle half of each
/// chip window and slicing at zero (the AC-coupled stream is zero-mean).
///
/// `start_sample` marks where chip 0 begins; `n_chips` chips are recovered.
/// Returns `None` if the stream is too short.
pub fn slice_chips(
    samples: &[f64],
    cfg: &WaveformConfig,
    start_sample: usize,
    n_chips: usize,
) -> Option<Vec<Chip>> {
    let spc = cfg.samples_per_chip();
    let mut chips = Vec::with_capacity(n_chips);
    for k in 0..n_chips {
        let begin = start_sample as f64 + k as f64 * spc;
        // Use the middle half of the chip to dodge edge transients.
        let lo = (begin + 0.25 * spc).floor() as usize;
        let hi = (begin + 0.75 * spc).ceil() as usize;
        if hi > samples.len() || lo >= hi {
            return None;
        }
        let mean: f64 = samples[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        chips.push(if mean >= 0.0 { Chip::High } else { Chip::Low });
    }
    Some(chips)
}

/// [`slice_chips`] into a reusable [`PackedChips`] buffer (cleared first;
/// zero allocations once capacity is warm). The per-chip windows, means,
/// and the zero threshold are the exact scalar expressions, so the sliced
/// chips are bit-identical to [`slice_chips`]'s. Returns `false` — the
/// scalar `None` — when the stream is too short.
pub fn slice_chips_packed_into(
    samples: &[f64],
    cfg: &WaveformConfig,
    start_sample: usize,
    n_chips: usize,
    out: &mut PackedChips,
) -> bool {
    let spc = cfg.samples_per_chip();
    out.clear();
    // Chips accumulate in a local word flushed every 64 — no per-chip
    // indexing into the word vector. The window count divides out of the
    // scalar decision (`mean >= 0` ⟺ `sum >= 0` for a positive count,
    // including the −0.0 and NaN cases), so the per-chip division goes too.
    let mut word = 0u64;
    let mut filled = 0usize;
    // Exact-grid fast path: for an integer samples-per-chip, `begin` is an
    // exact integer and `0.25·spc`/`0.75·spc` are exact (two fractional
    // bits at most), so the scalar `floor(begin + 0.25·spc)` equals
    // `begin + floor(0.25·spc)` — the per-chip window is a fixed integer
    // stride and width, no float rounding involved. The window is never
    // empty for spc ≥ 1 (`floor(0.25·spc) < ceil(0.75·spc)`), so only the
    // length check remains, at the same chip index as the scalar loop.
    if spc.fract() == 0.0
        && spc >= 1.0
        && start_sample as f64 + (n_chips as f64 + 1.0) * spc < 2.0e15
    {
        let s = spc as usize;
        let width = (0.75 * spc).ceil() as usize - (0.25 * spc).floor() as usize;
        let mut lo = start_sample + (0.25 * spc).floor() as usize;
        for _ in 0..n_chips {
            let hi = lo + width;
            if hi > samples.len() {
                out.clear();
                return false;
            }
            let sum: f64 = samples[lo..hi].iter().sum();
            if sum >= 0.0 {
                word |= 1 << filled;
            }
            filled += 1;
            if filled == 64 {
                out.push_word_aligned(word, 64);
                word = 0;
                filled = 0;
            }
            lo += s;
        }
        if filled > 0 {
            out.push_word_aligned(word, filled);
        }
        return true;
    }
    for k in 0..n_chips {
        let begin = start_sample as f64 + k as f64 * spc;
        let lo = (begin + 0.25 * spc).floor() as usize;
        let hi = (begin + 0.75 * spc).ceil() as usize;
        if hi > samples.len() || lo >= hi {
            out.clear();
            return false;
        }
        let sum: f64 = samples[lo..hi].iter().sum();
        if sum >= 0.0 {
            word |= 1 << filled;
        }
        filled += 1;
        if filled == 64 {
            out.push_word_aligned(word, 64);
            word = 0;
            filled = 0;
        }
    }
    if filled > 0 {
        out.push_word_aligned(word, filled);
    }
    true
}

/// Correlation against a pre-rendered template — the hoisted kernel under
/// [`correlate_pattern`]. The dot product and window energy accumulate in
/// one fixed-stride pass (two independent accumulators, each summing in
/// the same order as the scalar two-pass loop, so scores are
/// bit-identical); the template and its energy are computed once by the
/// caller instead of on every call.
pub fn correlate_template(
    samples: &[f64],
    template: &[f64],
    t_energy: f64,
    search_from: usize,
    search_len: usize,
) -> Option<(usize, f64)> {
    if template.is_empty() {
        return None;
    }
    let mut best: Option<(usize, f64)> = None;
    let last_start = search_from
        .checked_add(search_len)?
        .min(samples.len().checked_sub(template.len())?);
    for start in search_from..=last_start {
        let window = &samples[start..start + template.len()];
        let mut dot = 0.0f64;
        let mut energy = 0.0f64;
        for (&a, &b) in window.iter().zip(template) {
            dot += a * b;
            energy += a * a;
        }
        let w_energy = energy.sqrt();
        if w_energy < 1e-30 {
            continue;
        }
        let score = dot / (t_energy * w_energy);
        if best.is_none_or(|(_, b)| score > b) {
            best = Some((start, score));
        }
    }
    best
}

/// Energy (root of the sum of squares) of a rendered template, in the
/// summation order [`correlate_template`] expects.
pub fn template_energy(template: &[f64]) -> f64 {
    template.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Finds the start of a known chip pattern in a sample stream by normalized
/// cross-correlation, scanning candidate offsets at one-sample granularity.
/// Returns the best-matching start sample and the correlation score in
/// `[-1, 1]`, or `None` when the stream is shorter than the pattern.
pub fn correlate_pattern(
    samples: &[f64],
    cfg: &WaveformConfig,
    pattern: &[Chip],
    search_from: usize,
    search_len: usize,
) -> Option<(usize, f64)> {
    let template = render(
        pattern,
        cfg,
        1.0,
        0.0,
        (pattern.len() as f64 * cfg.samples_per_chip()).round() as usize,
    );
    correlate_template(
        samples,
        &template,
        template_energy(&template),
        search_from,
        search_len,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manchester::manchester_encode;

    fn cfg() -> WaveformConfig {
        WaveformConfig::paper()
    }

    #[test]
    fn paper_rates() {
        let c = cfg();
        assert_eq!(c.samples_per_chip(), 10.0);
        assert_eq!(c.chip_duration_s(), 1e-5);
    }

    #[test]
    fn render_maps_chips_to_levels() {
        let chips = vec![Chip::High, Chip::Low];
        let w = render(&chips, &cfg(), 2.0, 0.0, 25);
        assert!(w[..10].iter().all(|&x| x == 2.0));
        assert!(w[10..20].iter().all(|&x| x == -2.0));
        assert!(w[20..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn render_honors_delay() {
        let chips = vec![Chip::High];
        // 5 µs delay = 5 samples at 1 Msps.
        let w = render(&chips, &cfg(), 1.0, 5e-6, 20);
        assert!(w[..5].iter().all(|&x| x == 0.0));
        assert!(w[5..15].iter().all(|&x| x == 1.0));
    }

    #[test]
    fn mix_superimposes() {
        let chips = vec![Chip::High];
        let mut a = render(&chips, &cfg(), 1.0, 0.0, 12);
        let b = render(&chips, &cfg(), 0.5, 0.0, 12);
        mix_into(&mut a, &b);
        assert!((a[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn slice_recovers_clean_chips() {
        let chips = manchester_encode(&[0x5A, 0xC3]);
        let w = render(&chips, &cfg(), 0.7, 0.0, chips.len() * 10 + 5);
        let got = slice_chips(&w, &cfg(), 0, chips.len()).expect("long enough");
        assert_eq!(got, chips);
    }

    #[test]
    fn slice_tolerates_small_misalignment() {
        let chips = manchester_encode(&[0xF0, 0x0F]);
        // Start 2 samples late (20 % of a chip): mid-chip averaging holds.
        let w = render(&chips, &cfg(), 1.0, 2e-6, chips.len() * 10 + 10);
        let got = slice_chips(&w, &cfg(), 0, chips.len()).expect("long enough");
        assert_eq!(got, chips);
    }

    #[test]
    fn slice_detects_short_stream() {
        let chips = vec![Chip::High; 4];
        let w = render(&chips, &cfg(), 1.0, 0.0, 15);
        assert!(slice_chips(&w, &cfg(), 0, 4).is_none());
    }

    #[test]
    fn correlate_finds_pattern_start() {
        let pattern = manchester_encode(&[0xAA, 0x55]);
        let delay_samples = 37;
        let w = render(&pattern, &cfg(), 0.3, delay_samples as f64 * 1e-6, 600);
        let (start, score) = correlate_pattern(&w, &cfg(), &pattern, 0, 200).expect("found");
        assert_eq!(start, delay_samples);
        assert!(score > 0.99, "score {score}");
    }

    #[test]
    fn correlate_rejects_too_short_stream() {
        let pattern = vec![Chip::High; 64];
        let w = vec![0.0; 10];
        assert!(correlate_pattern(&w, &cfg(), &pattern, 0, 10).is_none());
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mix_length_mismatch_panics() {
        let mut a = vec![0.0; 3];
        mix_into(&mut a, &[0.0; 4]);
    }

    #[test]
    fn render_into_is_bit_identical_to_render() {
        let chips = manchester_encode(&[0x5A, 0xC3, 0xFF, 0x00]);
        let packed = crate::packed::PackedChips::from_chips(&chips);
        let mut buf = Vec::new();
        // Awkward delays and non-integer samples-per-chip included.
        for (sym, samp) in [(100_000.0, 1_000_000.0), (97_000.0, 1_000_000.0)] {
            let c = WaveformConfig {
                symbol_rate_hz: sym,
                sample_rate_hz: samp,
            };
            for delay in [0.0, 5e-6, 3.7e-6, -2.3e-6, 1.0e-3, 1e-7] {
                let reference = render(&chips, &c, 0.8, delay, 800);
                render_into(&chips, &c, 0.8, delay, 800, &mut buf);
                assert_eq!(buf, reference, "render_into sym={sym} delay={delay}");
                render_packed_into(&packed, &c, 0.8, delay, 800, &mut buf);
                assert_eq!(buf, reference, "render_packed_into sym={sym} delay={delay}");
            }
        }
    }

    #[test]
    fn packed_slice_matches_scalar_slice() {
        let chips = manchester_encode(&[0xF0, 0x0F, 0x37]);
        let w = render(&chips, &cfg(), 1.0, 2e-6, chips.len() * 10 + 10);
        let scalar = slice_chips(&w, &cfg(), 0, chips.len()).expect("long enough");
        let mut packed = crate::packed::PackedChips::new();
        assert!(slice_chips_packed_into(
            &w,
            &cfg(),
            0,
            chips.len(),
            &mut packed
        ));
        assert_eq!(packed.to_chips(), scalar);
        // Too-short stream: both sides refuse.
        assert!(slice_chips(&w, &cfg(), 100, chips.len()).is_none());
        assert!(!slice_chips_packed_into(
            &w,
            &cfg(),
            100,
            chips.len(),
            &mut packed
        ));
    }

    #[test]
    fn correlate_template_matches_correlate_pattern() {
        let pattern = manchester_encode(&[0xAA, 0x55]);
        let w = render(&pattern, &cfg(), 0.3, 37e-6, 600);
        let via_pattern = correlate_pattern(&w, &cfg(), &pattern, 0, 200).expect("found");
        let template = render(
            &pattern,
            &cfg(),
            1.0,
            0.0,
            (pattern.len() as f64 * cfg().samples_per_chip()).round() as usize,
        );
        let via_template =
            correlate_template(&w, &template, template_energy(&template), 0, 200).expect("found");
        assert_eq!(via_pattern, via_template);
    }
}
