//! A small in-tree radix-2 FFT.
//!
//! The OFDM extension (paper §9: "exploit advanced modulation schemes such
//! as OFDM in VLC") needs forward and inverse transforms of modest sizes
//! (64–1024 points). A textbook iterative radix-2 Cooley–Tukey
//! implementation over an in-tree complex type keeps the dependency set
//! unchanged.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn from_angle(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

/// In-place forward FFT (decimation in time). `data.len()` must be a power
/// of two.
///
/// # Panics
/// Panics if the length is not a power of two (or is zero).
pub fn fft(data: &mut [Complex]) {
    transform(data, false);
}

/// In-place inverse FFT, including the `1/N` normalization.
///
/// # Panics
/// Panics if the length is not a power of two (or is zero).
pub fn ifft(data: &mut [Complex]) {
    transform(data, true);
    let n = data.len() as f64;
    for v in data.iter_mut() {
        *v = v.scale(1.0 / n);
    }
}

fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(
        n > 0 && n.is_power_of_two(),
        "FFT length {n} is not a power of two"
    );

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * 2.0 * std::f64::consts::PI / len as f64;
        let w_len = Complex::from_angle(angle);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
                w = w * w_len;
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, tol: f64) {
        assert!(
            (a - b).abs() < tol,
            "expected {:?} ≈ {:?}",
            (a.re, a.im),
            (b.re, b.im)
        );
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        fft(&mut x);
        for v in &x {
            assert_close(*v, Complex::ONE, 1e-12);
        }
    }

    #[test]
    fn dc_transforms_to_single_bin() {
        let mut x = vec![Complex::ONE; 8];
        fft(&mut x);
        assert_close(x[0], Complex::new(8.0, 0.0), 1e-12);
        for v in &x[1..] {
            assert_close(*v, Complex::ZERO, 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_its_bin() {
        let n = 64;
        let k0 = 5;
        let mut x: Vec<Complex> = (0..n)
            .map(|i| {
                Complex::from_angle(2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64)
            })
            .collect();
        fft(&mut x);
        for (k, v) in x.iter().enumerate() {
            if k == k0 {
                assert_close(*v, Complex::new(n as f64, 0.0), 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leakage at bin {k}: {}", v.abs());
            }
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let n = 256;
        let orig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let mut x = orig.clone();
        fft(&mut x);
        ifft(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), 0.2 * i as f64 % 1.0))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sq()).sum();
        let mut spec = x.clone();
        fft(&mut spec);
        let freq_energy: f64 = spec.iter().map(|v| v.norm_sq()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy);
    }

    #[test]
    fn complex_arithmetic() {
        let i = Complex::new(0.0, 1.0);
        assert_close(i * i, Complex::new(-1.0, 0.0), 1e-15);
        assert_close(i.conj(), Complex::new(0.0, -1.0), 1e-15);
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![Complex::ZERO; 12];
        fft(&mut x);
    }
}
