//! Block interleaving for burst-error resilience.
//!
//! The paper's Reed–Solomon code corrects up to 8 byte errors *per
//! 216-byte chunk*; a burst longer than that (an occluder sweeping through
//! the beam, an impulse on the mains) kills the chunk outright. A block
//! interleaver writes the coded bytes row-wise into a `depth × width`
//! matrix and transmits column-wise, so a burst of `b` consecutive channel
//! bytes lands as at most `⌈b/depth⌉` errors in any one chunk. This is a
//! natural companion to the paper's FEC that the BBB could have afforded
//! (it is pure byte shuffling).

use serde::{Deserialize, Serialize};

/// A block interleaver of fixed depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interleaver {
    /// Number of rows — the factor by which bursts are diluted.
    pub depth: usize,
}

impl Interleaver {
    /// Creates an interleaver.
    ///
    /// # Panics
    /// Panics when `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "interleaver depth must be positive");
        Interleaver { depth }
    }

    /// Interleaves `data` (any length; a trailing partial column is kept in
    /// order). The output length always equals the input length.
    pub fn interleave(&self, data: &[u8]) -> Vec<u8> {
        self.permute(data, false)
    }

    /// Inverts [`Interleaver::interleave`].
    pub fn deinterleave(&self, data: &[u8]) -> Vec<u8> {
        self.permute(data, true)
    }

    /// Appends the interleaving of `data` to `out` — zero-alloc twin of
    /// [`Interleaver::interleave`] once `out` has capacity.
    pub fn interleave_into(&self, data: &[u8], out: &mut Vec<u8>) {
        self.permute_into(data, false, out)
    }

    /// Appends the deinterleaving of `data` to `out` — zero-alloc twin of
    /// [`Interleaver::deinterleave`].
    pub fn deinterleave_into(&self, data: &[u8], out: &mut Vec<u8>) {
        self.permute_into(data, true, out)
    }

    /// [`Interleaver::permute`] writing into a caller buffer (appended).
    fn permute_into(&self, data: &[u8], invert: bool, out: &mut Vec<u8>) {
        let d = self.depth;
        if d == 1 || data.len() < 2 * d {
            out.extend_from_slice(data);
            return;
        }
        let width = data.len() / d;
        let body = width * d;
        let base = out.len();
        out.resize(base + data.len(), 0);
        let block = &mut out[base..];
        for i in 0..body {
            let (row, col) = (i / width, i % width);
            let j = col * d + row;
            if invert {
                block[i] = data[j];
            } else {
                block[j] = data[i];
            }
        }
        block[body..].copy_from_slice(&data[body..]);
    }

    /// Row-wise write, column-wise read over a `depth × width` matrix of
    /// the longest full block; leftover bytes pass through in place.
    fn permute(&self, data: &[u8], invert: bool) -> Vec<u8> {
        let d = self.depth;
        if d == 1 || data.len() < 2 * d {
            return data.to_vec();
        }
        let width = data.len() / d;
        let body = width * d;
        let mut out = vec![0u8; data.len()];
        for i in 0..body {
            let (row, col) = (i / width, i % width);
            let j = col * d + row;
            if invert {
                out[i] = data[j];
            } else {
                out[j] = data[i];
            }
        }
        out[body..].copy_from_slice(&data[body..]);
        out
    }

    /// The idealized maximum channel-burst length (in bytes) a following
    /// Reed–Solomon decoder still corrects, assuming one burst per
    /// interleaver block and a block spanning at least `depth` chunks:
    /// each chunk then sees at most `⌈burst/depth⌉` errors, so the
    /// tolerable burst is `depth × t`. For shorter streams the joint
    /// budget `n_chunks × t` binds first (see the tests).
    pub fn burst_tolerance(&self, rs_t: usize) -> usize {
        self.depth * rs_t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rs::ReedSolomon;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_exact_block() {
        let il = Interleaver::new(4);
        let data: Vec<u8> = (0..32).collect();
        let shuffled = il.interleave(&data);
        assert_ne!(shuffled, data, "interleaver was a no-op");
        assert_eq!(il.deinterleave(&shuffled), data);
    }

    #[test]
    fn depth_one_is_identity() {
        let il = Interleaver::new(1);
        let data = vec![5u8, 4, 3, 2, 1];
        assert_eq!(il.interleave(&data), data);
    }

    #[test]
    fn a_burst_spreads_across_the_block() {
        // Depth 8 over 64 bytes: an 8-byte channel burst must hit each
        // de-interleaved row at most once.
        let il = Interleaver::new(8);
        let data: Vec<u8> = (0..64).collect();
        let mut on_air = il.interleave(&data);
        for b in on_air.iter_mut().take(8) {
            *b ^= 0xFF; // the burst
        }
        let received = il.deinterleave(&on_air);
        // Errors per 8-byte row of the original layout:
        for row in 0..8 {
            let errors = (0..8)
                .filter(|&col| received[row * 8 + col] != data[row * 8 + col])
                .count();
            assert!(errors <= 1, "row {row} took {errors} errors from one burst");
        }
    }

    #[test]
    fn interleaving_rescues_rs_from_a_long_burst() {
        // Two RS chunks (432 coded bytes) with depth-16 interleaving: a
        // 14-byte burst (1.75× one chunk's t = 8 budget) splits across the
        // chunks and still decodes. (The joint budget over two chunks is
        // 2·t = 16 errors; bursts beyond that are unrecoverable no matter
        // the interleaving.)
        let rs = ReedSolomon::paper();
        let il = Interleaver::new(16);
        let payload: Vec<u8> = (0..400).map(|i| (i % 251) as u8).collect();
        let coded = rs.encode_payload(&payload);
        let mut on_air = il.interleave(&coded);
        for b in on_air.iter_mut().skip(100).take(14) {
            *b ^= 0xA5;
        }
        let mut received = il.deinterleave(&on_air);
        let (decoded, fixed) = rs
            .decode_payload(&mut received, 400)
            .expect("interleaving dilutes the burst");
        assert_eq!(decoded, payload);
        assert_eq!(fixed, 14, "burst errors corrected: {fixed}");

        // Control: the same burst without interleaving kills a chunk.
        let mut bare = rs.encode_payload(&payload);
        for b in bare.iter_mut().skip(100).take(14) {
            *b ^= 0xA5;
        }
        assert!(rs.decode_payload(&mut bare, 400).is_err());
    }

    #[test]
    fn burst_tolerance_formula() {
        assert_eq!(Interleaver::new(16).burst_tolerance(8), 128);
        assert_eq!(Interleaver::new(1).burst_tolerance(8), 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_depth_panics() {
        Interleaver::new(0);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_any_length(
            data in proptest::collection::vec(any::<u8>(), 0..600),
            depth in 1usize..12,
        ) {
            let il = Interleaver::new(depth);
            let shuffled = il.interleave(&data);
            prop_assert_eq!(shuffled.len(), data.len());
            prop_assert_eq!(il.deinterleave(&shuffled), data);
        }

        #[test]
        fn prop_into_twins_match_allocating(
            data in proptest::collection::vec(any::<u8>(), 0..600),
            depth in 1usize..12,
            prefix in proptest::collection::vec(any::<u8>(), 0..8),
        ) {
            // The `_into` twins append after any existing prefix and must
            // reproduce the allocating implementations byte for byte.
            let il = Interleaver::new(depth);
            let mut fwd = prefix.clone();
            il.interleave_into(&data, &mut fwd);
            prop_assert_eq!(&fwd[prefix.len()..], &il.interleave(&data)[..]);
            let mut rev = prefix.clone();
            il.deinterleave_into(&data, &mut rev);
            prop_assert_eq!(&rev[prefix.len()..], &il.deinterleave(&data)[..]);
        }

        #[test]
        fn prop_interleave_is_a_permutation(
            len in 2usize..300,
            depth in 2usize..10,
        ) {
            let data: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
            let il = Interleaver::new(depth);
            let mut shuffled = il.interleave(&data);
            let mut orig = data.clone();
            shuffled.sort_unstable();
            orig.sort_unstable();
            prop_assert_eq!(shuffled, orig);
        }
    }
}
