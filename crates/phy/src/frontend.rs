//! The receiver's analog front-end as discrete-time filters (paper §7.1).
//!
//! The hardware chain is: Hamamatsu S5971 photodiode → low-noise
//! transimpedance amplifier (OPA659) → AC-coupled amplifier (OPA355) that
//! strips slow ambient light → 7th-order passive low-pass Butterworth
//! anti-aliasing filter → ADS7883 12-bit ADC at 1 Msps. We emulate each
//! stage as a discrete-time operation so the symbol-level simulations see
//! the same band-shaping and quantization as the testbed.

use serde::{Deserialize, Serialize};

/// Transimpedance stage: photocurrent (A) → voltage (V).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tia {
    /// Transimpedance gain in V/A (feedback resistor).
    pub gain_v_per_a: f64,
}

impl Tia {
    /// A typical OPA659-based design with a 100 kΩ feedback resistor.
    pub fn paper() -> Self {
        Tia { gain_v_per_a: 1e5 }
    }

    /// Applies the stage to a sample stream.
    pub fn process(&self, samples: &mut [f64]) {
        for s in samples {
            *s *= self.gain_v_per_a;
        }
    }
}

/// Single-pole AC-coupling high-pass filter: rejects DC and slow ambient
/// light while passing the Manchester chip stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcCoupler {
    alpha: f64,
}

impl AcCoupler {
    /// Builds the filter from a cutoff frequency and sample rate.
    ///
    /// # Panics
    /// Panics unless `0 < cutoff < sample_rate / 2`.
    pub fn new(cutoff_hz: f64, sample_rate_hz: f64) -> Self {
        assert!(
            cutoff_hz > 0.0 && cutoff_hz < sample_rate_hz / 2.0,
            "cutoff {cutoff_hz} Hz outside (0, fs/2)"
        );
        // RC high-pass: alpha = RC / (RC + dt).
        let rc = 1.0 / (2.0 * std::f64::consts::PI * cutoff_hz);
        let dt = 1.0 / sample_rate_hz;
        AcCoupler {
            alpha: rc / (rc + dt),
        }
    }

    /// The paper chain at 1 Msps: ~1 kHz cutoff (well below the 100 kHz
    /// chip rate, far above mains flicker and daylight drift).
    pub fn paper() -> Self {
        AcCoupler::new(1_000.0, 1_000_000.0)
    }

    /// Applies the high-pass in place: `y[n] = α·(y[n−1] + x[n] − x[n−1])`.
    pub fn process(&self, samples: &mut [f64]) {
        let mut prev_x = 0.0;
        let mut prev_y = 0.0;
        for s in samples {
            let x = *s;
            let y = self.alpha * (prev_y + x - prev_x);
            prev_x = x;
            prev_y = y;
            *s = y;
        }
    }
}

/// A second-order IIR section (Direct Form I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
}

impl Biquad {
    /// A low-pass biquad from one analog Butterworth pole pair via the
    /// bilinear transform. `q` is the pole pair's quality factor.
    fn lowpass(cutoff_hz: f64, sample_rate_hz: f64, q: f64) -> Self {
        let w0 = 2.0 * std::f64::consts::PI * cutoff_hz / sample_rate_hz;
        let cos_w0 = w0.cos();
        let sin_w0 = w0.sin();
        let alpha = sin_w0 / (2.0 * q);
        let a0 = 1.0 + alpha;
        Biquad {
            b0: (1.0 - cos_w0) / 2.0 / a0,
            b1: (1.0 - cos_w0) / a0,
            b2: (1.0 - cos_w0) / 2.0 / a0,
            a1: -2.0 * cos_w0 / a0,
            a2: (1.0 - alpha) / a0,
        }
    }

    fn process(&self, samples: &mut [f64]) {
        let (mut x1, mut x2, mut y1, mut y2) = (0.0, 0.0, 0.0, 0.0);
        for s in samples {
            let x = *s;
            let y = self.b0 * x + self.b1 * x1 + self.b2 * x2 - self.a1 * y1 - self.a2 * y2;
            x2 = x1;
            x1 = x;
            y2 = y1;
            y1 = y;
            *s = y;
        }
    }
}

/// First-order low-pass section (for the odd pole of odd-order filters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct OnePole {
    b0: f64,
    b1: f64,
    a1: f64,
}

impl OnePole {
    fn lowpass(cutoff_hz: f64, sample_rate_hz: f64) -> Self {
        // Bilinear transform of H(s) = 1/(1 + s/ωc), prewarped so the −3 dB
        // point lands exactly on `cutoff_hz` (matters when the cutoff is a
        // large fraction of Nyquist, as in the 400 kHz @ 1 Msps design).
        let wc = 2.0 * sample_rate_hz * (std::f64::consts::PI * cutoff_hz / sample_rate_hz).tan();
        let k = 2.0 * sample_rate_hz;
        let a0 = k + wc;
        OnePole {
            b0: wc / a0,
            b1: wc / a0,
            a1: (wc - k) / a0,
        }
    }

    fn process(&self, samples: &mut [f64]) {
        let (mut x1, mut y1) = (0.0, 0.0);
        for s in samples {
            let x = *s;
            let y = self.b0 * x + self.b1 * x1 - self.a1 * y1;
            x1 = x;
            y1 = y;
            *s = y;
        }
    }
}

/// The 7th-order Butterworth anti-aliasing low-pass.
///
/// A 7th-order Butterworth has poles at angles `(2k+6)/14·π`; grouped into
/// three conjugate pairs (Q = 1/(2·cos θ_k) for θ_k = 2π·k/14, k = 1..3)
/// plus one real pole.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Butterworth7 {
    sections: [Biquad; 3],
    real_pole: OnePole,
    /// The design cutoff in Hz.
    pub cutoff_hz: f64,
}

impl Butterworth7 {
    /// Designs the filter for a cutoff and sample rate.
    ///
    /// # Panics
    /// Panics unless `0 < cutoff < sample_rate / 2`.
    pub fn new(cutoff_hz: f64, sample_rate_hz: f64) -> Self {
        assert!(
            cutoff_hz > 0.0 && cutoff_hz < sample_rate_hz / 2.0,
            "cutoff {cutoff_hz} Hz outside (0, fs/2)"
        );
        // Butterworth pole-pair Q values for order 7:
        // Q_k = 1 / (2 cos(kπ/7)), k = 1, 2, 3.
        let qs = [1, 2, 3].map(|k| 1.0 / (2.0 * (k as f64 * std::f64::consts::PI / 7.0).cos()));
        Butterworth7 {
            sections: qs.map(|q| Biquad::lowpass(cutoff_hz, sample_rate_hz, q)),
            real_pole: OnePole::lowpass(cutoff_hz, sample_rate_hz),
            cutoff_hz,
        }
    }

    /// The paper's anti-aliasing design: cutoff at 400 kHz before the
    /// 1 Msps ADC (passes the 100 kHz chip stream, kills aliases).
    pub fn paper() -> Self {
        Butterworth7::new(400_000.0, 1_000_000.0)
    }

    /// Applies the filter in place.
    pub fn process(&self, samples: &mut [f64]) {
        for s in &self.sections {
            s.process(samples);
        }
        self.real_pole.process(samples);
    }
}

/// The quantizing ADC (ADS7883: 12-bit, 1 Msps in the testbed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adc {
    /// Resolution in bits.
    pub bits: u32,
    /// Full-scale input range ±`full_scale` volts.
    pub full_scale: f64,
}

impl Adc {
    /// The testbed's ADS7883 profile (12-bit).
    pub fn paper() -> Self {
        Adc {
            bits: 12,
            full_scale: 1.65,
        }
    }

    /// Quantizes samples in place (mid-tread, clipping at full scale).
    pub fn process(&self, samples: &mut [f64]) {
        let levels = (1u64 << self.bits) as f64;
        let step = 2.0 * self.full_scale / levels;
        for s in samples {
            let clipped = s.clamp(-self.full_scale, self.full_scale - step);
            *s = (clipped / step).round() * step;
        }
    }

    /// The quantization step in volts.
    pub fn lsb(&self) -> f64 {
        2.0 * self.full_scale / (1u64 << self.bits) as f64
    }
}

/// The complete receive chain applied to a photocurrent sample stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontEnd {
    /// Stage 1: transimpedance amplifier.
    pub tia: Tia,
    /// Stage 2: AC coupling.
    pub ac: AcCoupler,
    /// Stage 3: anti-aliasing low-pass.
    pub lpf: Butterworth7,
    /// Stage 4: quantizer.
    pub adc: Adc,
}

impl FrontEnd {
    /// The paper's three-stage front-end plus ADC.
    pub fn paper() -> Self {
        FrontEnd {
            tia: Tia::paper(),
            ac: AcCoupler::paper(),
            lpf: Butterworth7::paper(),
            adc: Adc::paper(),
        }
    }

    /// Runs the chain over a photocurrent stream, yielding digitized volts.
    pub fn process(&self, samples: &mut [f64]) {
        self.tia.process(samples);
        self.ac.process(samples);
        self.lpf.process(samples);
        self.adc.process(samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Measures |H(f)| of a processor by driving it with a sine.
    fn gain_at(process: impl Fn(&mut [f64]), freq_hz: f64, fs: f64) -> f64 {
        let n = 8192;
        let mut x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq_hz * i as f64 / fs).sin())
            .collect();
        process(&mut x);
        // Skip the transient, measure RMS of the tail.
        let tail = &x[n / 2..];
        let rms = (tail.iter().map(|v| v * v).sum::<f64>() / tail.len() as f64).sqrt();
        rms / (1.0 / 2f64.sqrt())
    }

    #[test]
    fn tia_scales_current_to_volts() {
        let mut s = vec![1e-6, -2e-6];
        Tia::paper().process(&mut s);
        assert!((s[0] - 0.1).abs() < 1e-12 && (s[1] + 0.2).abs() < 1e-12);
    }

    #[test]
    fn ac_coupler_kills_dc_passes_chips() {
        let fs = 1e6;
        let ac = AcCoupler::paper();
        // DC: a constant input decays to ~0.
        let mut dc = vec![1.0; 4000];
        ac.process(&mut dc);
        assert!(dc.last().unwrap().abs() < 1e-2);
        // 50 kHz (chip-rate scale) passes nearly unattenuated.
        let g = gain_at(|s| ac.process(s), 50_000.0, fs);
        assert!(g > 0.99, "gain at 50 kHz = {g}");
        // 50 Hz mains flicker is strongly attenuated.
        let g_mains = gain_at(|s| ac.process(s), 50.0, fs);
        assert!(g_mains < 0.1, "gain at 50 Hz = {g_mains}");
    }

    #[test]
    fn butterworth_is_flat_in_band_and_steep_beyond() {
        let fs = 1e6;
        let lpf = Butterworth7::paper(); // 400 kHz cutoff
        let g_100k = gain_at(|s| lpf.process(s), 100_000.0, fs);
        assert!(g_100k > 0.95, "gain at 100 kHz = {g_100k}");
        // At the cutoff, a Butterworth is −3 dB (≈ 0.707).
        let g_cut = gain_at(|s| lpf.process(s), 400_000.0, fs);
        assert!((g_cut - 0.707).abs() < 0.05, "gain at cutoff = {g_cut}");
        // Just above the cutoff a 7th-order rolls off brutally
        // (−42 dB/octave): by 480 kHz the gain is already tiny.
        let g_beyond = gain_at(|s| lpf.process(s), 480_000.0, fs);
        assert!(g_beyond < 0.15, "gain at 480 kHz = {g_beyond}");
    }

    #[test]
    fn adc_quantizes_to_lsb_grid() {
        let adc = Adc::paper();
        let lsb = adc.lsb();
        let mut s = vec![0.1234567, -0.987, 2.5, -2.5];
        adc.process(&mut s);
        for &v in &s[..2] {
            let ratio = v / lsb;
            assert!((ratio - ratio.round()).abs() < 1e-9, "{v} not on grid");
        }
        // Clipping.
        assert!(s[2] <= adc.full_scale);
        assert!(s[3] >= -adc.full_scale);
    }

    #[test]
    fn adc_error_is_bounded_by_half_lsb() {
        let adc = Adc::paper();
        let lsb = adc.lsb();
        for i in 0..100 {
            let v = -1.0 + 0.02 * i as f64;
            let mut s = vec![v];
            adc.process(&mut s);
            assert!((s[0] - v).abs() <= lsb / 2.0 + 1e-12);
        }
    }

    #[test]
    fn full_chain_preserves_chip_stream_polarity() {
        use crate::manchester::{manchester_encode, Chip};
        use crate::waveform::{render, slice_chips, WaveformConfig};
        let cfg = WaveformConfig::paper();
        let chips = manchester_encode(&[0xC5, 0x3A]);
        // Ambient light is present long before the frame: start the frame
        // 1500 samples in so the AC coupler has settled on the DC level.
        let frame_start = 1500usize;
        let n = frame_start + chips.len() * 10 + 100;
        let mut w = render(&chips, &cfg, 2e-6, frame_start as f64 * 1e-6, n);
        for s in w.iter_mut() {
            *s += 10e-6; // ambient DC photocurrent
        }
        let fe = FrontEnd::paper();
        fe.process(&mut w);
        // The AC coupling removed ambient, the chain kept chips sliceable.
        // (Group delay of the chain is ~2 samples; mid-chip averaging
        // absorbs it.)
        let got: Vec<Chip> =
            slice_chips(&w, &cfg, frame_start + 2, chips.len()).expect("long enough");
        let matches = got.iter().zip(&chips).filter(|(a, b)| a == b).count();
        assert!(
            matches >= chips.len() - 1,
            "only {matches}/{} chips",
            chips.len()
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_cutoff_panics() {
        Butterworth7::new(600_000.0, 1_000_000.0);
    }
}
