//! DCO-OFDM for intensity-modulated VLC (the paper's §9 extension:
//! "exploit advanced modulation schemes such as OFDM in VLC").
//!
//! Intensity modulation needs a real, non-negative drive signal, so VLC
//! OFDM uses *DC-biased optical* OFDM: QAM symbols occupy subcarriers
//! `1..N/2`, the upper half of the spectrum carries their conjugates
//! (Hermitian symmetry ⇒ real IFFT output), subcarrier 0 and N/2 are left
//! empty, and a DC bias shifts the waveform around the LED's illumination
//! bias with clipping at the LED's swing limits. A cyclic prefix absorbs
//! the (mild) channel dispersion.
//!
//! This module provides the modem: a PN scrambler (degenerate payloads
//! would otherwise produce impulse-like, unclippable waveforms), QAM
//! mapping, Hermitian framing, modulation to real samples with a *fixed*
//! power normalization (so the receiver needs no data-dependent scale),
//! demodulation with one-tap equalization, and BER-style accounting. It is
//! an extension beyond the paper's implemented OOK PHY — DenseVLC's
//! BBB/PRU testbed could not run it, which is exactly why the paper lists
//! it as future work enabled by better hardware.

use crate::fft::{fft, ifft, Complex};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised by the modem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OfdmError {
    /// The bit payload doesn't fill a whole number of OFDM symbols.
    PartialSymbol {
        /// Bits required per OFDM symbol.
        needed: usize,
        /// Bits supplied.
        got: usize,
    },
    /// The sample stream length doesn't match a whole number of symbols.
    BadSampleCount {
        /// Samples per OFDM symbol (FFT size + cyclic prefix).
        symbol_len: usize,
        /// Samples supplied.
        got: usize,
    },
}

impl fmt::Display for OfdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfdmError::PartialSymbol { needed, got } => {
                write!(f, "payload of {got} bits is not a multiple of {needed}")
            }
            OfdmError::BadSampleCount { symbol_len, got } => {
                write!(
                    f,
                    "{got} samples is not a multiple of the {symbol_len}-sample symbol"
                )
            }
        }
    }
}

impl std::error::Error for OfdmError {}

/// QAM constellation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QamOrder {
    /// 4-QAM (QPSK): 2 bits per subcarrier.
    Qam4,
    /// 16-QAM: 4 bits per subcarrier.
    Qam16,
}

impl QamOrder {
    /// Bits carried per subcarrier.
    pub fn bits_per_symbol(&self) -> usize {
        match self {
            QamOrder::Qam4 => 2,
            QamOrder::Qam16 => 4,
        }
    }

    /// Gray-mapped constellation point for `bits` (LSB-first), normalized
    /// to unit average energy.
    fn map(&self, bits: u8) -> Complex {
        match self {
            QamOrder::Qam4 => {
                // Gray: bit0 → I sign, bit1 → Q sign; energy 1.
                let i = if bits & 1 == 0 { 1.0 } else { -1.0 };
                let q = if bits & 2 == 0 { 1.0 } else { -1.0 };
                Complex::new(i, q).scale(1.0 / 2f64.sqrt())
            }
            QamOrder::Qam16 => {
                // Gray per axis: 00→−3, 01→−1, 11→+1, 10→+3; E_avg = 10.
                let level = |b: u8| match b {
                    0b00 => -3.0,
                    0b01 => -1.0,
                    0b11 => 1.0,
                    _ => 3.0,
                };
                let i = level(bits & 0b11);
                let q = level((bits >> 2) & 0b11);
                Complex::new(i, q).scale(1.0 / 10f64.sqrt())
            }
        }
    }

    /// Hard-decision demapping back to bits (LSB-first).
    fn demap(&self, point: Complex) -> u8 {
        match self {
            QamOrder::Qam4 => {
                let mut bits = 0u8;
                if point.re < 0.0 {
                    bits |= 1;
                }
                if point.im < 0.0 {
                    bits |= 2;
                }
                bits
            }
            QamOrder::Qam16 => {
                let axis = |v: f64| -> u8 {
                    let scaled = v * 10f64.sqrt();
                    if scaled < -2.0 {
                        0b00
                    } else if scaled < 0.0 {
                        0b01
                    } else if scaled < 2.0 {
                        0b11
                    } else {
                        0b10
                    }
                };
                axis(point.re) | (axis(point.im) << 2)
            }
        }
    }
}

/// The DCO-OFDM modem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OfdmModem {
    /// FFT size (power of two).
    pub fft_size: usize,
    /// Cyclic-prefix length in samples.
    pub cyclic_prefix: usize,
    /// Constellation.
    pub order: QamOrder,
    /// DC bias in units of the time-domain RMS (7 dB bias ≈ 2.24 is
    /// common; higher bias = less clipping, less efficiency).
    pub bias_rms: f64,
}

/// Generates the PN scrambling sequence (Fibonacci LFSR,
/// x¹⁶ + x¹⁴ + x¹³ + x¹¹ + 1, the CCITT whitening polynomial).
fn pn_sequence(len: usize) -> Vec<bool> {
    let mut state: u16 = 0xACE1;
    (0..len)
        .map(|_| {
            let bit = (state ^ (state >> 2) ^ (state >> 3) ^ (state >> 5)) & 1;
            state = (state >> 1) | (bit << 15);
            bit == 1
        })
        .collect()
}

impl OfdmModem {
    /// A VLC-appropriate default: 64 subcarriers, CP 8, 4-QAM, ~9.5 dB DC
    /// bias (clipping probability ≈ 0.3 % per sample, clipping noise well
    /// below 16-QAM's requirement).
    pub fn vlc_default() -> Self {
        OfdmModem {
            fft_size: 64,
            cyclic_prefix: 8,
            order: QamOrder::Qam4,
            bias_rms: 3.0,
        }
    }

    /// The expected time-domain RMS of a unit-energy Hermitian frame:
    /// `√(N−2) / N` (each of the `N−2` occupied bins carries unit energy
    /// and the IFFT divides by `N`).
    fn expected_rms(&self) -> f64 {
        ((self.fft_size - 2) as f64).sqrt() / self.fft_size as f64
    }

    /// Data subcarriers per OFDM symbol (`N/2 − 1`).
    pub fn data_subcarriers(&self) -> usize {
        self.fft_size / 2 - 1
    }

    /// Bits per OFDM symbol.
    pub fn bits_per_ofdm_symbol(&self) -> usize {
        self.data_subcarriers() * self.order.bits_per_symbol()
    }

    /// Samples per OFDM symbol including the cyclic prefix.
    pub fn samples_per_symbol(&self) -> usize {
        self.fft_size + self.cyclic_prefix
    }

    /// Modulates bits into real, non-negative intensity samples around 1.0
    /// (scale by the LED's bias current downstream). The payload must fill
    /// whole OFDM symbols. Bits are PN-scrambled so degenerate payloads
    /// cannot produce impulse-like frames; the waveform uses a fixed power
    /// normalization, so rare peaks clip at the LED limits (ordinary
    /// DCO-OFDM clipping noise, far below the constellation's needs at the
    /// default bias).
    pub fn modulate(&self, bits: &[bool]) -> Result<Vec<f64>, OfdmError> {
        self.validate();
        let bps = self.bits_per_ofdm_symbol();
        if bits.is_empty() || !bits.len().is_multiple_of(bps) {
            return Err(OfdmError::PartialSymbol {
                needed: bps,
                got: bits.len(),
            });
        }
        let pn = pn_sequence(bits.len());
        let scrambled: Vec<bool> = bits.iter().zip(&pn).map(|(&b, &p)| b ^ p).collect();
        let scale = 1.0 / (self.expected_rms() * self.bias_rms);
        let mut out = Vec::with_capacity(bits.len() / bps * self.samples_per_symbol());
        for chunk in scrambled.chunks(bps) {
            let mut spectrum = vec![Complex::ZERO; self.fft_size];
            for (k, sym_bits) in chunk.chunks(self.order.bits_per_symbol()).enumerate() {
                let mut b = 0u8;
                for (i, &bit) in sym_bits.iter().enumerate() {
                    if bit {
                        b |= 1 << i;
                    }
                }
                let point = self.order.map(b);
                spectrum[k + 1] = point;
                spectrum[self.fft_size - 1 - k] = point.conj(); // Hermitian
            }
            ifft(&mut spectrum);
            // Real by construction; fixed normalization, DC bias, clipping
            // at 0 and at twice the bias (the LED swing limits).
            let time: Vec<f64> = spectrum
                .iter()
                .map(|v| (1.0 + v.re * scale).clamp(0.0, 2.0))
                .collect();
            // Cyclic prefix: the tail repeated in front.
            out.extend_from_slice(&time[self.fft_size - self.cyclic_prefix..]);
            out.extend_from_slice(&time);
        }
        Ok(out)
    }

    /// Demodulates intensity samples back to bits, applying a one-tap
    /// equalizer per subcarrier taken from `channel_gain` (flat channels
    /// pass `1.0`). Returns the descrambled bits.
    pub fn demodulate(&self, samples: &[f64], channel_gain: f64) -> Result<Vec<bool>, OfdmError> {
        self.validate();
        assert!(channel_gain > 0.0, "channel gain must be positive");
        let sps = self.samples_per_symbol();
        if samples.is_empty() || !samples.len().is_multiple_of(sps) {
            return Err(OfdmError::BadSampleCount {
                symbol_len: sps,
                got: samples.len(),
            });
        }
        // Invert the modulator's fixed scale (FFT∘IFFT is the identity, so
        // the spectrum comes back already in constellation units × scale).
        let unscale = self.expected_rms() * self.bias_rms;
        let mut bits = Vec::new();
        for sym in samples.chunks(sps) {
            // Drop the CP, remove the DC bias, forward FFT.
            let mut spectrum: Vec<Complex> = sym[self.cyclic_prefix..]
                .iter()
                .map(|&s| Complex::new(s / channel_gain - 1.0, 0.0))
                .collect();
            fft(&mut spectrum);
            for bin in spectrum.iter().skip(1).take(self.data_subcarriers()) {
                let b = self.order.demap(bin.scale(unscale));
                for i in 0..self.order.bits_per_symbol() {
                    bits.push((b >> i) & 1 == 1);
                }
            }
        }
        let pn = pn_sequence(bits.len());
        Ok(bits.iter().zip(&pn).map(|(&b, &p)| b ^ p).collect())
    }

    fn validate(&self) {
        assert!(
            self.fft_size.is_power_of_two() && self.fft_size >= 8,
            "FFT size must be a power of two ≥ 8"
        );
        assert!(
            self.cyclic_prefix < self.fft_size,
            "CP must be shorter than the symbol"
        );
        assert!(self.bias_rms > 0.0, "bias must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn clean_roundtrip_qam4() {
        let modem = OfdmModem::vlc_default();
        let bits = random_bits(modem.bits_per_ofdm_symbol() * 4, 1);
        let samples = modem.modulate(&bits).expect("whole symbols");
        let decoded = modem.demodulate(&samples, 1.0).expect("aligned");
        assert_eq!(decoded, bits);
    }

    #[test]
    fn clean_roundtrip_qam16() {
        let modem = OfdmModem {
            order: QamOrder::Qam16,
            ..OfdmModem::vlc_default()
        };
        let bits = random_bits(modem.bits_per_ofdm_symbol() * 3, 2);
        let samples = modem.modulate(&bits).expect("whole symbols");
        let decoded = modem.demodulate(&samples, 1.0).expect("aligned");
        assert_eq!(decoded, bits);
    }

    #[test]
    fn waveform_is_non_negative_and_biased() {
        // Intensity modulation: the drive must stay in [0, 2·bias].
        let modem = OfdmModem::vlc_default();
        let bits = random_bits(modem.bits_per_ofdm_symbol() * 8, 3);
        let samples = modem.modulate(&bits).expect("whole symbols");
        for &s in &samples {
            assert!((0.0..=2.0).contains(&s), "sample {s} out of range");
        }
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            (mean - 1.0).abs() < 0.05,
            "mean {mean} strays from the bias"
        );
    }

    #[test]
    fn flat_attenuation_is_equalized_away() {
        let modem = OfdmModem::vlc_default();
        let bits = random_bits(modem.bits_per_ofdm_symbol() * 2, 4);
        let mut samples = modem.modulate(&bits).expect("whole symbols");
        for s in samples.iter_mut() {
            *s *= 3.7e-4; // channel attenuation
        }
        let decoded = modem.demodulate(&samples, 3.7e-4).expect("aligned");
        assert_eq!(decoded, bits);
    }

    #[test]
    fn moderate_noise_is_survivable_heavy_noise_is_not() {
        let modem = OfdmModem::vlc_default();
        let bits = random_bits(modem.bits_per_ofdm_symbol() * 16, 5);
        let clean = modem.modulate(&bits).expect("whole symbols");
        let mut rng = StdRng::seed_from_u64(6);
        let ber = |sigma: f64, rng: &mut StdRng| {
            let noisy: Vec<f64> = clean
                .iter()
                .map(|&s| {
                    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let u2: f64 = rng.gen();
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    s + sigma * z
                })
                .collect();
            let decoded = modem.demodulate(&noisy, 1.0).expect("aligned");
            decoded.iter().zip(&bits).filter(|(a, b)| a != b).count() as f64 / bits.len() as f64
        };
        let ber_low = ber(0.01, &mut rng);
        let ber_high = ber(0.5, &mut rng);
        assert!(ber_low < 0.001, "BER at low noise {ber_low}");
        assert!(ber_high > 0.05, "BER at heavy noise {ber_high}");
    }

    #[test]
    fn spectral_efficiency_beats_manchester_ook() {
        // Manchester-OOK carries 0.5 bit per chip; DCO-OFDM with 4-QAM
        // carries (N/2−1)·2 bits per (N+CP) samples ≈ 0.86 bit/sample.
        let modem = OfdmModem::vlc_default();
        let ofdm_eff = modem.bits_per_ofdm_symbol() as f64 / modem.samples_per_symbol() as f64;
        assert!(
            ofdm_eff > 0.5,
            "OFDM efficiency {ofdm_eff} not above Manchester"
        );
    }

    #[test]
    fn partial_symbol_is_rejected() {
        let modem = OfdmModem::vlc_default();
        let bits = random_bits(modem.bits_per_ofdm_symbol() + 1, 7);
        assert!(matches!(
            modem.modulate(&bits),
            Err(OfdmError::PartialSymbol { .. })
        ));
        assert!(matches!(
            modem.demodulate(&[1.0; 13], 1.0),
            Err(OfdmError::BadSampleCount { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = OfdmError::PartialSymbol {
            needed: 62,
            got: 63,
        };
        assert!(e.to_string().contains("62"));
    }
}
