//! Reed–Solomon coding over GF(2⁸).
//!
//! DenseVLC protects each 200-byte payload chunk with 16 Reed–Solomon
//! parity bytes (Table 3), i.e. a shortened RS(216, 200) block that corrects
//! up to `t = 8` byte errors. The implementation is the classic pipeline:
//! systematic LFSR encoding, syndrome computation, Berlekamp–Massey for the
//! error locator, Chien search for positions, and Forney's formula for
//! magnitudes.

use crate::gf256::Gf256;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's parity budget: 16 bytes per chunk.
pub const PAPER_PARITY: usize = 16;
/// The paper's chunk size: 200 payload bytes.
pub const PAPER_CHUNK: usize = 200;

/// Errors surfaced by the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RsError {
    /// More errors than the code can correct (or a miscorrection trap).
    TooManyErrors,
    /// The input block is shorter than the parity or longer than 255 bytes.
    BadBlockLength {
        /// Offending block length.
        len: usize,
    },
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::TooManyErrors => write!(f, "uncorrectable Reed-Solomon block"),
            RsError::BadBlockLength { len } => write!(f, "invalid RS block length {len}"),
        }
    }
}

impl std::error::Error for RsError {}

/// A Reed–Solomon encoder/decoder with `nroots` parity symbols.
///
/// ```
/// use vlc_phy::rs::ReedSolomon;
///
/// let rs = ReedSolomon::paper(); // RS(216, 200), corrects 8 byte errors
/// let mut block = rs.encode(b"hello, beamspot");
/// block[3] ^= 0xFF; // channel corruption
/// let fixed = rs.decode(&mut block).unwrap();
/// assert_eq!(fixed, 1);
/// assert_eq!(&block[..15], b"hello, beamspot");
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    gf: Gf256,
    nroots: usize,
    /// Generator polynomial, high-degree first, `nroots + 1` coefficients.
    generator: Vec<u8>,
}

impl ReedSolomon {
    /// Creates a codec with the given number of parity symbols.
    ///
    /// # Panics
    /// Panics if `nroots` is 0 or ≥ 255.
    pub fn new(nroots: usize) -> Self {
        assert!(nroots > 0 && nroots < 255, "nroots must be in 1..255");
        let gf = Gf256::new();
        // g(x) = Π_{i=0}^{nroots-1} (x − α^i); minus is plus in GF(2⁸).
        let mut generator = vec![1u8];
        for i in 0..nroots {
            generator = gf.poly_mul(&generator, &[1, gf.alpha_pow(i)]);
        }
        ReedSolomon {
            gf,
            nroots,
            generator,
        }
    }

    /// The paper's RS(216, 200) configuration (t = 8).
    pub fn paper() -> Self {
        ReedSolomon::new(PAPER_PARITY)
    }

    /// Number of parity symbols.
    pub fn parity_len(&self) -> usize {
        self.nroots
    }

    /// Maximum number of correctable byte errors per block.
    pub fn correction_capacity(&self) -> usize {
        self.nroots / 2
    }

    /// Encodes `data`, returning `data ‖ parity`.
    ///
    /// # Panics
    /// Panics if the resulting block would exceed 255 bytes.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert!(
            data.len() + self.nroots <= 255,
            "RS block would exceed 255 bytes ({} data + {} parity)",
            data.len(),
            self.nroots
        );
        let mut parity = vec![0u8; self.nroots];
        for &b in data {
            let feedback = b ^ parity[0];
            parity.rotate_left(1);
            parity[self.nroots - 1] = 0;
            if feedback != 0 {
                for (p, &g) in parity.iter_mut().zip(&self.generator[1..]) {
                    *p ^= self.gf.mul(feedback, g);
                }
            }
        }
        let mut out = data.to_vec();
        out.extend_from_slice(&parity);
        out
    }

    /// Decodes a block in place, returning the number of corrected byte
    /// errors, or an error when the block is uncorrectable.
    pub fn decode(&self, block: &mut [u8]) -> Result<usize, RsError> {
        let n = block.len();
        if n <= self.nroots || n > 255 {
            return Err(RsError::BadBlockLength { len: n });
        }
        // Syndromes S_j = r(α^j), j = 0..nroots-1.
        let synd: Vec<u8> = (0..self.nroots)
            .map(|j| self.gf.poly_eval(block, self.gf.alpha_pow(j)))
            .collect();
        if synd.iter().all(|&s| s == 0) {
            return Ok(0);
        }

        // Berlekamp–Massey: find the error locator Λ (low-degree first).
        let lambda = self.berlekamp_massey(&synd);
        let n_errors = lambda.len() - 1;
        if n_errors == 0 || n_errors > self.correction_capacity() {
            return Err(RsError::TooManyErrors);
        }

        // Chien search over the block's positions: byte index i (0 = first
        // transmitted) corresponds to the x^(n-1-i) coefficient, i.e.
        // locator root α^{-(n-1-i)}.
        let mut positions = Vec::new();
        for i in 0..n {
            let power = n - 1 - i;
            let x_inv = self.gf.alpha_pow((255 - (power % 255)) % 255);
            if self.eval_low_first(&lambda, x_inv) == 0 {
                positions.push(i);
            }
        }
        if positions.len() != n_errors {
            return Err(RsError::TooManyErrors);
        }

        // Forney: Ω(x) = [S(x)·Λ(x)] mod x^nroots (low-degree first).
        let omega = self.omega(&synd, &lambda);
        // Λ'(x): formal derivative (char 2 keeps only odd-degree terms).
        let lambda_deriv: Vec<u8> = lambda
            .iter()
            .enumerate()
            .skip(1)
            .step_by(2)
            .map(|(_, &c)| c)
            .collect::<Vec<u8>>();
        for &i in &positions {
            let power = n - 1 - i;
            let x = self.gf.alpha_pow(power % 255);
            let x_inv = self.gf.inv(x);
            let num = self.eval_low_first(&omega, x_inv);
            // Λ'(X⁻¹) from the odd coefficients: Σ Λ_{2k+1} (X⁻¹)^{2k}.
            let mut den = 0u8;
            let x_inv_sq = self.gf.mul(x_inv, x_inv);
            let mut xp = 1u8;
            for &c in &lambda_deriv {
                den ^= self.gf.mul(c, xp);
                xp = self.gf.mul(xp, x_inv_sq);
            }
            if den == 0 {
                return Err(RsError::TooManyErrors);
            }
            // fcr = 0 ⇒ magnitude = X · Ω(X⁻¹) / Λ'(X⁻¹).
            let magnitude = self.gf.mul(x, self.gf.div(num, den));
            block[i] ^= magnitude;
        }

        // Re-check the syndromes to trap miscorrections.
        let ok = (0..self.nroots).all(|j| self.gf.poly_eval(block, self.gf.alpha_pow(j)) == 0);
        if ok {
            Ok(positions.len())
        } else {
            Err(RsError::TooManyErrors)
        }
    }

    /// Berlekamp–Massey over the syndromes; returns Λ low-degree first.
    fn berlekamp_massey(&self, synd: &[u8]) -> Vec<u8> {
        let mut lambda = vec![1u8];
        let mut prev = vec![1u8];
        let mut l = 0usize;
        let mut m = 1usize;
        let mut b = 1u8;
        for n in 0..synd.len() {
            // Discrepancy δ = S_n + Σ_{i=1}^{L} Λ_i S_{n−i}.
            let mut delta = synd[n];
            for i in 1..=l.min(lambda.len() - 1) {
                delta ^= self.gf.mul(lambda[i], synd[n - i]);
            }
            if delta == 0 {
                m += 1;
            } else if 2 * l <= n {
                let t = lambda.clone();
                let coeff = self.gf.div(delta, b);
                lambda = self.add_shifted(&lambda, &prev, coeff, m);
                prev = t;
                l = n + 1 - l;
                b = delta;
                m = 1;
            } else {
                let coeff = self.gf.div(delta, b);
                lambda = self.add_shifted(&lambda, &prev, coeff, m);
                m += 1;
            }
        }
        lambda.truncate(l + 1);
        lambda
    }

    /// `a(x) + coeff · x^shift · b(x)` (all low-degree first).
    fn add_shifted(&self, a: &[u8], b: &[u8], coeff: u8, shift: usize) -> Vec<u8> {
        let mut out = a.to_vec();
        if out.len() < b.len() + shift {
            out.resize(b.len() + shift, 0);
        }
        for (i, &bi) in b.iter().enumerate() {
            out[i + shift] ^= self.gf.mul(coeff, bi);
        }
        out
    }

    /// Ω(x) = S(x)·Λ(x) mod x^nroots, low-degree first.
    fn omega(&self, synd: &[u8], lambda: &[u8]) -> Vec<u8> {
        let mut omega = vec![0u8; self.nroots];
        for (i, &s) in synd.iter().enumerate() {
            for (j, &lj) in lambda.iter().enumerate() {
                if i + j < self.nroots {
                    omega[i + j] ^= self.gf.mul(s, lj);
                }
            }
        }
        omega
    }

    /// Evaluates a low-degree-first polynomial at `x`.
    fn eval_low_first(&self, poly: &[u8], x: u8) -> u8 {
        let mut acc = 0u8;
        for &c in poly.iter().rev() {
            acc = self.gf.mul(acc, x) ^ c;
        }
        acc
    }

    /// Encodes a payload of arbitrary length as consecutive ≤ 200-byte
    /// chunks, each followed by its 16 parity bytes — the paper's
    /// `⌈x/200⌉ × 16 B` overhead rule.
    pub fn encode_payload(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(payload.len() + self.nroots);
        if payload.is_empty() {
            return out;
        }
        for chunk in payload.chunks(PAPER_CHUNK) {
            out.extend_from_slice(&self.encode(chunk));
        }
        out
    }

    /// Decodes a payload produced by [`ReedSolomon::encode_payload`],
    /// given the original payload length. Returns the payload and the total
    /// number of corrected byte errors.
    pub fn decode_payload(
        &self,
        coded: &mut [u8],
        payload_len: usize,
    ) -> Result<(Vec<u8>, usize), RsError> {
        let n_chunks = payload_len.div_ceil(PAPER_CHUNK);
        let expected = payload_len + n_chunks * self.nroots;
        if coded.len() != expected {
            return Err(RsError::BadBlockLength { len: coded.len() });
        }
        let mut payload = Vec::with_capacity(payload_len);
        let mut corrected = 0;
        let mut offset = 0;
        let mut remaining = payload_len;
        for _ in 0..n_chunks {
            let chunk_len = remaining.min(PAPER_CHUNK);
            let block_len = chunk_len + self.nroots;
            let block = &mut coded[offset..offset + block_len];
            corrected += self.decode(block)?;
            payload.extend_from_slice(&block[..chunk_len]);
            offset += block_len;
            remaining -= chunk_len;
        }
        Ok((payload, corrected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn encode_is_systematic() {
        let rs = ReedSolomon::paper();
        let data: Vec<u8> = (0..200u8).collect();
        let coded = rs.encode(&data);
        assert_eq!(coded.len(), 216);
        assert_eq!(&coded[..200], &data[..]);
    }

    #[test]
    fn clean_block_decodes_with_zero_corrections() {
        let rs = ReedSolomon::paper();
        let data: Vec<u8> = (0..100u8).collect();
        let mut coded = rs.encode(&data);
        assert_eq!(rs.decode(&mut coded), Ok(0));
        assert_eq!(&coded[..100], &data[..]);
    }

    #[test]
    fn corrects_up_to_t_errors() {
        let rs = ReedSolomon::paper();
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<u8> = (0..200).map(|_| rng.gen()).collect();
        let clean = rs.encode(&data);
        for n_err in 1..=8usize {
            let mut coded = clean.clone();
            // Corrupt n_err distinct positions.
            let mut positions = std::collections::HashSet::new();
            while positions.len() < n_err {
                positions.insert(rng.gen_range(0..coded.len()));
            }
            for &p in &positions {
                coded[p] ^= rng.gen_range(1..=255u8);
            }
            let fixed = rs
                .decode(&mut coded)
                .unwrap_or_else(|e| panic!("decode failed at {n_err} errors: {e}"));
            assert_eq!(fixed, n_err);
            assert_eq!(&coded[..200], &data[..]);
        }
    }

    #[test]
    fn detects_more_than_t_errors() {
        // 9+ errors must not silently decode to the wrong data. (A tiny
        // residual miscorrection probability is inherent to RS; these seeds
        // are deterministic and known-good.)
        let rs = ReedSolomon::paper();
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<u8> = (0..200).map(|_| rng.gen()).collect();
        for trial in 0..20 {
            let mut coded = rs.encode(&data);
            let mut positions = std::collections::HashSet::new();
            while positions.len() < 12 {
                positions.insert(rng.gen_range(0..coded.len()));
            }
            for &p in &positions {
                coded[p] ^= rng.gen_range(1..=255u8);
            }
            match rs.decode(&mut coded) {
                Err(RsError::TooManyErrors) => {}
                Ok(_) => {
                    assert_eq!(&coded[..200], &data[..], "miscorrection on trial {trial}");
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn shortened_blocks_work() {
        let rs = ReedSolomon::paper();
        for len in [1usize, 10, 50, 199] {
            let data: Vec<u8> = (0..len).map(|i| (i * 13 % 251) as u8).collect();
            let mut coded = rs.encode(&data);
            coded[len / 2] ^= 0xa5;
            assert_eq!(rs.decode(&mut coded), Ok(1), "len {len}");
            assert_eq!(&coded[..len], &data[..]);
        }
    }

    #[test]
    fn payload_roundtrip_multi_chunk() {
        let rs = ReedSolomon::paper();
        let payload: Vec<u8> = (0..517).map(|i| (i % 256) as u8).collect();
        let mut coded = rs.encode_payload(&payload);
        // 517 bytes → 3 chunks → 48 parity bytes.
        assert_eq!(coded.len(), 517 + 48);
        // One error per chunk.
        coded[10] ^= 1;
        coded[250] ^= 2;
        coded[500] ^= 3;
        let (decoded, fixed) = rs.decode_payload(&mut coded, 517).expect("decodable");
        assert_eq!(decoded, payload);
        assert_eq!(fixed, 3);
    }

    #[test]
    fn empty_payload_is_identity() {
        let rs = ReedSolomon::paper();
        assert!(rs.encode_payload(&[]).is_empty());
        let (decoded, fixed) = rs.decode_payload(&mut [], 0).expect("empty ok");
        assert!(decoded.is_empty());
        assert_eq!(fixed, 0);
    }

    #[test]
    fn bad_lengths_are_rejected() {
        let rs = ReedSolomon::paper();
        let mut short = vec![0u8; 16];
        assert_eq!(
            rs.decode(&mut short),
            Err(RsError::BadBlockLength { len: 16 })
        );
        let mut wrong = vec![0u8; 100];
        assert!(matches!(
            rs.decode_payload(&mut wrong, 200),
            Err(RsError::BadBlockLength { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "255")]
    fn oversized_block_panics_on_encode() {
        ReedSolomon::paper().encode(&vec![0u8; 240]);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_with_up_to_t_errors(
            data in proptest::collection::vec(any::<u8>(), 1..=200),
            err_seed in any::<u64>(),
            n_err in 0usize..=8,
        ) {
            let rs = ReedSolomon::paper();
            let clean = rs.encode(&data);
            let mut coded = clean.clone();
            let mut rng = StdRng::seed_from_u64(err_seed);
            let mut positions = std::collections::HashSet::new();
            let n_err = n_err.min(coded.len());
            while positions.len() < n_err {
                positions.insert(rng.gen_range(0..coded.len()));
            }
            for &p in &positions {
                coded[p] ^= rng.gen_range(1..=255u8);
            }
            let fixed = rs.decode(&mut coded).expect("within capacity");
            prop_assert_eq!(fixed, n_err);
            prop_assert_eq!(&coded[..data.len()], &data[..]);
        }

        #[test]
        fn prop_parity_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..=200)) {
            let rs = ReedSolomon::paper();
            if data.is_empty() {
                return Ok(());
            }
            prop_assert_eq!(rs.encode(&data), rs.encode(&data));
        }
    }
}
