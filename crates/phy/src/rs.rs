//! Reed–Solomon coding over GF(2⁸).
//!
//! DenseVLC protects each 200-byte payload chunk with 16 Reed–Solomon
//! parity bytes (Table 3), i.e. a shortened RS(216, 200) block that corrects
//! up to `t = 8` byte errors. The implementation is the classic pipeline:
//! systematic LFSR encoding, syndrome computation, Berlekamp–Massey for the
//! error locator, Chien search for positions, and Forney's formula for
//! magnitudes.

use crate::gf256::Gf256;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's parity budget: 16 bytes per chunk.
pub const PAPER_PARITY: usize = RsParams::PAPER.nroots;
/// The paper's chunk size: 200 payload bytes.
pub const PAPER_CHUNK: usize = RsParams::PAPER.chunk;

/// A Reed–Solomon parameter set: the single definition that every paper
/// constructor ([`ReedSolomon::paper`], [`RsCodec::paper`]) builds from,
/// so the Table 3 constants cannot drift apart (pinned by
/// `paper_constructors_share_one_definition`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RsParams {
    /// Parity symbols appended to each chunk.
    pub nroots: usize,
    /// Payload bytes per chunk.
    pub chunk: usize,
}

impl RsParams {
    /// The paper's RS(216, 200): 16 parity bytes per 200-byte chunk, t = 8.
    pub const PAPER: RsParams = RsParams {
        nroots: 16,
        chunk: 200,
    };

    /// Coded length of the chunked-payload layout: every ≤ `chunk`-byte
    /// piece carries `nroots` parity bytes.
    pub const fn coded_len(&self, payload_len: usize) -> usize {
        payload_len + payload_len.div_ceil(self.chunk) * self.nroots
    }
}

/// Errors surfaced by the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RsError {
    /// More errors than the code can correct (or a miscorrection trap).
    TooManyErrors,
    /// The input block is shorter than the parity or longer than 255 bytes.
    BadBlockLength {
        /// Offending block length.
        len: usize,
    },
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::TooManyErrors => write!(f, "uncorrectable Reed-Solomon block"),
            RsError::BadBlockLength { len } => write!(f, "invalid RS block length {len}"),
        }
    }
}

impl std::error::Error for RsError {}

/// A Reed–Solomon encoder/decoder with `nroots` parity symbols.
///
/// ```
/// use vlc_phy::rs::ReedSolomon;
///
/// let rs = ReedSolomon::paper(); // RS(216, 200), corrects 8 byte errors
/// let mut block = rs.encode(b"hello, beamspot");
/// block[3] ^= 0xFF; // channel corruption
/// let fixed = rs.decode(&mut block).unwrap();
/// assert_eq!(fixed, 1);
/// assert_eq!(&block[..15], b"hello, beamspot");
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    gf: Gf256,
    nroots: usize,
    /// Generator polynomial, high-degree first, `nroots + 1` coefficients.
    generator: Vec<u8>,
}

impl ReedSolomon {
    /// Creates a codec with the given number of parity symbols.
    ///
    /// # Panics
    /// Panics if `nroots` is 0 or ≥ 255.
    pub fn new(nroots: usize) -> Self {
        assert!(nroots > 0 && nroots < 255, "nroots must be in 1..255");
        let gf = Gf256::new();
        // g(x) = Π_{i=0}^{nroots-1} (x − α^i); minus is plus in GF(2⁸).
        let mut generator = vec![1u8];
        for i in 0..nroots {
            generator = gf.poly_mul(&generator, &[1, gf.alpha_pow(i)]);
        }
        ReedSolomon {
            gf,
            nroots,
            generator,
        }
    }

    /// The paper's RS(216, 200) configuration (t = 8), built from
    /// [`RsParams::PAPER`].
    pub fn paper() -> Self {
        ReedSolomon::new(RsParams::PAPER.nroots)
    }

    /// Number of parity symbols.
    pub fn parity_len(&self) -> usize {
        self.nroots
    }

    /// Maximum number of correctable byte errors per block.
    pub fn correction_capacity(&self) -> usize {
        self.nroots / 2
    }

    /// Encodes `data`, returning `data ‖ parity`.
    ///
    /// # Panics
    /// Panics if the resulting block would exceed 255 bytes.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert!(
            data.len() + self.nroots <= 255,
            "RS block would exceed 255 bytes ({} data + {} parity)",
            data.len(),
            self.nroots
        );
        let mut parity = vec![0u8; self.nroots];
        for &b in data {
            let feedback = b ^ parity[0];
            parity.rotate_left(1);
            parity[self.nroots - 1] = 0;
            if feedback != 0 {
                for (p, &g) in parity.iter_mut().zip(&self.generator[1..]) {
                    *p ^= self.gf.mul(feedback, g);
                }
            }
        }
        let mut out = data.to_vec();
        out.extend_from_slice(&parity);
        out
    }

    /// Decodes a block in place, returning the number of corrected byte
    /// errors, or an error when the block is uncorrectable.
    pub fn decode(&self, block: &mut [u8]) -> Result<usize, RsError> {
        let n = block.len();
        if n <= self.nroots || n > 255 {
            return Err(RsError::BadBlockLength { len: n });
        }
        // Syndromes S_j = r(α^j), j = 0..nroots-1.
        let synd: Vec<u8> = (0..self.nroots)
            .map(|j| self.gf.poly_eval(block, self.gf.alpha_pow(j)))
            .collect();
        if synd.iter().all(|&s| s == 0) {
            return Ok(0);
        }

        // Berlekamp–Massey: find the error locator Λ (low-degree first).
        let lambda = self.berlekamp_massey(&synd);
        let n_errors = lambda.len() - 1;
        if n_errors == 0 || n_errors > self.correction_capacity() {
            return Err(RsError::TooManyErrors);
        }

        // Chien search over the block's positions: byte index i (0 = first
        // transmitted) corresponds to the x^(n-1-i) coefficient, i.e.
        // locator root α^{-(n-1-i)}.
        let mut positions = Vec::new();
        for i in 0..n {
            let power = n - 1 - i;
            let x_inv = self.gf.alpha_pow((255 - (power % 255)) % 255);
            if self.eval_low_first(&lambda, x_inv) == 0 {
                positions.push(i);
            }
        }
        if positions.len() != n_errors {
            return Err(RsError::TooManyErrors);
        }

        // Forney: Ω(x) = [S(x)·Λ(x)] mod x^nroots (low-degree first).
        let omega = self.omega(&synd, &lambda);
        // Λ'(x): formal derivative (char 2 keeps only odd-degree terms).
        let lambda_deriv: Vec<u8> = lambda
            .iter()
            .enumerate()
            .skip(1)
            .step_by(2)
            .map(|(_, &c)| c)
            .collect::<Vec<u8>>();
        for &i in &positions {
            let power = n - 1 - i;
            let x = self.gf.alpha_pow(power % 255);
            let x_inv = self.gf.inv(x);
            let num = self.eval_low_first(&omega, x_inv);
            // Λ'(X⁻¹) from the odd coefficients: Σ Λ_{2k+1} (X⁻¹)^{2k}.
            let mut den = 0u8;
            let x_inv_sq = self.gf.mul(x_inv, x_inv);
            let mut xp = 1u8;
            for &c in &lambda_deriv {
                den ^= self.gf.mul(c, xp);
                xp = self.gf.mul(xp, x_inv_sq);
            }
            if den == 0 {
                return Err(RsError::TooManyErrors);
            }
            // fcr = 0 ⇒ magnitude = X · Ω(X⁻¹) / Λ'(X⁻¹).
            let magnitude = self.gf.mul(x, self.gf.div(num, den));
            block[i] ^= magnitude;
        }

        // Re-check the syndromes to trap miscorrections.
        let ok = (0..self.nroots).all(|j| self.gf.poly_eval(block, self.gf.alpha_pow(j)) == 0);
        if ok {
            Ok(positions.len())
        } else {
            Err(RsError::TooManyErrors)
        }
    }

    /// Berlekamp–Massey over the syndromes; returns Λ low-degree first.
    fn berlekamp_massey(&self, synd: &[u8]) -> Vec<u8> {
        // Three buffers for the whole run: the update is in place
        // (`add_shifted_in_place`) and the Λ backup swaps through `tmp`
        // instead of allocating a fresh `Vec` every iteration.
        let mut lambda = Vec::with_capacity(synd.len() + 2);
        let mut prev = Vec::with_capacity(synd.len() + 2);
        let mut tmp = Vec::with_capacity(synd.len() + 2);
        lambda.push(1u8);
        prev.push(1u8);
        let mut l = 0usize;
        let mut m = 1usize;
        let mut b = 1u8;
        for n in 0..synd.len() {
            // Discrepancy δ = S_n + Σ_{i=1}^{L} Λ_i S_{n−i}.
            let mut delta = synd[n];
            for i in 1..=l.min(lambda.len() - 1) {
                delta ^= self.gf.mul(lambda[i], synd[n - i]);
            }
            if delta == 0 {
                m += 1;
            } else if 2 * l <= n {
                tmp.clear();
                tmp.extend_from_slice(&lambda);
                let coeff = self.gf.div(delta, b);
                add_shifted_in_place(&self.gf, &mut lambda, &prev, coeff, m);
                std::mem::swap(&mut prev, &mut tmp);
                l = n + 1 - l;
                b = delta;
                m = 1;
            } else {
                let coeff = self.gf.div(delta, b);
                add_shifted_in_place(&self.gf, &mut lambda, &prev, coeff, m);
                m += 1;
            }
        }
        lambda.truncate(l + 1);
        lambda
    }

    /// Ω(x) = S(x)·Λ(x) mod x^nroots, low-degree first.
    fn omega(&self, synd: &[u8], lambda: &[u8]) -> Vec<u8> {
        let mut omega = vec![0u8; self.nroots];
        for (i, &s) in synd.iter().enumerate() {
            for (j, &lj) in lambda.iter().enumerate() {
                if i + j < self.nroots {
                    omega[i + j] ^= self.gf.mul(s, lj);
                }
            }
        }
        omega
    }

    /// Evaluates a low-degree-first polynomial at `x`.
    fn eval_low_first(&self, poly: &[u8], x: u8) -> u8 {
        let mut acc = 0u8;
        for &c in poly.iter().rev() {
            acc = self.gf.mul(acc, x) ^ c;
        }
        acc
    }

    /// Encodes a payload of arbitrary length as consecutive ≤ 200-byte
    /// chunks, each followed by its 16 parity bytes — the paper's
    /// `⌈x/200⌉ × 16 B` overhead rule.
    pub fn encode_payload(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(payload.len() + self.nroots);
        if payload.is_empty() {
            return out;
        }
        for chunk in payload.chunks(PAPER_CHUNK) {
            out.extend_from_slice(&self.encode(chunk));
        }
        out
    }

    /// Decodes a payload produced by [`ReedSolomon::encode_payload`],
    /// given the original payload length. Returns the payload and the total
    /// number of corrected byte errors.
    pub fn decode_payload(
        &self,
        coded: &mut [u8],
        payload_len: usize,
    ) -> Result<(Vec<u8>, usize), RsError> {
        let n_chunks = payload_len.div_ceil(PAPER_CHUNK);
        let expected = payload_len + n_chunks * self.nroots;
        if coded.len() != expected {
            return Err(RsError::BadBlockLength { len: coded.len() });
        }
        let mut payload = Vec::with_capacity(payload_len);
        let mut corrected = 0;
        let mut offset = 0;
        let mut remaining = payload_len;
        for _ in 0..n_chunks {
            let chunk_len = remaining.min(PAPER_CHUNK);
            let block_len = chunk_len + self.nroots;
            let block = &mut coded[offset..offset + block_len];
            corrected += self.decode(block)?;
            payload.extend_from_slice(&block[..chunk_len]);
            offset += block_len;
            remaining -= chunk_len;
        }
        Ok((payload, corrected))
    }
}

/// `a(x) += coeff · x^shift · b(x)` (all low-degree first), in place.
///
/// The only growth is `resize` up to `b.len() + shift`, which never
/// reallocates once the buffer's capacity covers the codec's locator
/// degree bound — the fix for the per-iteration `Vec` the old
/// `add_shifted` allocated inside every Berlekamp–Massey step.
fn add_shifted_in_place(gf: &Gf256, a: &mut Vec<u8>, b: &[u8], coeff: u8, shift: usize) {
    if a.len() < b.len() + shift {
        a.resize(b.len() + shift, 0);
    }
    for (i, &bi) in b.iter().enumerate() {
        a[i + shift] ^= gf.mul(coeff, bi);
    }
}

/// A reusable Reed–Solomon workspace: the same code as [`ReedSolomon`]
/// (outputs are byte-identical — pinned by proptests in
/// `crates/phy/tests/packed_identity.rs`) with every per-block allocation
/// hoisted into the struct, plus two precomputed tables:
///
/// * a 256 × `nroots` feedback table (`feedback → feedback · g_i`) that
///   turns the systematic LFSR encode into branch-free row XORs, and
/// * the generator-root/Chien tables `α^p` and `α^{-p}` for `p < 255`,
///   so syndrome roots and locator arguments are plain lookups.
///
/// After warm-up (first block of each length), `encode_into` /
/// `decode_in_place` perform zero heap allocations — demonstrated by the
/// counting-allocator test in `crates/phy/tests/zero_alloc.rs`.
#[derive(Debug, Clone)]
pub struct RsCodec {
    rs: ReedSolomon,
    /// Row `f` holds `f · generator[1..]` (`nroots` bytes per row).
    feedback_tab: Vec<u8>,
    /// `α^p` for `p < 255` (Forney's X).
    root: [u8; 255],
    /// `α^{(255 - p) mod 255}` for `p < 255` (Chien's X⁻¹).
    inv_root: [u8; 255],
    // Scratch (capacities established in `new`, reused per block).
    parity: Vec<u8>,
    synd: Vec<u8>,
    lambda: Vec<u8>,
    prev: Vec<u8>,
    tmp: Vec<u8>,
    omega: Vec<u8>,
    lambda_deriv: Vec<u8>,
    positions: Vec<usize>,
}

impl RsCodec {
    /// Creates a workspace with `nroots` parity symbols.
    ///
    /// # Panics
    /// Panics if `nroots` is 0 or ≥ 255.
    pub fn new(nroots: usize) -> Self {
        let rs = ReedSolomon::new(nroots);
        let mut feedback_tab = vec![0u8; 256 * nroots];
        for f in 0..256usize {
            for (i, &g) in rs.generator[1..].iter().enumerate() {
                feedback_tab[f * nroots + i] = rs.gf.mul(f as u8, g);
            }
        }
        let mut root = [0u8; 255];
        let mut inv_root = [0u8; 255];
        for p in 0..255usize {
            root[p] = rs.gf.alpha_pow(p);
            inv_root[p] = rs.gf.alpha_pow((255 - p) % 255);
        }
        // Locator/scratch degree bound: Berlekamp–Massey can transiently
        // grow Λ to `b.len() + shift` ≤ nroots + 1; syndromes and Ω hold
        // nroots entries; Chien can flag at most 255 candidate positions.
        let poly_cap = 2 * nroots + 4;
        RsCodec {
            rs,
            feedback_tab,
            root,
            inv_root,
            parity: Vec::with_capacity(nroots),
            synd: Vec::with_capacity(nroots),
            lambda: Vec::with_capacity(poly_cap),
            prev: Vec::with_capacity(poly_cap),
            tmp: Vec::with_capacity(poly_cap),
            omega: Vec::with_capacity(nroots),
            lambda_deriv: Vec::with_capacity(nroots),
            positions: Vec::with_capacity(255),
        }
    }

    /// The paper's RS(216, 200) workspace (t = 8), built from
    /// [`RsParams::PAPER`] — the same definition as [`ReedSolomon::paper`].
    pub fn paper() -> Self {
        RsCodec::new(RsParams::PAPER.nroots)
    }

    /// Number of parity symbols.
    pub fn parity_len(&self) -> usize {
        self.rs.nroots
    }

    /// Maximum number of correctable byte errors per block.
    pub fn correction_capacity(&self) -> usize {
        self.rs.correction_capacity()
    }

    /// The scalar codec this workspace mirrors.
    pub fn reference(&self) -> &ReedSolomon {
        &self.rs
    }

    /// Appends `data ‖ parity` to `out` — allocation-free counterpart of
    /// [`ReedSolomon::encode`], with the LFSR feedback multiplications
    /// replaced by one row XOR from the precomputed feedback table.
    ///
    /// # Panics
    /// Panics if the resulting block would exceed 255 bytes.
    pub fn encode_into(&mut self, data: &[u8], out: &mut Vec<u8>) {
        let nroots = self.rs.nroots;
        assert!(
            data.len() + nroots <= 255,
            "RS block would exceed 255 bytes ({} data + {} parity)",
            data.len(),
            nroots
        );
        self.parity.clear();
        self.parity.resize(nroots, 0);
        for &b in data {
            let feedback = (b ^ self.parity[0]) as usize;
            let row = &self.feedback_tab[feedback * nroots..(feedback + 1) * nroots];
            // parity <<= 1 byte; parity[i] ^= feedback · g_{i+1}, fused.
            for (i, &r) in row.iter().enumerate().take(nroots - 1) {
                self.parity[i] = self.parity[i + 1] ^ r;
            }
            self.parity[nroots - 1] = row[nroots - 1];
        }
        out.extend_from_slice(data);
        out.extend_from_slice(&self.parity);
    }

    /// Appends the chunked encoding of `payload` (the
    /// [`ReedSolomon::encode_payload`] layout) to `out`.
    pub fn encode_payload_into(&mut self, payload: &[u8], out: &mut Vec<u8>) {
        for chunk in payload.chunks(PAPER_CHUNK) {
            self.encode_into(chunk, out);
        }
    }

    /// Decodes a block in place — allocation-free counterpart of
    /// [`ReedSolomon::decode`], byte-identical in corrections and errors.
    pub fn decode_in_place(&mut self, block: &mut [u8]) -> Result<usize, RsError> {
        let nroots = self.rs.nroots;
        let n = block.len();
        if n <= nroots || n > 255 {
            return Err(RsError::BadBlockLength { len: n });
        }
        // Syndromes S_j = r(α^j), j = 0..nroots-1.
        self.synd.clear();
        for j in 0..nroots {
            self.synd.push(self.rs.gf.poly_eval(block, self.root[j]));
        }
        if self.synd.iter().all(|&s| s == 0) {
            return Ok(0);
        }

        // Berlekamp–Massey, in place over the struct scratch.
        self.berlekamp_massey();
        let gf = &self.rs.gf;
        let n_errors = self.lambda.len() - 1;
        if n_errors == 0 || n_errors > self.rs.correction_capacity() {
            return Err(RsError::TooManyErrors);
        }

        // Chien search over the block's positions.
        self.positions.clear();
        for i in 0..n {
            let power = n - 1 - i;
            let x_inv = self.inv_root[power % 255];
            if eval_low_first(gf, &self.lambda, x_inv) == 0 {
                self.positions.push(i);
            }
        }
        if self.positions.len() != n_errors {
            return Err(RsError::TooManyErrors);
        }

        // Forney: Ω(x) = [S(x)·Λ(x)] mod x^nroots (low-degree first).
        self.omega.clear();
        self.omega.resize(nroots, 0);
        for (i, &s) in self.synd.iter().enumerate() {
            for (j, &lj) in self.lambda.iter().enumerate() {
                if i + j < nroots {
                    self.omega[i + j] ^= gf.mul(s, lj);
                }
            }
        }
        // Λ'(x): formal derivative (char 2 keeps only odd-degree terms).
        self.lambda_deriv.clear();
        self.lambda_deriv
            .extend(self.lambda.iter().skip(1).step_by(2));
        for &i in &self.positions {
            let power = n - 1 - i;
            let x = self.root[power % 255];
            let x_inv = gf.inv(x);
            let num = eval_low_first(gf, &self.omega, x_inv);
            let mut den = 0u8;
            let x_inv_sq = gf.mul(x_inv, x_inv);
            let mut xp = 1u8;
            for &c in &self.lambda_deriv {
                den ^= gf.mul(c, xp);
                xp = gf.mul(xp, x_inv_sq);
            }
            if den == 0 {
                return Err(RsError::TooManyErrors);
            }
            let magnitude = gf.mul(x, gf.div(num, den));
            block[i] ^= magnitude;
        }

        // Re-check the syndromes to trap miscorrections.
        let ok = (0..nroots).all(|j| gf.poly_eval(block, self.root[j]) == 0);
        if ok {
            Ok(self.positions.len())
        } else {
            Err(RsError::TooManyErrors)
        }
    }

    /// Corrects every chunk of an [`RsCodec::encode_payload_into`] stream
    /// in place, returning the total corrected byte count. The payload
    /// stays interleaved with its parity in `coded`; pull it out with
    /// [`RsCodec::extract_payload_into`].
    pub fn decode_payload_in_place(
        &mut self,
        coded: &mut [u8],
        payload_len: usize,
    ) -> Result<usize, RsError> {
        let n_chunks = payload_len.div_ceil(PAPER_CHUNK);
        let expected = payload_len + n_chunks * self.rs.nroots;
        if coded.len() != expected {
            return Err(RsError::BadBlockLength { len: coded.len() });
        }
        let mut corrected = 0;
        let mut offset = 0;
        let mut remaining = payload_len;
        for _ in 0..n_chunks {
            let chunk_len = remaining.min(PAPER_CHUNK);
            let block_len = chunk_len + self.rs.nroots;
            corrected += self.decode_in_place(&mut coded[offset..offset + block_len])?;
            offset += block_len;
            remaining -= chunk_len;
        }
        Ok(corrected)
    }

    /// Appends the payload bytes of a (decoded) chunked stream to `out`,
    /// skipping the per-chunk parity.
    pub fn extract_payload_into(&self, coded: &[u8], payload_len: usize, out: &mut Vec<u8>) {
        let mut offset = 0;
        let mut remaining = payload_len;
        while remaining > 0 {
            let chunk_len = remaining.min(PAPER_CHUNK);
            out.extend_from_slice(&coded[offset..offset + chunk_len]);
            offset += chunk_len + self.rs.nroots;
            remaining -= chunk_len;
        }
    }

    /// Berlekamp–Massey over `self.synd` into `self.lambda`, reusing the
    /// `prev`/`tmp` scratch — zero allocations once capacities are warm.
    fn berlekamp_massey(&mut self) {
        let RsCodec {
            rs,
            synd,
            lambda,
            prev,
            tmp,
            ..
        } = self;
        let gf = &rs.gf;
        lambda.clear();
        lambda.push(1u8);
        prev.clear();
        prev.push(1u8);
        let mut l = 0usize;
        let mut m = 1usize;
        let mut b = 1u8;
        for n in 0..synd.len() {
            let mut delta = synd[n];
            for i in 1..=l.min(lambda.len() - 1) {
                delta ^= gf.mul(lambda[i], synd[n - i]);
            }
            if delta == 0 {
                m += 1;
            } else if 2 * l <= n {
                tmp.clear();
                tmp.extend_from_slice(lambda);
                let coeff = gf.div(delta, b);
                add_shifted_in_place(gf, lambda, prev, coeff, m);
                std::mem::swap(prev, tmp);
                l = n + 1 - l;
                b = delta;
                m = 1;
            } else {
                let coeff = gf.div(delta, b);
                add_shifted_in_place(gf, lambda, prev, coeff, m);
                m += 1;
            }
        }
        lambda.truncate(l + 1);
    }
}

/// Evaluates a low-degree-first polynomial at `x` (free-function twin of
/// [`ReedSolomon::eval_low_first`] for use with split borrows).
fn eval_low_first(gf: &Gf256, poly: &[u8], x: u8) -> u8 {
    let mut acc = 0u8;
    for &c in poly.iter().rev() {
        acc = gf.mul(acc, x) ^ c;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn paper_constructors_share_one_definition() {
        // Both paper constructors must flow from RsParams::PAPER: same
        // parity budget, same correction capacity, identical generator
        // behavior (byte-identical encodings), and the legacy constants
        // must alias the shared definition.
        let rs = ReedSolomon::paper();
        let mut codec = RsCodec::paper();
        assert_eq!(rs.parity_len(), RsParams::PAPER.nroots);
        assert_eq!(codec.parity_len(), RsParams::PAPER.nroots);
        assert_eq!(rs.correction_capacity(), RsParams::PAPER.nroots / 2);
        assert_eq!(codec.correction_capacity(), rs.correction_capacity());
        assert_eq!(PAPER_PARITY, RsParams::PAPER.nroots);
        assert_eq!(PAPER_CHUNK, RsParams::PAPER.chunk);
        let data: Vec<u8> = (0..200u8).collect();
        let mut out = Vec::new();
        codec.encode_into(&data, &mut out);
        assert_eq!(out, rs.encode(&data));
        assert_eq!(
            RsParams::PAPER.coded_len(517),
            rs.encode_payload(&vec![0u8; 517]).len()
        );
    }

    #[test]
    fn encode_is_systematic() {
        let rs = ReedSolomon::paper();
        let data: Vec<u8> = (0..200u8).collect();
        let coded = rs.encode(&data);
        assert_eq!(coded.len(), 216);
        assert_eq!(&coded[..200], &data[..]);
    }

    #[test]
    fn clean_block_decodes_with_zero_corrections() {
        let rs = ReedSolomon::paper();
        let data: Vec<u8> = (0..100u8).collect();
        let mut coded = rs.encode(&data);
        assert_eq!(rs.decode(&mut coded), Ok(0));
        assert_eq!(&coded[..100], &data[..]);
    }

    #[test]
    fn corrects_up_to_t_errors() {
        let rs = ReedSolomon::paper();
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<u8> = (0..200).map(|_| rng.gen()).collect();
        let clean = rs.encode(&data);
        for n_err in 1..=8usize {
            let mut coded = clean.clone();
            // Corrupt n_err distinct positions.
            let mut positions = std::collections::HashSet::new();
            while positions.len() < n_err {
                positions.insert(rng.gen_range(0..coded.len()));
            }
            for &p in &positions {
                coded[p] ^= rng.gen_range(1..=255u8);
            }
            let fixed = rs
                .decode(&mut coded)
                .unwrap_or_else(|e| panic!("decode failed at {n_err} errors: {e}"));
            assert_eq!(fixed, n_err);
            assert_eq!(&coded[..200], &data[..]);
        }
    }

    #[test]
    fn detects_more_than_t_errors() {
        // 9+ errors must not silently decode to the wrong data. (A tiny
        // residual miscorrection probability is inherent to RS; these seeds
        // are deterministic and known-good.)
        let rs = ReedSolomon::paper();
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<u8> = (0..200).map(|_| rng.gen()).collect();
        for trial in 0..20 {
            let mut coded = rs.encode(&data);
            let mut positions = std::collections::HashSet::new();
            while positions.len() < 12 {
                positions.insert(rng.gen_range(0..coded.len()));
            }
            for &p in &positions {
                coded[p] ^= rng.gen_range(1..=255u8);
            }
            match rs.decode(&mut coded) {
                Err(RsError::TooManyErrors) => {}
                Ok(_) => {
                    assert_eq!(&coded[..200], &data[..], "miscorrection on trial {trial}");
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn shortened_blocks_work() {
        let rs = ReedSolomon::paper();
        for len in [1usize, 10, 50, 199] {
            let data: Vec<u8> = (0..len).map(|i| (i * 13 % 251) as u8).collect();
            let mut coded = rs.encode(&data);
            coded[len / 2] ^= 0xa5;
            assert_eq!(rs.decode(&mut coded), Ok(1), "len {len}");
            assert_eq!(&coded[..len], &data[..]);
        }
    }

    #[test]
    fn payload_roundtrip_multi_chunk() {
        let rs = ReedSolomon::paper();
        let payload: Vec<u8> = (0..517).map(|i| (i % 256) as u8).collect();
        let mut coded = rs.encode_payload(&payload);
        // 517 bytes → 3 chunks → 48 parity bytes.
        assert_eq!(coded.len(), 517 + 48);
        // One error per chunk.
        coded[10] ^= 1;
        coded[250] ^= 2;
        coded[500] ^= 3;
        let (decoded, fixed) = rs.decode_payload(&mut coded, 517).expect("decodable");
        assert_eq!(decoded, payload);
        assert_eq!(fixed, 3);
    }

    #[test]
    fn empty_payload_is_identity() {
        let rs = ReedSolomon::paper();
        assert!(rs.encode_payload(&[]).is_empty());
        let (decoded, fixed) = rs.decode_payload(&mut [], 0).expect("empty ok");
        assert!(decoded.is_empty());
        assert_eq!(fixed, 0);
    }

    #[test]
    fn bad_lengths_are_rejected() {
        let rs = ReedSolomon::paper();
        let mut short = vec![0u8; 16];
        assert_eq!(
            rs.decode(&mut short),
            Err(RsError::BadBlockLength { len: 16 })
        );
        let mut wrong = vec![0u8; 100];
        assert!(matches!(
            rs.decode_payload(&mut wrong, 200),
            Err(RsError::BadBlockLength { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "255")]
    fn oversized_block_panics_on_encode() {
        ReedSolomon::paper().encode(&vec![0u8; 240]);
    }

    #[test]
    fn codec_encode_matches_scalar() {
        let rs = ReedSolomon::paper();
        let mut codec = RsCodec::paper();
        for len in [1usize, 10, 199, 200] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let mut out = Vec::new();
            codec.encode_into(&data, &mut out);
            assert_eq!(out, rs.encode(&data), "len {len}");
        }
    }

    #[test]
    fn codec_decode_matches_scalar_under_errors() {
        let rs = ReedSolomon::paper();
        let mut codec = RsCodec::paper();
        let mut rng = StdRng::seed_from_u64(99);
        let data: Vec<u8> = (0..200).map(|_| rng.gen()).collect();
        let clean = rs.encode(&data);
        for n_err in 0..=12usize {
            let mut a = clean.clone();
            let mut b = clean.clone();
            let mut positions = std::collections::HashSet::new();
            while positions.len() < n_err {
                positions.insert(rng.gen_range(0..a.len()));
            }
            for &p in &positions {
                let flip = rng.gen_range(1..=255u8);
                a[p] ^= flip;
                b[p] ^= flip;
            }
            assert_eq!(
                rs.decode(&mut a),
                codec.decode_in_place(&mut b),
                "result mismatch at {n_err} errors"
            );
            assert_eq!(a, b, "block mismatch at {n_err} errors");
        }
    }

    #[test]
    fn codec_payload_roundtrip_matches_scalar() {
        let rs = ReedSolomon::paper();
        let mut codec = RsCodec::paper();
        let payload: Vec<u8> = (0..517).map(|i| (i % 256) as u8).collect();
        let mut packed_out = Vec::new();
        codec.encode_payload_into(&payload, &mut packed_out);
        assert_eq!(packed_out, rs.encode_payload(&payload));
        packed_out[10] ^= 1;
        packed_out[250] ^= 2;
        packed_out[500] ^= 3;
        let mut scalar_coded = packed_out.clone();
        let corrected = codec
            .decode_payload_in_place(&mut packed_out, 517)
            .expect("decodable");
        let (scalar_payload, scalar_fixed) = rs
            .decode_payload(&mut scalar_coded, 517)
            .expect("decodable");
        assert_eq!(corrected, scalar_fixed);
        let mut extracted = Vec::new();
        codec.extract_payload_into(&packed_out, 517, &mut extracted);
        assert_eq!(extracted, scalar_payload);
        assert_eq!(extracted, payload);
    }

    #[test]
    fn codec_rejects_bad_lengths_like_scalar() {
        let mut codec = RsCodec::paper();
        let mut short = vec![0u8; 16];
        assert_eq!(
            codec.decode_in_place(&mut short),
            Err(RsError::BadBlockLength { len: 16 })
        );
        let mut wrong = vec![0u8; 100];
        assert!(matches!(
            codec.decode_payload_in_place(&mut wrong, 200),
            Err(RsError::BadBlockLength { .. })
        ));
    }

    proptest! {
        #[test]
        fn prop_roundtrip_with_up_to_t_errors(
            data in proptest::collection::vec(any::<u8>(), 1..=200),
            err_seed in any::<u64>(),
            n_err in 0usize..=8,
        ) {
            let rs = ReedSolomon::paper();
            let clean = rs.encode(&data);
            let mut coded = clean.clone();
            let mut rng = StdRng::seed_from_u64(err_seed);
            let mut positions = std::collections::HashSet::new();
            let n_err = n_err.min(coded.len());
            while positions.len() < n_err {
                positions.insert(rng.gen_range(0..coded.len()));
            }
            for &p in &positions {
                coded[p] ^= rng.gen_range(1..=255u8);
            }
            let fixed = rs.decode(&mut coded).expect("within capacity");
            prop_assert_eq!(fixed, n_err);
            prop_assert_eq!(&coded[..data.len()], &data[..]);
        }

        #[test]
        fn prop_parity_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..=200)) {
            let rs = ReedSolomon::paper();
            if data.is_empty() {
                return Ok(());
            }
            prop_assert_eq!(rs.encode(&data), rs.encode(&data));
        }
    }
}
