//! Manchester coding (paper §3.3).
//!
//! To avoid flicker and keep HIGH/LOW equiprobable, DenseVLC Manchester-codes
//! its OOK stream: a `LOW → HIGH` transition encodes a binary 0 and a
//! `HIGH → LOW` transition a binary 1. Every bit therefore occupies two
//! chips and the long-run average light level is exactly the bias.

use serde::{Deserialize, Serialize};

/// One Manchester chip: the LED is at the HIGH or LOW symbol level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Chip {
    /// LED at `Il = Ib − Isw/2`.
    Low,
    /// LED at `Ih = Ib + Isw/2`.
    High,
}

impl Chip {
    /// The chip's amplitude as ±1 around the bias (HIGH = +1).
    pub fn amplitude(self) -> f64 {
        match self {
            Chip::High => 1.0,
            Chip::Low => -1.0,
        }
    }
}

/// Encodes bytes MSB-first into Manchester chips: bit 0 → `[Low, High]`,
/// bit 1 → `[High, Low]`.
///
/// ```
/// use vlc_phy::manchester::{manchester_encode, manchester_decode, dc_balance};
///
/// let chips = manchester_encode(b"VLC");
/// assert_eq!(chips.len(), 3 * 16);           // two chips per bit
/// assert_eq!(dc_balance(&chips), 0.0);       // no flicker, ever
/// assert_eq!(manchester_decode(&chips).unwrap(), b"VLC");
/// ```
pub fn manchester_encode(data: &[u8]) -> Vec<Chip> {
    let mut chips = Vec::with_capacity(data.len() * 16);
    for &byte in data {
        for bit in (0..8).rev() {
            if (byte >> bit) & 1 == 1 {
                chips.push(Chip::High);
                chips.push(Chip::Low);
            } else {
                chips.push(Chip::Low);
                chips.push(Chip::High);
            }
        }
    }
    chips
}

/// Encodes a bit slice (not byte-aligned) into chips.
pub fn manchester_encode_bits(bits: &[bool]) -> Vec<Chip> {
    let mut chips = Vec::with_capacity(bits.len() * 2);
    for &b in bits {
        if b {
            chips.push(Chip::High);
            chips.push(Chip::Low);
        } else {
            chips.push(Chip::Low);
            chips.push(Chip::High);
        }
    }
    chips
}

/// Decodes Manchester chips back to bytes. Requires a whole number of bytes
/// (16 chips each) and valid mid-bit transitions.
///
/// Returns `None` when the chip stream has an invalid length or contains a
/// chip pair without a transition (`Low,Low` / `High,High`), which real
/// receivers treat as a symbol error.
pub fn manchester_decode(chips: &[Chip]) -> Option<Vec<u8>> {
    if !chips.len().is_multiple_of(16) {
        return None;
    }
    let mut out = Vec::with_capacity(chips.len() / 16);
    for byte_chips in chips.chunks(16) {
        let mut byte = 0u8;
        for pair in byte_chips.chunks(2) {
            let bit = match (pair[0], pair[1]) {
                (Chip::Low, Chip::High) => false,
                (Chip::High, Chip::Low) => true,
                _ => return None,
            };
            byte = (byte << 1) | u8::from(bit);
        }
        out.push(byte);
    }
    Some(out)
}

/// Decodes chips into bits, tolerating a non-byte-aligned length.
pub fn manchester_decode_bits(chips: &[Chip]) -> Option<Vec<bool>> {
    if !chips.len().is_multiple_of(2) {
        return None;
    }
    chips
        .chunks(2)
        .map(|pair| match (pair[0], pair[1]) {
            (Chip::Low, Chip::High) => Some(false),
            (Chip::High, Chip::Low) => Some(true),
            _ => None,
        })
        .collect()
}

/// The DC balance of a chip stream: mean amplitude (0.0 = perfectly
/// balanced, the no-flicker requirement).
pub fn dc_balance(chips: &[Chip]) -> f64 {
    if chips.is_empty() {
        return 0.0;
    }
    chips.iter().map(|c| c.amplitude()).sum::<f64>() / chips.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_known_byte() {
        // 0xA0 = 1010 0000: 1→HL, 0→LH.
        let chips = manchester_encode(&[0xA0]);
        use Chip::*;
        assert_eq!(
            chips,
            vec![
                High, Low, Low, High, High, Low, Low, High, // 1010
                Low, High, Low, High, Low, High, Low, High, // 0000
            ]
        );
    }

    #[test]
    fn roundtrip_bytes() {
        let data = [0x00, 0xFF, 0x55, 0xAA, 0x13, 0x37];
        let chips = manchester_encode(&data);
        assert_eq!(manchester_decode(&chips), Some(data.to_vec()));
    }

    #[test]
    fn every_stream_is_dc_balanced() {
        for data in [&[0u8][..], &[0xFF; 8][..], &[1, 2, 3][..]] {
            let chips = manchester_encode(data);
            assert_eq!(dc_balance(&chips), 0.0, "data {data:?}");
        }
    }

    #[test]
    fn invalid_pairs_are_rejected() {
        use Chip::*;
        let bad = vec![
            Low, Low, High, Low, Low, High, High, Low, Low, High, Low, High, Low, High, Low, High,
        ];
        assert_eq!(manchester_decode(&bad), None);
    }

    #[test]
    fn misaligned_length_is_rejected() {
        let chips = manchester_encode(&[0x42]);
        assert_eq!(manchester_decode(&chips[..15]), None);
        assert_eq!(manchester_decode_bits(&chips[..15]), None);
    }

    #[test]
    fn bit_level_roundtrip() {
        let bits = vec![true, false, true, true, false];
        let chips = manchester_encode_bits(&bits);
        assert_eq!(chips.len(), 10);
        assert_eq!(manchester_decode_bits(&chips), Some(bits));
    }

    #[test]
    fn amplitude_convention() {
        assert_eq!(Chip::High.amplitude(), 1.0);
        assert_eq!(Chip::Low.amplitude(), -1.0);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let chips = manchester_encode(&data);
            prop_assert_eq!(manchester_decode(&chips), Some(data.clone()));
            // Two chips per bit, eight bits per byte.
            prop_assert_eq!(chips.len(), data.len() * 16);
            // DC balance is exact for any input.
            prop_assert!(dc_balance(&chips).abs() < 1e-15);
        }
    }
}
