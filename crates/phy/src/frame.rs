//! The DenseVLC frame structure (paper Table 3).
//!
//! The controller multicasts frames over Ethernet to the TXs; each VLC
//! frame then carries, in order: an 8-byte TX-ID bitmask selecting which of
//! the (up to 64) transmitters must radiate the frame, a 32-symbol pilot
//! used by the NLOS synchronization, a 32-symbol preamble, then the MAC
//! portion — SFD (1 B), Length (2 B), Dst (2 B), Src (2 B), Protocol (2 B),
//! the payload, and `⌈x/200⌉ × 16` Reed–Solomon parity bytes.

use crate::codec::{CodecError, CodecStack, Correction};
use crate::rs::{ReedSolomon, RsCodec, RsError};
use serde::{Deserialize, Serialize};
use std::fmt;
use vlc_telemetry::Registry;

/// Start-of-frame delimiter value.
pub const SFD: u8 = 0x7E;
/// Pilot length in chips (paper: 32 symbols).
pub const PILOT_SYMBOLS: usize = 32;
/// Preamble length in chips (paper: 32 symbols).
pub const PREAMBLE_SYMBOLS: usize = 32;
/// Maximum payload the 2-byte length field supports.
pub const MAX_PAYLOAD: usize = u16::MAX as usize;

/// Errors raised while parsing a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameError {
    /// The byte stream ended before the fixed header completed.
    Truncated,
    /// The SFD byte was wrong (frame sync lost).
    BadSfd {
        /// The byte found instead of [`SFD`].
        found: u8,
    },
    /// The payload + parity region doesn't match the length field.
    LengthMismatch {
        /// Bytes declared by the header.
        declared: usize,
        /// Bytes actually present.
        available: usize,
    },
    /// Reed–Solomon failed to correct the payload.
    Uncorrectable,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated before header end"),
            FrameError::BadSfd { found } => write!(f, "bad SFD byte {found:#04x}"),
            FrameError::LengthMismatch {
                declared,
                available,
            } => {
                write!(
                    f,
                    "length field says {declared} B but {available} B present"
                )
            }
            FrameError::Uncorrectable => write!(f, "Reed-Solomon could not repair payload"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<RsError> for FrameError {
    fn from(_: RsError) -> Self {
        FrameError::Uncorrectable
    }
}

impl From<CodecError> for FrameError {
    // The frame layer validates the coded region's length before handing
    // it to the stack, so a surviving stack error — either variant — means
    // the payload could not be recovered.
    fn from(_: CodecError) -> Self {
        FrameError::Uncorrectable
    }
}

/// The MAC-level header fields of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameHeader {
    /// Destination address (receiver ID).
    pub dst: u16,
    /// Source address (controller / leading-TX ID).
    pub src: u16,
    /// Protocol discriminator (data, ACK, channel report, …).
    pub protocol: u16,
}

/// A DenseVLC MAC frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Bitmask of TX IDs that must radiate this frame (bit `i` = TX `i`).
    pub tx_id_mask: u64,
    /// Header fields.
    pub header: FrameHeader,
    /// The application payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Creates a frame addressed from `src` to `dst`.
    ///
    /// # Panics
    /// Panics if the payload exceeds the 2-byte length field.
    pub fn new(tx_id_mask: u64, header: FrameHeader, payload: Vec<u8>) -> Self {
        assert!(
            payload.len() <= MAX_PAYLOAD,
            "payload exceeds the length field"
        );
        Frame {
            tx_id_mask,
            header,
            payload,
        }
    }

    /// True when TX `tx` (zero-based) is selected to radiate this frame.
    pub fn selects_tx(&self, tx: usize) -> bool {
        tx < 64 && (self.tx_id_mask >> tx) & 1 == 1
    }

    /// Builds a TX-ID mask from a list of zero-based TX indices.
    ///
    /// # Panics
    /// Panics on an index ≥ 64 (the 8-byte field's limit).
    pub fn mask_for(txs: &[usize]) -> u64 {
        let mut mask = 0u64;
        for &t in txs {
            assert!(t < 64, "TX index {t} does not fit the 8-byte ID field");
            mask |= 1 << t;
        }
        mask
    }

    /// Serializes the MAC portion (from SFD; the pilot and preamble are
    /// waveform-level and prepended by the modulator): SFD, Length, Dst,
    /// Src, Protocol, RS-coded payload.
    pub fn to_bytes(&self, rs: &ReedSolomon) -> Vec<u8> {
        let coded = rs.encode_payload(&self.payload);
        let mut out = Vec::with_capacity(17 + coded.len());
        out.extend_from_slice(&self.tx_id_mask.to_be_bytes());
        out.push(SFD);
        out.extend_from_slice(&(self.payload.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.header.dst.to_be_bytes());
        out.extend_from_slice(&self.header.src.to_be_bytes());
        out.extend_from_slice(&self.header.protocol.to_be_bytes());
        out.extend_from_slice(&coded);
        out
    }

    /// Parses and error-corrects a byte stream produced by
    /// [`Frame::to_bytes`]. Returns the frame and the number of RS-corrected
    /// byte errors.
    pub fn from_bytes(bytes: &[u8], rs: &ReedSolomon) -> Result<(Frame, usize), FrameError> {
        const FIXED: usize = 8 + 1 + 2 + 2 + 2 + 2;
        if bytes.len() < FIXED {
            return Err(FrameError::Truncated);
        }
        let tx_id_mask = u64::from_be_bytes(bytes[0..8].try_into().expect("8 bytes"));
        if bytes[8] != SFD {
            return Err(FrameError::BadSfd { found: bytes[8] });
        }
        let payload_len = u16::from_be_bytes([bytes[9], bytes[10]]) as usize;
        let dst = u16::from_be_bytes([bytes[11], bytes[12]]);
        let src = u16::from_be_bytes([bytes[13], bytes[14]]);
        let protocol = u16::from_be_bytes([bytes[15], bytes[16]]);
        let n_chunks = payload_len.div_ceil(crate::rs::PAPER_CHUNK);
        let coded_len = payload_len + n_chunks * rs.parity_len();
        let available = bytes.len() - FIXED;
        if available != coded_len {
            return Err(FrameError::LengthMismatch {
                declared: coded_len,
                available,
            });
        }
        let mut coded = bytes[FIXED..].to_vec();
        let (payload, corrected) = rs.decode_payload(&mut coded, payload_len)?;
        Ok((
            Frame {
                tx_id_mask,
                header: FrameHeader { dst, src, protocol },
                payload,
            },
            corrected,
        ))
    }

    /// Byte offset of the RS-coded payload region ([`SFD`] byte and header
    /// fields precede it; the 8-byte TX mask comes first).
    pub const FIXED_LEN: usize = 8 + 1 + 2 + 2 + 2 + 2;

    /// Serializes a frame's parts into `out` (appended) through any
    /// [`CodecStack`] — the generic zero-alloc twin of [`Frame::to_bytes`]:
    /// same fixed header, with the payload region coded by the stack.
    pub fn encode_parts_with<S: CodecStack + ?Sized>(
        tx_id_mask: u64,
        header: &FrameHeader,
        payload: &[u8],
        stack: &mut S,
        out: &mut Vec<u8>,
    ) {
        assert!(
            payload.len() <= MAX_PAYLOAD,
            "payload exceeds the length field"
        );
        out.extend_from_slice(&tx_id_mask.to_be_bytes());
        out.push(SFD);
        out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
        out.extend_from_slice(&header.dst.to_be_bytes());
        out.extend_from_slice(&header.src.to_be_bytes());
        out.extend_from_slice(&header.protocol.to_be_bytes());
        stack.encode_into(payload, out);
    }

    /// Parses a wire stream through any [`CodecStack`] — the generic
    /// zero-alloc twin of [`Frame::from_bytes`]: identical field decoding
    /// and errors, with the coded region's length validated against
    /// [`CodecStack::encoded_len`] before the stack decodes it into
    /// `payload_out` (cleared first). Returns the TX mask, header, and
    /// corrected symbol count.
    pub fn decode_parts_with<S: CodecStack + ?Sized>(
        bytes: &[u8],
        stack: &mut S,
        payload_out: &mut Vec<u8>,
    ) -> Result<(u64, FrameHeader, usize), FrameError> {
        payload_out.clear();
        if bytes.len() < Self::FIXED_LEN {
            return Err(FrameError::Truncated);
        }
        let tx_id_mask = u64::from_be_bytes(bytes[0..8].try_into().expect("8 bytes"));
        if bytes[8] != SFD {
            return Err(FrameError::BadSfd { found: bytes[8] });
        }
        let payload_len = u16::from_be_bytes([bytes[9], bytes[10]]) as usize;
        let dst = u16::from_be_bytes([bytes[11], bytes[12]]);
        let src = u16::from_be_bytes([bytes[13], bytes[14]]);
        let protocol = u16::from_be_bytes([bytes[15], bytes[16]]);
        let coded_len = stack.encoded_len(payload_len);
        let available = bytes.len() - Self::FIXED_LEN;
        if available != coded_len {
            return Err(FrameError::LengthMismatch {
                declared: coded_len,
                available,
            });
        }
        let corrected = stack.decode_into(&bytes[Self::FIXED_LEN..], payload_len, payload_out)?;
        Ok((tx_id_mask, FrameHeader { dst, src, protocol }, corrected))
    }

    /// Serializes a frame's parts into `out` (appended) through a reusable
    /// [`RsCodec`] — the zero-alloc twin of [`Frame::to_bytes`], producing
    /// byte-identical wire bytes without owning a [`Frame`]. Routed through
    /// [`Frame::encode_parts_with`] over the RS stack adapter.
    pub fn encode_parts_into(
        tx_id_mask: u64,
        header: &FrameHeader,
        payload: &[u8],
        codec: &mut RsCodec,
        out: &mut Vec<u8>,
    ) {
        let mut stack = RsParts {
            codec,
            scratch: None,
        };
        Frame::encode_parts_with(tx_id_mask, header, payload, &mut stack, out);
    }

    /// Parses and error-corrects a wire stream into caller-owned buffers —
    /// the zero-alloc twin of [`Frame::from_bytes`]: identical field
    /// decoding, identical errors, and the corrected payload lands in
    /// `payload_out` (cleared first; `coded_scratch` holds the working
    /// copy of the RS region). Returns the TX mask, header, and corrected
    /// byte count. Routed through [`Frame::decode_parts_with`] over the RS
    /// stack adapter.
    pub fn decode_parts_into(
        bytes: &[u8],
        codec: &mut RsCodec,
        coded_scratch: &mut Vec<u8>,
        payload_out: &mut Vec<u8>,
    ) -> Result<(u64, FrameHeader, usize), FrameError> {
        let mut stack = RsParts {
            codec,
            scratch: Some(coded_scratch),
        };
        Frame::decode_parts_with(bytes, &mut stack, payload_out)
    }

    /// [`Self::to_bytes`] with telemetry: counts the frame into
    /// `phy.frames_encoded`.
    pub fn to_bytes_instrumented(&self, rs: &ReedSolomon, telemetry: &Registry) -> Vec<u8> {
        telemetry.counter("phy.frames_encoded").inc();
        self.to_bytes(rs)
    }

    /// [`Self::from_bytes`] with telemetry. Successful decodes count into
    /// `phy.frames_decoded` and their repaired bytes into
    /// `phy.rs_symbols_corrected`; a Reed–Solomon failure counts into
    /// `phy.rs_uncorrectable` (plus an `rs_uncorrectable` event); any other
    /// parse failure — bad SFD, truncation, length mismatch, i.e. loss of
    /// frame integrity before FEC even runs — counts into
    /// `phy.frame_sync_errors`.
    pub fn from_bytes_instrumented(
        bytes: &[u8],
        rs: &ReedSolomon,
        telemetry: &Registry,
    ) -> Result<(Frame, usize), FrameError> {
        let result = Frame::from_bytes(bytes, rs);
        match &result {
            Ok((_, corrected)) => {
                telemetry.counter("phy.frames_decoded").inc();
                telemetry
                    .counter("phy.rs_symbols_corrected")
                    .add(*corrected as u64);
            }
            Err(FrameError::Uncorrectable) => {
                telemetry.counter("phy.rs_uncorrectable").inc();
                telemetry.event("phy.frame", "rs_uncorrectable", &[]);
            }
            Err(_) => {
                telemetry.counter("phy.frame_sync_errors").inc();
            }
        }
        result
    }

    /// Total on-air MAC bytes for a payload of `payload_len` (header fields
    /// plus RS overhead; excludes pilot/preamble chips).
    pub fn wire_len(payload_len: usize, rs: &ReedSolomon) -> usize {
        let n_chunks = payload_len.div_ceil(crate::rs::PAPER_CHUNK);
        8 + 1 + 2 + 2 + 2 + 2 + payload_len + n_chunks * rs.parity_len()
    }

    /// [`Frame::wire_len`] for any [`CodecStack`]: fixed header plus the
    /// stack's coded length.
    pub fn wire_len_with<S: CodecStack + ?Sized>(payload_len: usize, stack: &S) -> usize {
        Self::FIXED_LEN + stack.encoded_len(payload_len)
    }
}

/// The historical RS parts path as a [`CodecStack`]: borrows the caller's
/// [`RsCodec`] and (for decode) external coded scratch, so
/// [`Frame::encode_parts_into`] / [`Frame::decode_parts_into`] keep their
/// exact signatures and buffer contracts while running on the same generic
/// code as every other stack.
struct RsParts<'a> {
    codec: &'a mut RsCodec,
    /// Working copy of the coded region; `None` on the encode-only path.
    scratch: Option<&'a mut Vec<u8>>,
}

impl CodecStack for RsParts<'_> {
    fn name(&self) -> &str {
        "rs"
    }

    fn encoded_len(&self, payload_len: usize) -> usize {
        let n_chunks = payload_len.div_ceil(crate::rs::PAPER_CHUNK);
        payload_len + n_chunks * self.codec.parity_len()
    }

    fn correction(&self) -> Correction {
        let t = self.codec.correction_capacity();
        Correction {
            t_per_block: t,
            block_len: crate::rs::PAPER_CHUNK + self.codec.parity_len(),
            burst_tolerance: t,
        }
    }

    fn encode_into(&mut self, payload: &[u8], out: &mut Vec<u8>) {
        self.codec.encode_payload_into(payload, out);
    }

    fn decode_into(
        &mut self,
        coded: &[u8],
        payload_len: usize,
        payload_out: &mut Vec<u8>,
    ) -> Result<usize, CodecError> {
        let scratch = self
            .scratch
            .as_deref_mut()
            .expect("decode requires coded scratch");
        scratch.clear();
        scratch.extend_from_slice(coded);
        let corrected = self.codec.decode_payload_in_place(scratch, payload_len)?;
        self.codec
            .extract_payload_into(scratch, payload_len, payload_out);
        Ok(corrected)
    }

    fn encode_ref(&self, payload: &[u8]) -> Vec<u8> {
        self.codec.reference().encode_payload(payload)
    }

    fn decode_ref(&self, coded: &[u8], payload_len: usize) -> Result<(Vec<u8>, usize), CodecError> {
        let mut buf = coded.to_vec();
        Ok(self
            .codec
            .reference()
            .decode_payload(&mut buf, payload_len)?)
    }
}

/// Well-known protocol discriminators used by the MAC.
pub mod protocol {
    /// Downlink user data.
    pub const DATA: u16 = 0x0001;
    /// Channel-measurement pilot announcement.
    pub const PILOT: u16 = 0x0002;
    /// Uplink channel-quality report (over WiFi).
    pub const CHANNEL_REPORT: u16 = 0x0003;
    /// Uplink MAC acknowledgement (over WiFi).
    pub const ACK: u16 = 0x0004;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rs() -> ReedSolomon {
        ReedSolomon::paper()
    }

    fn sample_frame(payload: Vec<u8>) -> Frame {
        Frame::new(
            Frame::mask_for(&[1, 7, 8]),
            FrameHeader {
                dst: 0x0102,
                src: 0xfffe,
                protocol: protocol::DATA,
            },
            payload,
        )
    }

    #[test]
    fn roundtrip_without_errors() {
        let frame = sample_frame((0..300u16).map(|i| (i % 256) as u8).collect());
        let bytes = frame.to_bytes(&rs());
        let (parsed, fixed) = Frame::from_bytes(&bytes, &rs()).expect("clean frame");
        assert_eq!(parsed, frame);
        assert_eq!(fixed, 0);
    }

    #[test]
    fn wire_len_matches_serialization() {
        for len in [0usize, 1, 199, 200, 201, 450] {
            let frame = sample_frame(vec![0xab; len]);
            assert_eq!(
                frame.to_bytes(&rs()).len(),
                Frame::wire_len(len, &rs()),
                "len {len}"
            );
        }
    }

    #[test]
    fn rs_repairs_payload_corruption() {
        let frame = sample_frame((0..200u8).collect());
        let mut bytes = frame.to_bytes(&rs());
        // Flip three payload bytes (region after the 17-byte fixed part).
        bytes[20] ^= 0x41;
        bytes[60] ^= 0x01;
        bytes[199] ^= 0xff;
        let (parsed, fixed) = Frame::from_bytes(&bytes, &rs()).expect("repairable");
        assert_eq!(parsed.payload, frame.payload);
        assert_eq!(fixed, 3);
    }

    #[test]
    fn too_much_corruption_is_flagged() {
        let frame = sample_frame((0..200u8).collect());
        let mut bytes = frame.to_bytes(&rs());
        for i in 0..30 {
            bytes[17 + i * 7] ^= 0x5a;
        }
        match Frame::from_bytes(&bytes, &rs()) {
            Err(FrameError::Uncorrectable) => {}
            Ok((parsed, _)) => assert_eq!(parsed.payload, frame.payload),
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn bad_sfd_is_reported() {
        let frame = sample_frame(vec![1, 2, 3]);
        let mut bytes = frame.to_bytes(&rs());
        bytes[8] = 0x00;
        assert_eq!(
            Frame::from_bytes(&bytes, &rs()),
            Err(FrameError::BadSfd { found: 0x00 })
        );
    }

    #[test]
    fn truncation_is_reported() {
        assert_eq!(
            Frame::from_bytes(&[0u8; 5], &rs()),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    fn length_mismatch_is_reported() {
        let frame = sample_frame(vec![9; 50]);
        let mut bytes = frame.to_bytes(&rs());
        bytes.pop();
        assert!(matches!(
            Frame::from_bytes(&bytes, &rs()),
            Err(FrameError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn tx_mask_selects_correct_txs() {
        let frame = sample_frame(vec![]);
        assert!(frame.selects_tx(1));
        assert!(frame.selects_tx(7));
        assert!(frame.selects_tx(8));
        assert!(!frame.selects_tx(0));
        assert!(!frame.selects_tx(63));
        assert!(!frame.selects_tx(64)); // out of field range, never selected
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn mask_for_rejects_large_index() {
        Frame::mask_for(&[64]);
    }

    #[test]
    fn parts_codec_matches_owned_frame_path() {
        let mut codec = RsCodec::paper();
        let frame = sample_frame((0..300u16).map(|i| (i % 256) as u8).collect());
        let mut wire = Vec::new();
        Frame::encode_parts_into(
            frame.tx_id_mask,
            &frame.header,
            &frame.payload,
            &mut codec,
            &mut wire,
        );
        assert_eq!(wire, frame.to_bytes(&rs()));
        wire[20] ^= 0x41;
        wire[260] ^= 0x7f;
        let mut scratch = Vec::new();
        let mut payload = Vec::new();
        let (mask, header, corrected) =
            Frame::decode_parts_into(&wire, &mut codec, &mut scratch, &mut payload)
                .expect("repairable");
        let (parsed, fixed) = Frame::from_bytes(&wire, &rs()).expect("repairable");
        assert_eq!(mask, parsed.tx_id_mask);
        assert_eq!(header, parsed.header);
        assert_eq!(corrected, fixed);
        assert_eq!(payload, parsed.payload);
    }

    #[test]
    fn parts_codec_reports_same_errors() {
        let mut codec = RsCodec::paper();
        let mut scratch = Vec::new();
        let mut payload = Vec::new();
        let frame = sample_frame(vec![1, 2, 3]);
        let mut bytes = frame.to_bytes(&rs());
        bytes[8] = 0x00;
        assert_eq!(
            Frame::decode_parts_into(&bytes, &mut codec, &mut scratch, &mut payload),
            Err(FrameError::BadSfd { found: 0x00 })
        );
        assert_eq!(
            Frame::decode_parts_into(&[0u8; 5], &mut codec, &mut scratch, &mut payload),
            Err(FrameError::Truncated)
        );
        let mut short = frame.to_bytes(&rs());
        short.pop();
        assert!(matches!(
            Frame::decode_parts_into(&short, &mut codec, &mut scratch, &mut payload),
            Err(FrameError::LengthMismatch { .. })
        ));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            payload in proptest::collection::vec(any::<u8>(), 0..600),
            dst in any::<u16>(),
            src in any::<u16>(),
            proto in any::<u16>(),
            mask in any::<u64>(),
        ) {
            let frame = Frame::new(mask, FrameHeader { dst, src, protocol: proto }, payload);
            let bytes = frame.to_bytes(&rs());
            let (parsed, fixed) = Frame::from_bytes(&bytes, &rs()).expect("clean");
            prop_assert_eq!(parsed, frame);
            prop_assert_eq!(fixed, 0);
        }
    }
}
