//! GF(2⁸) arithmetic for the Reed–Solomon codec.
//!
//! The field is GF(2⁸) with the primitive polynomial
//! `x⁸ + x⁴ + x³ + x² + 1` (0x11d) — the conventional choice for byte-wise
//! Reed–Solomon codes. Multiplication and division go through exp/log
//! tables built once at startup.

/// Number of non-zero field elements.
pub const FIELD_ORDER: usize = 255;

/// Exp/log tables for GF(2⁸).
#[derive(Debug, Clone)]
pub struct Gf256 {
    exp: [u8; 512],
    log: [u8; 256],
}

impl Gf256 {
    /// Builds the tables for the 0x11d primitive polynomial.
    pub fn new() -> Self {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, slot) in exp.iter_mut().enumerate().take(FIELD_ORDER) {
            *slot = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= 0x11d;
            }
        }
        // Duplicate the table so exp[i + j] works without a mod for
        // i + j < 510.
        for i in FIELD_ORDER..512 {
            exp[i] = exp[i - FIELD_ORDER];
        }
        Gf256 { exp, log }
    }

    /// α^i for `i < 510`.
    #[inline]
    pub fn alpha_pow(&self, i: usize) -> u8 {
        self.exp[i % FIELD_ORDER]
    }

    /// Discrete log of a non-zero element.
    ///
    /// # Panics
    /// Panics on zero, which has no logarithm.
    #[inline]
    pub fn log(&self, x: u8) -> usize {
        assert!(x != 0, "log(0) is undefined in GF(256)");
        self.log[x as usize] as usize
    }

    /// Field addition (XOR).
    #[inline]
    pub fn add(&self, a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Field division `a / b`.
    ///
    /// # Panics
    /// Panics when `b` is zero.
    #[inline]
    pub fn div(&self, a: u8, b: u8) -> u8 {
        assert!(b != 0, "division by zero in GF(256)");
        if a == 0 {
            0
        } else {
            self.exp[(self.log[a as usize] as usize + FIELD_ORDER - self.log[b as usize] as usize)
                % FIELD_ORDER]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    #[inline]
    pub fn inv(&self, a: u8) -> u8 {
        assert!(a != 0, "zero has no inverse in GF(256)");
        self.exp[FIELD_ORDER - self.log[a as usize] as usize]
    }

    /// Evaluates a polynomial (coefficients high-degree first) at `x`.
    pub fn poly_eval(&self, poly: &[u8], x: u8) -> u8 {
        let mut acc = 0u8;
        for &c in poly {
            acc = self.mul(acc, x) ^ c;
        }
        acc
    }

    /// Multiplies two polynomials (coefficients high-degree first).
    pub fn poly_mul(&self, a: &[u8], b: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; a.len() + b.len() - 1];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                out[i + j] ^= self.mul(ai, bj);
            }
        }
        out
    }
}

impl Default for Gf256 {
    fn default() -> Self {
        Gf256::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_are_inverse() {
        let gf = Gf256::new();
        for i in 0..FIELD_ORDER {
            let x = gf.alpha_pow(i);
            assert_eq!(gf.log(x), i);
        }
    }

    #[test]
    fn mul_matches_schoolbook_carryless() {
        // Reference: carry-less multiply reduced by 0x11d.
        fn slow_mul(mut a: u16, mut b: u16) -> u8 {
            let mut p: u16 = 0;
            while b != 0 {
                if b & 1 != 0 {
                    p ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= 0x11d;
                }
                b >>= 1;
            }
            p as u8
        }
        let gf = Gf256::new();
        for a in [0u8, 1, 2, 3, 0x53, 0xca, 0xff] {
            for b in [0u8, 1, 2, 0x0e, 0x80, 0xff] {
                assert_eq!(gf.mul(a, b), slow_mul(a as u16, b as u16), "{a} × {b}");
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_an_inverse() {
        let gf = Gf256::new();
        for a in 1..=255u8 {
            assert_eq!(gf.mul(a, gf.inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    fn div_is_mul_by_inverse() {
        let gf = Gf256::new();
        for a in [1u8, 7, 99, 200, 255] {
            for b in [1u8, 2, 88, 254] {
                assert_eq!(gf.div(a, b), gf.mul(a, gf.inv(b)));
            }
        }
    }

    #[test]
    fn poly_eval_horner() {
        let gf = Gf256::new();
        // p(x) = 2x² + 3x + 5 at x = 1 → 2 ^ 3 ^ 5 = 4.
        assert_eq!(gf.poly_eval(&[2, 3, 5], 1), 4);
        // Any polynomial at x = 0 equals its constant term.
        assert_eq!(gf.poly_eval(&[7, 9, 0x42], 0), 0x42);
    }

    #[test]
    fn poly_mul_degree_and_identity() {
        let gf = Gf256::new();
        let p = [1u8, 2, 3];
        assert_eq!(gf.poly_mul(&p, &[1]), p.to_vec());
        let q = gf.poly_mul(&p, &[1, 0]); // × x
        assert_eq!(q, vec![1, 2, 3, 0]);
    }

    #[test]
    #[should_panic(expected = "log(0)")]
    fn log_zero_panics() {
        Gf256::new().log(0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_zero_panics() {
        Gf256::new().div(1, 0);
    }
}
