//! The M2M4 SNR estimator (paper §7.2).
//!
//! DenseVLC estimates link SNR from the second and fourth moments of the
//! received (AC-coupled, zero-mean) samples. For a real constant-modulus
//! signal `±A` in real Gaussian noise of power `N` (noise kurtosis 3,
//! signal kurtosis 1):
//!
//! * `M2 = E[y²] = S + N`
//! * `M4 = E[y⁴] = S² + 6·S·N + 3·N²`
//!
//! which solves to `Ŝ = √((3·M2² − M4)/2)` and `N̂ = M2 − Ŝ` (the real-signal
//! form of the Pauluzzi–Beaulieu M2M4 estimator; the often-quoted
//! `√(2·M2²−M4)` variant assumes complex noise). The paper picks this
//! estimator because it works on in-frame symbols after the ADC with no
//! separate channel estimate, and tracks reception-time noise changes.

/// An M2M4 estimate of signal power, noise power, and their ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnrEstimate {
    /// Estimated signal power (same units² as the samples).
    pub signal_power: f64,
    /// Estimated noise power.
    pub noise_power: f64,
    /// The ratio `signal / noise`; `f64::INFINITY` for noiseless input.
    pub snr: f64,
}

impl SnrEstimate {
    /// The estimate in decibels.
    pub fn snr_db(&self) -> f64 {
        10.0 * self.snr.log10()
    }
}

/// Estimates SNR from zero-mean samples with the M2M4 method.
///
/// Returns `None` when the estimator degenerates (`3·M2² < M4`, which can
/// happen at very low SNR or with too few samples).
///
/// # Panics
/// Panics on an empty slice.
pub fn m2m4_snr(samples: &[f64]) -> Option<SnrEstimate> {
    assert!(!samples.is_empty(), "M2M4 needs at least one sample");
    let n = samples.len() as f64;
    let m2: f64 = samples.iter().map(|y| y * y).sum::<f64>() / n;
    let m4: f64 = samples.iter().map(|y| y.powi(4)).sum::<f64>() / n;
    let discriminant = (3.0 * m2 * m2 - m4) / 2.0;
    if discriminant < 0.0 {
        return None;
    }
    let signal_power = discriminant.sqrt();
    let noise_power = (m2 - signal_power).max(0.0);
    let snr = if noise_power > 0.0 {
        signal_power / noise_power
    } else {
        f64::INFINITY
    };
    Some(SnrEstimate {
        signal_power,
        noise_power,
        snr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Generates ±A chips plus Gaussian noise (Box–Muller inline to keep
    /// this crate self-contained).
    fn noisy_bpsk(n: usize, amp: f64, sigma: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let s = if rng.gen::<bool>() { amp } else { -amp };
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                s + sigma * z
            })
            .collect()
    }

    #[test]
    fn noiseless_signal_gives_infinite_snr() {
        let samples = vec![1.0, -1.0, 1.0, 1.0, -1.0, -1.0];
        let est = m2m4_snr(&samples).expect("well-posed");
        assert!((est.signal_power - 1.0).abs() < 1e-12);
        assert_eq!(est.snr, f64::INFINITY);
    }

    #[test]
    fn estimates_match_truth_across_snrs() {
        for &(amp, sigma) in &[(1.0, 0.1), (1.0, 0.3), (2.0, 1.0)] {
            let true_snr = (amp * amp) / (sigma * sigma);
            let samples = noisy_bpsk(200_000, amp, sigma, 42);
            let est = m2m4_snr(&samples).expect("well-posed");
            let err_db = (est.snr_db() - 10.0 * true_snr.log10()).abs();
            assert!(
                err_db < 0.5,
                "amp {amp} σ {sigma}: est {:.2} dB vs true {:.2} dB",
                est.snr_db(),
                10.0 * true_snr.log10()
            );
        }
    }

    #[test]
    fn pure_noise_estimates_near_zero_signal() {
        let samples = noisy_bpsk(100_000, 0.0, 1.0, 7);
        match m2m4_snr(&samples) {
            // Gaussian noise has M4 ≈ 3·M2², so the discriminant hovers
            // around −M2²; usually None, occasionally a tiny SNR.
            None => {}
            Some(est) => assert!(est.snr < 0.2, "snr {}", est.snr),
        }
    }

    #[test]
    fn short_windows_still_give_usable_estimates() {
        // A frame-sized window (a few hundred chips) must estimate within
        // a couple of dB — this is what the controller actually uses.
        let samples = noisy_bpsk(512, 1.0, 0.3, 9);
        let est = m2m4_snr(&samples).expect("well-posed");
        let true_db = 10.0 * (1.0f64 / 0.09).log10();
        assert!(
            (est.snr_db() - true_db).abs() < 2.0,
            "est {} dB",
            est.snr_db()
        );
    }

    #[test]
    fn snr_db_of_unity_is_zero() {
        let est = SnrEstimate {
            signal_power: 1.0,
            noise_power: 1.0,
            snr: 1.0,
        };
        assert_eq!(est.snr_db(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_input_panics() {
        m2m4_snr(&[]);
    }
}
