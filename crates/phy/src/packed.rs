//! Bit-packed Manchester chip streams — the PHY fast path.
//!
//! The scalar pipeline models every chip as a [`Chip`] enum inside a `Vec`,
//! which costs 16 heap pushes per encoded byte and a branchy pair-match per
//! decoded bit. This module packs chips into `u64` words (HIGH = 1, chip
//! `i` at word `i / 64`, bit `i % 64`) so that:
//!
//! * encoding is one 256-entry byte → `u16` LUT lookup per byte
//!   ([`MANCHESTER_LUT`]), appended with two shifts;
//! * the mid-bit transition check is a word-wide XOR against the even-bit
//!   mask (`w ^ (w >> 1)` must light every even bit);
//! * soft statistics (HIGH counts, DC balance, chip-error counts) are
//!   `count_ones` over whole words.
//!
//! Every operation is bit-identical to its scalar counterpart in
//! [`crate::manchester`]; `crates/phy/tests/packed_identity.rs` pins the
//! equivalence with proptests. Buffers are reusable ([`PackedChips::clear`]
//! keeps capacity), so steady-state encode/decode performs zero heap
//! allocations.

use crate::manchester::Chip;

/// Byte → 16 Manchester chips, packed LSB-first in transmission order.
///
/// Bit `2t` of `MANCHESTER_LUT[b]` is the first chip of transmitted bit
/// `t` (the byte's bit `7 - t`; bytes go out MSB-first) and bit `2t + 1`
/// the second chip: a `1` bit maps to `HIGH, LOW` (`0b01` at chips
/// `2t, 2t+1`), a `0` bit to `LOW, HIGH` (`0b10`).
pub const MANCHESTER_LUT: [u16; 256] = manchester_lut();

const fn manchester_lut() -> [u16; 256] {
    let mut lut = [0u16; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut t = 0usize;
        let mut v = 0u16;
        while t < 8 {
            if (b >> (7 - t)) & 1 == 1 {
                v |= 1 << (2 * t); // HIGH, LOW
            } else {
                v |= 1 << (2 * t + 1); // LOW, HIGH
            }
            t += 1;
        }
        lut[b] = v;
        b += 1;
    }
    lut
}

/// Even-bit mask: the first chip of every Manchester pair.
const EVEN: u64 = 0x5555_5555_5555_5555;

/// Compacts the even-positioned bits of `x` (bits 0, 2, 4, …) into the low
/// 32 bits of the result — the inverse of a Morton interleave.
#[inline]
const fn compress_even(mut x: u64) -> u32 {
    x &= EVEN;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
    x = (x | (x >> 16)) & 0x0000_0000_ffff_ffff;
    x as u32
}

/// A chip stream packed one bit per chip (HIGH = 1) into `u64` words.
///
/// ```
/// use vlc_phy::packed::PackedChips;
///
/// let mut chips = PackedChips::new();
/// chips.encode_bytes(b"VLC");
/// assert_eq!(chips.len(), 3 * 16);
/// let mut out = Vec::new();
/// assert!(chips.decode_bytes_into(&mut out));
/// assert_eq!(out, b"VLC");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedChips {
    words: Vec<u64>,
    len: usize,
}

impl PackedChips {
    /// An empty stream.
    pub fn new() -> Self {
        PackedChips::default()
    }

    /// An empty stream with room for `chips` chips without reallocating.
    pub fn with_capacity(chips: usize) -> Self {
        PackedChips {
            words: Vec::with_capacity(chips.div_ceil(64)),
            len: 0,
        }
    }

    /// Removes all chips, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Number of chips in the stream.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the stream holds no chips.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying words; chip `i` is bit `i % 64` of word `i / 64`.
    /// Bits at positions `>= len()` are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Chip `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    pub fn get(&self, i: usize) -> Chip {
        assert!(i < self.len, "chip index {i} out of bounds ({})", self.len);
        if (self.words[i >> 6] >> (i & 63)) & 1 == 1 {
            Chip::High
        } else {
            Chip::Low
        }
    }

    /// Appends one chip.
    pub fn push(&mut self, chip: Chip) {
        let (w, off) = (self.len >> 6, self.len & 63);
        if w == self.words.len() {
            self.words.push(0);
        }
        if chip == Chip::High {
            self.words[w] |= 1u64 << off;
        }
        self.len += 1;
    }

    /// Appends `n <= 64` chips given LSB-first in `word`, assuming the
    /// stream length is currently a multiple of 64 (e.g. built solely
    /// through this method after a [`Self::clear`]). Bits at positions
    /// `>= n` must be zero.
    pub(crate) fn push_word_aligned(&mut self, word: u64, n: usize) {
        debug_assert!(self.len.is_multiple_of(64), "stream not word-aligned");
        debug_assert!(n <= 64);
        debug_assert!(n == 64 || word >> n == 0, "stray bits past n");
        self.words.push(word);
        self.len += n;
    }

    /// Appends 16 chips given LSB-first (bit 0 is the next chip on air).
    #[inline]
    fn push_u16(&mut self, v: u16) {
        let (w, off) = (self.len >> 6, self.len & 63);
        if w == self.words.len() {
            self.words.push(0);
        }
        self.words[w] |= (v as u64) << off;
        if off > 48 {
            if w + 1 == self.words.len() {
                self.words.push(0);
            }
            self.words[w + 1] |= (v as u64) >> (64 - off);
        }
        self.len += 16;
    }

    /// Appends the Manchester encoding of `data` (16 chips per byte),
    /// the packed equivalent of [`crate::manchester::manchester_encode`].
    pub fn encode_bytes(&mut self, data: &[u8]) {
        self.words.reserve(data.len().div_ceil(4) + 1);
        for &b in data {
            self.push_u16(MANCHESTER_LUT[b as usize]);
        }
    }

    /// Appends the Manchester encoding of a bit slice, the packed
    /// equivalent of [`crate::manchester::manchester_encode_bits`].
    pub fn encode_bits(&mut self, bits: &[bool]) {
        for &b in bits {
            // 1 → HIGH, LOW (0b01); 0 → LOW, HIGH (0b10).
            let pair = if b { 0b01u64 } else { 0b10u64 };
            let (w, off) = (self.len >> 6, self.len & 63);
            if w == self.words.len() {
                self.words.push(0);
            }
            self.words[w] |= pair << off;
            // A pair never straddles a word: len is even here.
            self.len += 2;
        }
    }

    /// Word-wise Manchester decode into `out` (cleared first), the packed
    /// equivalent of [`crate::manchester::manchester_decode`]. Returns
    /// `false` — like the scalar `None` — when the stream is not a whole
    /// number of bytes or any chip pair lacks a mid-bit transition.
    pub fn decode_bytes_into(&self, out: &mut Vec<u8>) -> bool {
        out.clear();
        if !self.len.is_multiple_of(16) {
            return false;
        }
        for (wi, &w) in self.words.iter().enumerate() {
            let chips_here = (self.len - wi * 64).min(64);
            if chips_here == 0 {
                break;
            }
            let pair_mask = if chips_here == 64 {
                EVEN
            } else {
                EVEN & ((1u64 << chips_here) - 1)
            };
            // Mid-bit transition check: each pair's two chips must differ.
            if (w ^ (w >> 1)) & pair_mask != pair_mask {
                return false;
            }
            // The first chip of each pair is the transmitted bit.
            let bits = compress_even(w);
            let mut k = 0;
            while k * 16 < chips_here {
                // Bits arrive MSB-first: reverse to recover the byte.
                out.push(((bits >> (8 * k)) as u8).reverse_bits());
                k += 1;
            }
        }
        true
    }

    /// Convenience wrapper over [`Self::decode_bytes_into`] that allocates.
    pub fn decode_bytes(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(self.len / 16);
        self.decode_bytes_into(&mut out).then_some(out)
    }

    /// Word-wise decode to bits (non-byte-aligned lengths allowed), the
    /// packed equivalent of [`crate::manchester::manchester_decode_bits`].
    pub fn decode_bits_into(&self, out: &mut Vec<bool>) -> bool {
        out.clear();
        if !self.len.is_multiple_of(2) {
            return false;
        }
        for (wi, &w) in self.words.iter().enumerate() {
            let chips_here = (self.len - wi * 64).min(64);
            if chips_here == 0 {
                break;
            }
            let pair_mask = if chips_here == 64 {
                EVEN
            } else {
                EVEN & ((1u64 << chips_here) - 1)
            };
            if (w ^ (w >> 1)) & pair_mask != pair_mask {
                return false;
            }
            let bits = compress_even(w);
            for k in 0..chips_here / 2 {
                out.push((bits >> k) & 1 == 1);
            }
        }
        true
    }

    /// Number of HIGH chips (a `count_ones` sweep — the soft statistic
    /// behind DC balance and chip-error counting).
    pub fn count_high(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// DC balance: mean chip amplitude with HIGH = +1, LOW = −1
    /// (0.0 = perfectly balanced). Matches
    /// [`crate::manchester::dc_balance`].
    pub fn dc_balance(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let high = self.count_high() as f64;
        (2.0 * high - self.len as f64) / self.len as f64
    }

    /// Number of chip positions where `self` and `other` differ
    /// (XOR + `count_ones`; the pre-FEC chip-error count).
    ///
    /// # Panics
    /// Panics when the lengths differ.
    pub fn diff_count(&self, other: &PackedChips) -> usize {
        assert_eq!(self.len, other.len, "chip stream lengths differ");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Appends every chip of `other` (word-wise; the packed equivalent of
    /// `Vec::extend_from_slice` on scalar chips).
    pub fn extend_from(&mut self, other: &PackedChips) {
        let n_words = other.len.div_ceil(64);
        self.words.reserve(n_words + 1);
        if self.len & 63 == 0 {
            self.words.extend_from_slice(&other.words[..n_words]);
            self.len += other.len;
            return;
        }
        for wi in 0..n_words {
            let w = other.words[wi];
            let chips_here = (other.len - wi * 64).min(64);
            let (sw, off) = (self.len >> 6, self.len & 63);
            if sw == self.words.len() {
                self.words.push(0);
            }
            self.words[sw] |= w << off;
            if chips_here > 64 - off {
                if sw + 1 == self.words.len() {
                    self.words.push(0);
                }
                self.words[sw + 1] |= w >> (64 - off);
            }
            self.len += chips_here;
        }
    }

    /// Builds a packed stream from scalar chips.
    pub fn from_chips(chips: &[Chip]) -> Self {
        let mut out = PackedChips::with_capacity(chips.len());
        for &c in chips {
            out.push(c);
        }
        out
    }

    /// Expands to scalar chips (for interop with the reference path).
    pub fn to_chips(&self) -> Vec<Chip> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Iterates the chips in order without unpacking to a `Vec`.
    pub fn iter(&self) -> impl Iterator<Item = Chip> + '_ {
        (0..self.len).map(|i| self.get(i))
    }
}

/// Encodes bytes into a fresh packed stream (allocating counterpart of
/// [`PackedChips::encode_bytes`]).
pub fn packed_encode(data: &[u8]) -> PackedChips {
    let mut out = PackedChips::with_capacity(data.len() * 16);
    out.encode_bytes(data);
    out
}

/// Decodes a packed stream to bytes, `None` on an invalid stream —
/// the packed twin of [`crate::manchester::manchester_decode`].
pub fn packed_decode(chips: &PackedChips) -> Option<Vec<u8>> {
    chips.decode_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manchester::{manchester_decode, manchester_encode};

    #[test]
    fn lut_matches_scalar_encoder() {
        for b in 0..=255u8 {
            let scalar = manchester_encode(&[b]);
            let lut = MANCHESTER_LUT[b as usize];
            for (j, &chip) in scalar.iter().enumerate() {
                let bit = (lut >> j) & 1;
                assert_eq!(bit == 1, chip == Chip::High, "byte {b:#04x} chip {j}");
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let data = [0x00, 0xFF, 0x55, 0xAA, 0x13, 0x37, 0x7E];
        let packed = packed_encode(&data);
        assert_eq!(packed.len(), data.len() * 16);
        assert_eq!(packed.decode_bytes(), Some(data.to_vec()));
        assert_eq!(packed.to_chips(), manchester_encode(&data));
        assert_eq!(packed.dc_balance(), 0.0);
    }

    #[test]
    fn invalid_pair_is_rejected_like_scalar() {
        let mut chips = manchester_encode(&[0x42]);
        chips[3] = chips[2]; // destroy a transition
        let packed = PackedChips::from_chips(&chips);
        assert_eq!(manchester_decode(&chips), None);
        assert_eq!(packed.decode_bytes(), None);
    }

    #[test]
    fn misaligned_length_is_rejected() {
        let mut p = packed_encode(&[0xAB]);
        p.push(Chip::High);
        assert_eq!(p.decode_bytes(), None);
        let mut bits = Vec::new();
        p.push(Chip::Low);
        // 18 chips: byte-decode fails, bit-decode handles 9 bits.
        assert!(!p.decode_bytes_into(&mut Vec::new()));
        assert!(!p.decode_bits_into(&mut bits) || bits.len() == 9);
    }

    #[test]
    fn bit_level_roundtrip_non_aligned() {
        let bits = vec![true, false, true, true, false];
        let mut p = PackedChips::new();
        p.encode_bits(&bits);
        assert_eq!(p.len(), 10);
        let mut got = Vec::new();
        assert!(p.decode_bits_into(&mut got));
        assert_eq!(got, bits);
    }

    #[test]
    fn diff_count_counts_flips() {
        let a = packed_encode(&[0xAA; 8]);
        let mut b = a.clone();
        assert_eq!(a.diff_count(&b), 0);
        b.words[0] ^= 0b1001;
        b.words[1] ^= 1 << 63;
        assert_eq!(a.diff_count(&b), 3);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut p = packed_encode(&[0x11; 100]);
        let cap = p.words.capacity();
        p.clear();
        assert!(p.is_empty());
        p.encode_bytes(&[0x22; 100]);
        assert_eq!(p.words.capacity(), cap, "clear must keep the allocation");
        assert_eq!(p.decode_bytes(), Some(vec![0x22; 100]));
    }

    #[test]
    fn push_across_word_boundaries() {
        // 4 bytes = 64 chips: exactly one word; the 5th byte spills.
        let p = packed_encode(&[0xAA, 0xAA, 0xAA, 0x55, 0x7E]);
        assert_eq!(p.words().len(), 2);
        assert_eq!(
            p.to_chips(),
            manchester_encode(&[0xAA, 0xAA, 0xAA, 0x55, 0x7E])
        );
    }

    #[test]
    fn extend_from_matches_scalar_concat() {
        // Aligned (4 bytes = one whole word) and misaligned (odd chip) tails.
        let preamble = packed_encode(&[0xAA, 0xAA, 0xAA, 0x55]);
        let body = packed_encode(&[0x13, 0x37, 0xC0, 0xFF, 0xEE]);
        let mut joined = preamble.clone();
        joined.extend_from(&body);
        let mut scalar = manchester_encode(&[0xAA, 0xAA, 0xAA, 0x55]);
        scalar.extend(manchester_encode(&[0x13, 0x37, 0xC0, 0xFF, 0xEE]));
        assert_eq!(joined.to_chips(), scalar);

        let mut odd = PackedChips::new();
        odd.push(Chip::High);
        odd.extend_from(&body);
        let mut scalar_odd = vec![Chip::High];
        scalar_odd.extend(manchester_encode(&[0x13, 0x37, 0xC0, 0xFF, 0xEE]));
        assert_eq!(odd.to_chips(), scalar_odd);
    }

    #[test]
    fn count_high_is_half_for_manchester() {
        let p = packed_encode(&[0xC3, 0x00, 0xFF]);
        assert_eq!(p.count_high(), p.len() / 2);
    }
}
