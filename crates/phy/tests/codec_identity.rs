//! Codec-stack identity: every stack in the [`vlc_phy::codec::registry`]
//! must (a) roundtrip every payload up to the paper maximum, (b) keep its
//! zero-alloc workspace path byte-identical to its allocating reference —
//! on clean streams *and* under injected corruption, where accept/reject
//! and every recovered byte must agree — and (c) reject truncated streams
//! identically. Mirrors `packed_identity.rs`; `cargo tier2` replays this
//! suite at `DENSEVLC_JOBS=1` and `DENSEVLC_JOBS=max`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vlc_phy::codec::{registry, CodecError, CodecStack};

/// Drives one stack's workspace and reference paths over the same corrupted
/// stream and asserts they agree exactly, returning the shared outcome.
fn twin_decode(
    stack: &mut dyn CodecStack,
    coded: &[u8],
    payload_len: usize,
) -> Result<(Vec<u8>, usize), CodecError> {
    // Seed the output with a sentinel prefix: decode_into must append, and
    // must append nothing on error.
    let mut ws_out = vec![0xEE, 0xBB];
    let ws_res = stack.decode_into(coded, payload_len, &mut ws_out);
    let ref_res = stack.decode_ref(coded, payload_len);
    match (ws_res, &ref_res) {
        (Ok(ws_corrected), Ok((ref_payload, ref_corrected))) => {
            assert_eq!(&ws_out[..2], &[0xEE, 0xBB], "stack {}", stack.name());
            assert_eq!(&ws_out[2..], &ref_payload[..], "stack {}", stack.name());
            assert_eq!(ws_corrected, *ref_corrected, "stack {}", stack.name());
        }
        (Err(ws_err), Err(ref_err)) => {
            assert_eq!(ws_err, *ref_err, "stack {}", stack.name());
            assert_eq!(
                ws_out,
                [0xEE, 0xBB],
                "stack {}: failed decode must not emit bytes",
                stack.name()
            );
        }
        (ws, _) => panic!(
            "stack {}: workspace {ws:?} disagrees with reference {ref_res:?}",
            stack.name()
        ),
    }
    ref_res
}

proptest! {
    /// Clean roundtrip for every registered stack, payloads 0..=200 (the
    /// paper's Table 3 payload ceiling): encode twins agree byte-for-byte,
    /// decode twins recover the exact payload.
    #[test]
    fn clean_roundtrip_identity(payload in proptest::collection::vec(any::<u8>(), 0..=200)) {
        for stack in registry().iter_mut() {
            let mut coded = Vec::new();
            stack.encode_into(&payload, &mut coded);
            prop_assert_eq!(coded.len(), stack.encoded_len(payload.len()), "stack {}", stack.name());
            prop_assert_eq!(&coded, &stack.encode_ref(&payload), "stack {}", stack.name());
            let (decoded, _) = twin_decode(stack.as_mut(), &coded, payload.len())
                .expect("clean stream must decode");
            prop_assert_eq!(&decoded, &payload, "stack {}", stack.name());
        }
    }

    /// Multi-chunk payloads (several RS chunks, > 1 KiB convolutional
    /// trellis): same twin identities hold past the single-chunk regime.
    #[test]
    fn multi_chunk_roundtrip_identity(payload in proptest::collection::vec(any::<u8>(), 401..=517)) {
        for stack in registry().iter_mut() {
            let mut coded = Vec::new();
            stack.encode_into(&payload, &mut coded);
            prop_assert_eq!(&coded, &stack.encode_ref(&payload), "stack {}", stack.name());
            let (decoded, _) = twin_decode(stack.as_mut(), &coded, payload.len())
                .expect("clean stream must decode");
            prop_assert_eq!(&decoded, &payload, "stack {}", stack.name());
        }
    }

    /// Corruption from zero to well past every stack's budget: the
    /// workspace and reference twins accept/reject identically and agree on
    /// every recovered byte and corrected count. When decode succeeds *and*
    /// the stack offers any correction guarantee, the payload must be the
    /// original (detect-only stacks reject any corruption instead).
    #[test]
    fn corrupted_stream_identity(
        payload in proptest::collection::vec(any::<u8>(), 1..=200),
        err_seed in any::<u64>(),
        n_err in 0usize..=24,
    ) {
        for stack in registry().iter_mut() {
            let mut coded = Vec::new();
            stack.encode_into(&payload, &mut coded);
            let mut rng = StdRng::seed_from_u64(err_seed);
            let n_err = n_err.min(coded.len());
            let mut positions = std::collections::HashSet::new();
            while positions.len() < n_err {
                positions.insert(rng.gen_range(0..coded.len()));
            }
            for &p in &positions {
                coded[p] ^= rng.gen_range(1..=255u8);
            }
            let outcome = twin_decode(stack.as_mut(), &coded, payload.len());
            if let Ok((decoded, corrected)) = outcome {
                if n_err == 0 {
                    prop_assert_eq!(&decoded, &payload, "stack {}", stack.name());
                    prop_assert_eq!(corrected, 0, "stack {}", stack.name());
                } else if stack.correction().t_per_block > 0 {
                    // An RS-family success is a *guaranteed-correct*
                    // success: the decoded payload is the original.
                    prop_assert_eq!(&decoded, &payload, "stack {}", stack.name());
                }
                // Viterbi successes under heavy corruption may be wrong
                // payloads that happen to pass CRC (~2^-32); the twin
                // agreement above is the contract being tested.
            }
        }
    }

    /// Truncation at any point is the same `BadLength` for both twins.
    #[test]
    fn truncation_identity(
        payload in proptest::collection::vec(any::<u8>(), 1..=200),
        cut in 1usize..64,
    ) {
        for stack in registry().iter_mut() {
            let mut coded = Vec::new();
            stack.encode_into(&payload, &mut coded);
            let cut = cut.min(coded.len());
            coded.truncate(coded.len() - cut);
            let err = twin_decode(stack.as_mut(), &coded, payload.len())
                .expect_err("truncated stream must be rejected");
            prop_assert_eq!(err, CodecError::BadLength { len: coded.len() }, "stack {}", stack.name());
        }
    }

    /// Workspace reuse across differently-sized payloads leaves no residue:
    /// a stack that just processed a large frame must encode/decode a small
    /// one identically to a fresh stack.
    #[test]
    fn workspace_reuse_identity(
        first in proptest::collection::vec(any::<u8>(), 100..=517),
        second in proptest::collection::vec(any::<u8>(), 0..=99),
    ) {
        let mut warmed = registry();
        for stack in warmed.iter_mut() {
            let mut coded = Vec::new();
            stack.encode_into(&first, &mut coded);
            let mut out = Vec::new();
            stack.decode_into(&coded, first.len(), &mut out).expect("clean");
        }
        for (stack, fresh) in warmed.iter_mut().zip(registry().iter_mut()) {
            let mut warm_coded = Vec::new();
            stack.encode_into(&second, &mut warm_coded);
            let mut fresh_coded = Vec::new();
            fresh.encode_into(&second, &mut fresh_coded);
            prop_assert_eq!(&warm_coded, &fresh_coded, "stack {}", stack.name());
            let mut warm_out = Vec::new();
            let warm = stack.decode_into(&warm_coded, second.len(), &mut warm_out);
            let mut fresh_out = Vec::new();
            let fresh_res = fresh.decode_into(&fresh_coded, second.len(), &mut fresh_out);
            prop_assert_eq!(warm, fresh_res, "stack {}", stack.name());
            prop_assert_eq!(&warm_out, &fresh_out, "stack {}", stack.name());
        }
    }
}
