//! Packed-vs-scalar identity: the bit-packed fast path must be
//! bit-identical to the scalar reference for encode, decode (including
//! invalid streams), non-byte-aligned bit slices, and the Reed–Solomon
//! workspace (parity bytes, corrected blocks, error positions/results) —
//! for random payloads and random bit flips beyond the correction
//! capacity. `cargo tier2` replays this suite at `DENSEVLC_JOBS=1` and
//! `DENSEVLC_JOBS=max`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vlc_phy::manchester::{
    dc_balance, manchester_decode, manchester_decode_bits, manchester_encode,
    manchester_encode_bits, Chip,
};
use vlc_phy::packed::{packed_encode, PackedChips};
use vlc_phy::rs::{ReedSolomon, RsCodec};
use vlc_phy::waveform::{
    correlate_pattern, correlate_template, render, render_into, render_packed_into, slice_chips,
    slice_chips_packed_into, template_energy, WaveformConfig,
};
use vlc_phy::{Frame, FrameHeader};

proptest! {
    /// Packed encode produces the exact chip stream of the scalar encoder,
    /// and packed decode returns the exact bytes.
    #[test]
    fn encode_decode_identity(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let scalar = manchester_encode(&data);
        let packed = packed_encode(&data);
        prop_assert_eq!(packed.len(), scalar.len());
        prop_assert_eq!(packed.to_chips(), scalar.clone());
        prop_assert_eq!(packed.decode_bytes(), manchester_decode(&scalar));
        prop_assert_eq!(packed.decode_bytes(), Some(data));
        // Soft statistics agree too.
        prop_assert!((packed.dc_balance() - dc_balance(&scalar)).abs() < 1e-15);
    }

    /// Random chip-level corruption (which may destroy mid-bit
    /// transitions): both decoders accept/reject identically and agree on
    /// the decoded bytes when they accept.
    #[test]
    fn corrupted_stream_identity(
        data in proptest::collection::vec(any::<u8>(), 1..64),
        flips in proptest::collection::vec(any::<u16>(), 0..40),
    ) {
        let mut chips = manchester_encode(&data);
        for f in flips {
            let i = f as usize % chips.len();
            chips[i] = if chips[i] == Chip::High { Chip::Low } else { Chip::High };
        }
        let packed = PackedChips::from_chips(&chips);
        prop_assert_eq!(packed.decode_bytes(), manchester_decode(&chips));
        let mut bits = Vec::new();
        let ok = packed.decode_bits_into(&mut bits);
        match manchester_decode_bits(&chips) {
            Some(scalar_bits) => {
                prop_assert!(ok);
                prop_assert_eq!(bits, scalar_bits);
            }
            None => prop_assert!(!ok),
        }
    }

    /// Non-byte-aligned bit slices: packed bit encode/decode mirrors the
    /// scalar bit path exactly.
    #[test]
    fn bit_slice_identity(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
        let scalar = manchester_encode_bits(&bits);
        let mut packed = PackedChips::new();
        packed.encode_bits(&bits);
        prop_assert_eq!(packed.to_chips(), scalar.clone());
        let mut decoded = Vec::new();
        prop_assert!(packed.decode_bits_into(&mut decoded));
        prop_assert_eq!(&decoded, &bits);
        prop_assert_eq!(manchester_decode_bits(&scalar), Some(bits));
    }

    /// Truncated (odd / non-multiple-of-16) streams are rejected by both.
    #[test]
    fn truncation_identity(
        data in proptest::collection::vec(any::<u8>(), 1..16),
        cut in 1usize..16,
    ) {
        let chips = manchester_encode(&data);
        let cut = cut.min(chips.len() - 1);
        let truncated = &chips[..chips.len() - cut];
        let packed = PackedChips::from_chips(truncated);
        prop_assert_eq!(packed.decode_bytes(), manchester_decode(truncated));
        let mut bits = Vec::new();
        let ok = packed.decode_bits_into(&mut bits);
        prop_assert_eq!(ok, manchester_decode_bits(truncated).is_some());
    }

    /// The RsCodec workspace is byte-identical to the scalar codec:
    /// same parity on encode, same result (count or error) and same
    /// corrected block — hence the same error positions — on decode, for
    /// corruption from 0 to beyond the t = 8 capacity.
    #[test]
    fn rs_codec_identity(
        data in proptest::collection::vec(any::<u8>(), 1..=200),
        err_seed in any::<u64>(),
        n_err in 0usize..=12,
    ) {
        let rs = ReedSolomon::paper();
        let mut codec = RsCodec::paper();
        // Parity identity (satellite: in-place add_shifted must keep
        // encode byte-identical on this corpus).
        let clean = rs.encode(&data);
        let mut codec_out = Vec::new();
        codec.encode_into(&data, &mut codec_out);
        prop_assert_eq!(&codec_out, &clean);

        let mut rng = StdRng::seed_from_u64(err_seed);
        let mut scalar_block = clean.clone();
        let mut packed_block = clean;
        let n_err = n_err.min(scalar_block.len());
        let mut positions = std::collections::HashSet::new();
        while positions.len() < n_err {
            positions.insert(rng.gen_range(0..scalar_block.len()));
        }
        for &p in &positions {
            let flip = rng.gen_range(1..=255u8);
            scalar_block[p] ^= flip;
            packed_block[p] ^= flip;
        }
        let scalar_res = rs.decode(&mut scalar_block);
        let packed_res = codec.decode_in_place(&mut packed_block);
        prop_assert_eq!(scalar_res, packed_res);
        prop_assert_eq!(scalar_block, packed_block);
    }

    /// Multi-chunk payloads through the frame layer: the parts-based
    /// zero-alloc path reproduces `to_bytes`/`from_bytes` exactly.
    #[test]
    fn frame_parts_identity(
        payload in proptest::collection::vec(any::<u8>(), 0..450),
        mask in any::<u64>(),
        at_pos in any::<u32>(),
    ) {
        let rs = ReedSolomon::paper();
        let mut codec = RsCodec::paper();
        let header = FrameHeader { dst: 7, src: 3, protocol: 1 };
        let frame = Frame::new(mask, header, payload.clone());
        let mut wire = Vec::new();
        Frame::encode_parts_into(mask, &header, &payload, &mut codec, &mut wire);
        prop_assert_eq!(&wire, &frame.to_bytes(&rs));
        if !wire.is_empty() {
            let p = at_pos as usize % wire.len();
            wire[p] ^= 0x5a;
        }
        let mut scratch = Vec::new();
        let mut payload_out = Vec::new();
        let parts = Frame::decode_parts_into(&wire, &mut codec, &mut scratch, &mut payload_out);
        match Frame::from_bytes(&wire, &rs) {
            Ok((f, fixed)) => {
                let (got_mask, got_header, got_fixed) = parts.expect("parts path must agree");
                prop_assert_eq!(got_mask, f.tx_id_mask);
                prop_assert_eq!(got_header, f.header);
                prop_assert_eq!(got_fixed, fixed);
                prop_assert_eq!(payload_out, f.payload);
            }
            Err(e) => prop_assert_eq!(parts.expect_err("parts path must agree"), e),
        }
    }

    /// Waveform kernels: the run-based renderer, packed slicer, and
    /// hoisted-template correlator are bit-identical to the scalar ops
    /// for random amplitudes, delays, and rate ratios.
    #[test]
    fn waveform_kernel_identity(
        data in proptest::collection::vec(any::<u8>(), 1..12),
        amp in 0.01f64..2.0,
        delay_us in -20.0f64..60.0,
        spc_num in 2u32..25,
    ) {
        let cfg = WaveformConfig {
            symbol_rate_hz: 100_000.0,
            sample_rate_hz: 100_000.0 * spc_num as f64 / 2.0,
        };
        let chips = manchester_encode(&data);
        let packed = packed_encode(&data);
        let n = (chips.len() as f64 * cfg.samples_per_chip()).ceil() as usize + 120;
        let delay = delay_us * 1e-6;
        let reference = render(&chips, &cfg, amp, delay, n);
        let mut buf = Vec::new();
        render_into(&chips, &cfg, amp, delay, n, &mut buf);
        prop_assert_eq!(&buf, &reference);
        render_packed_into(&packed, &cfg, amp, delay, n, &mut buf);
        prop_assert_eq!(&buf, &reference);

        let scalar_sliced = slice_chips(&reference, &cfg, 0, chips.len());
        let mut packed_sliced = PackedChips::new();
        let ok = slice_chips_packed_into(&reference, &cfg, 0, chips.len(), &mut packed_sliced);
        match scalar_sliced {
            Some(s) => {
                prop_assert!(ok);
                prop_assert_eq!(packed_sliced.to_chips(), s);
            }
            None => prop_assert!(!ok),
        }

        let template = render(
            &chips,
            &cfg,
            1.0,
            0.0,
            (chips.len() as f64 * cfg.samples_per_chip()).round() as usize,
        );
        let via_pattern = correlate_pattern(&reference, &cfg, &chips, 0, 100);
        let via_template =
            correlate_template(&reference, &template, template_energy(&template), 0, 100);
        prop_assert_eq!(via_pattern, via_template);
    }
}
