//! Empirical verification of `Interleaver::burst_tolerance`: across a
//! depth × nroots grid, a single channel burst of exactly `depth × t`
//! bytes decodes through the interleaved RS stack, while a burst one byte
//! longer — aligned so one chunk takes `t + 1` errors — is a detected
//! failure. The payload is sized to `depth` full RS chunks so each
//! interleaver row is exactly one chunk and the guarantee is tight.

use vlc_phy::codec::{CodecStack, InterleavedRsStack};
use vlc_phy::interleave::Interleaver;
use vlc_phy::rs::RsParams;

/// Encodes `depth` full chunks, burns a burst of `burst_len` on-air bytes
/// starting at a column boundary (so the extra byte of an over-budget
/// burst concentrates on one chunk), and returns the decode outcome.
fn run_burst(nroots: usize, depth: usize, burst_len: usize) -> Result<(Vec<u8>, usize), ()> {
    let mut stack = InterleavedRsStack::new(nroots, depth);
    let payload_len = depth * RsParams::PAPER.chunk;
    let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
    let mut on_air = Vec::new();
    stack.encode_into(&payload, &mut on_air);
    assert_eq!(on_air.len(), depth * (RsParams::PAPER.chunk + nroots));
    // Column boundary: on-air index `col * depth` maps to row 0, so indices
    // start..start+burst_len cycle the rows and row 0 absorbs any excess.
    let start = 3 * depth;
    assert!(start + burst_len <= on_air.len());
    for b in on_air.iter_mut().skip(start).take(burst_len) {
        *b ^= 0xA5;
    }
    let mut out = Vec::new();
    match stack.decode_into(&on_air, payload_len, &mut out) {
        Ok(corrected) => {
            assert_eq!(out, payload, "a claimed success must be the original");
            Ok((out, corrected))
        }
        Err(_) => Err(()),
    }
}

#[test]
fn burst_tolerance_is_tight_across_the_grid() {
    for depth in [2usize, 4, 8] {
        for nroots in [4usize, 8, 16] {
            let t = nroots / 2;
            let il = Interleaver::new(depth);
            let tolerance = il.burst_tolerance(t);
            assert_eq!(tolerance, depth * t);

            // The advertised metadata agrees with the formula.
            let stack = InterleavedRsStack::new(nroots, depth);
            assert_eq!(stack.correction().burst_tolerance, tolerance);
            assert_eq!(stack.correction().t_per_block, t);

            // A maximal burst decodes, every corrupted byte counted.
            let (_, corrected) = run_burst(nroots, depth, tolerance).unwrap_or_else(|_| {
                panic!("depth {depth} nroots {nroots}: burst of {tolerance} must decode")
            });
            assert_eq!(
                corrected, tolerance,
                "depth {depth} nroots {nroots}: corrected count"
            );

            // One more byte concentrates t + 1 errors on one chunk: the
            // decode must fail *detectably* (Err, not silent corruption —
            // run_burst asserts any Ok is the original payload).
            assert!(
                run_burst(nroots, depth, tolerance + 1).is_err(),
                "depth {depth} nroots {nroots}: burst of {} must be detected",
                tolerance + 1
            );
        }
    }
}

#[test]
fn sub_tolerance_bursts_always_decode() {
    // Interior points of the guarantee, not just the boundary.
    for depth in [2usize, 4, 8] {
        for nroots in [4usize, 8, 16] {
            let t = nroots / 2;
            for burst in [1usize, t, depth * t / 2] {
                let burst = burst.max(1);
                let (_, corrected) = run_burst(nroots, depth, burst).unwrap_or_else(|_| {
                    panic!("depth {depth} nroots {nroots}: burst of {burst} must decode")
                });
                assert_eq!(corrected, burst);
            }
        }
    }
}

#[test]
fn without_interleaving_the_same_maximal_burst_fails() {
    // Control arm: depth 1 (no interleaving) cannot absorb a depth-8
    // stack's budget — the burst lands in one chunk and kills it.
    let depth = 8;
    let nroots = 16;
    let tolerance = Interleaver::new(depth).burst_tolerance(nroots / 2);
    assert!(
        run_burst(nroots, 1, tolerance).is_err(),
        "a {tolerance}-byte burst must kill the non-interleaved stack"
    );
}
