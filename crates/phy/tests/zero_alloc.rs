//! Steady-state allocation audit for the PHY fast path.
//!
//! The shared counting allocator (`vlc_prof::alloc_counter`) wraps the
//! system allocator; each test warms the reusable workspaces (so every
//! `Vec` reaches its high-water capacity) and then asserts that further
//! encode/decode/render/slice cycles perform exactly zero heap
//! allocations. The counter is thread-local, so the parallel test
//! harness's own allocations never bleed into a measurement window.

use vlc_phy::codec::registry;
use vlc_phy::packed::{packed_encode, PackedChips};
use vlc_phy::rs::RsCodec;
use vlc_phy::waveform::{
    correlate_template, render_packed_into, slice_chips_packed_into, template_energy,
    WaveformConfig,
};
use vlc_phy::{Frame, FrameHeader};
use vlc_prof::alloc_counter::{allocations_during, CountingAlloc};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warmed_rs_codec_is_zero_alloc() {
    let mut codec = RsCodec::paper();
    let data: Vec<u8> = (0..200u16).map(|i| (i * 7 + 3) as u8).collect();
    let mut block = Vec::new();

    // Warm-up: establishes every scratch capacity inside the codec and the
    // caller-owned output block.
    codec.encode_into(&data, &mut block);
    block[4] ^= 0x41;
    block[90] ^= 0x7f;
    codec.decode_in_place(&mut block).expect("correctable");

    let n = allocations_during(|| {
        for round in 0..32u8 {
            block.clear();
            codec.encode_into(&data, &mut block);
            let pos = (round as usize * 5) % block.len();
            block[pos] ^= round | 1;
            codec.decode_in_place(&mut block).expect("correctable");
        }
    });
    assert_eq!(n, 0, "warmed RsCodec made {n} heap allocations");
}

#[test]
fn warmed_codec_stacks_are_zero_alloc() {
    // Every stack in the registry: after one warm-up encode/decode cycle
    // (which sizes the stack-owned scratch and the caller buffers), further
    // frames — clean and corrupted — allocate nothing.
    for stack in registry().iter_mut() {
        let payload: Vec<u8> = (0..200u16).map(|i| (i * 11 + 5) as u8).collect();
        let mut coded = Vec::new();
        let mut out = Vec::new();

        stack.encode_into(&payload, &mut coded);
        stack
            .decode_into(&coded, payload.len(), &mut out)
            .expect("clean warm-up decodes");
        assert_eq!(out, payload);

        // Warm the error path too: the RS correction scratch (syndromes,
        // error locator) only reaches capacity on the first real fix-up.
        coded.clear();
        stack.encode_into(&payload, &mut coded);
        coded[7] ^= 0x24;
        out.clear();
        let _ = stack.decode_into(&coded, payload.len(), &mut out);

        let n = allocations_during(|| {
            for round in 0..16u8 {
                coded.clear();
                stack.encode_into(&payload, &mut coded);
                // Alternate clean frames with single-byte corruption; the
                // detect-only stacks reject the corrupted rounds, the FEC
                // stacks repair them — all without allocating.
                if round % 2 == 1 {
                    let pos = (round as usize * 37) % coded.len();
                    coded[pos] ^= 0x24;
                }
                out.clear();
                let _ = stack.decode_into(&coded, payload.len(), &mut out);
            }
        });
        assert_eq!(
            n,
            0,
            "warmed stack {} made {n} heap allocations",
            stack.name()
        );
    }
}

#[test]
fn warmed_codec_stacks_reject_truncation_without_allocating() {
    // The BadLength path (chip deletion / truncation in the campaign's
    // noise catalogue) must also stay allocation-free once warm.
    for stack in registry().iter_mut() {
        let payload = vec![0x5Au8; 150];
        let mut coded = Vec::new();
        let mut out = Vec::new();
        stack.encode_into(&payload, &mut coded);
        coded.pop();
        assert!(stack.decode_into(&coded, payload.len(), &mut out).is_err());

        let n = allocations_during(|| {
            for _ in 0..16 {
                assert!(stack.decode_into(&coded, payload.len(), &mut out).is_err());
            }
        });
        assert_eq!(
            n,
            0,
            "warmed stack {} allocated {n} times on truncated input",
            stack.name()
        );
    }
}

#[test]
fn warmed_packed_manchester_is_zero_alloc() {
    let data: Vec<u8> = (0..217u16).map(|i| (i * 31) as u8).collect();
    let mut chips = PackedChips::new();
    let mut decoded = Vec::new();

    chips.encode_bytes(&data);
    assert!(chips.decode_bytes_into(&mut decoded));
    assert_eq!(decoded, data);

    let n = allocations_during(|| {
        for _ in 0..32 {
            chips.clear();
            chips.encode_bytes(&data);
            assert!(chips.decode_bytes_into(&mut decoded));
        }
    });
    assert_eq!(n, 0, "warmed packed Manchester made {n} heap allocations");
}

#[test]
fn warmed_frame_render_slice_cycle_is_zero_alloc() {
    // The full per-frame PHY cycle the e2e pipeline performs, minus the
    // channel: frame bytes → packed chips → waveform → correlate → slice →
    // chips → frame bytes. Everything below reuses caller-owned scratch.
    let cfg = WaveformConfig::paper();
    let mut codec = RsCodec::paper();
    let header = FrameHeader {
        dst: 2,
        src: 1,
        protocol: 0,
    };
    let payload: Vec<u8> = (0..120u16).map(|i| (i * 13 + 1) as u8).collect();

    let mut wire = Vec::new();
    let mut chips = PackedChips::new();
    let mut samples = Vec::new();
    let mut sliced = PackedChips::new();
    let mut rx_bytes = Vec::new();
    let mut coded_scratch = Vec::new();
    let mut payload_out = Vec::new();

    let preamble = packed_encode(&[0xAA, 0xAA, 0xAA, 0x55]);
    let mut template = Vec::new();
    render_packed_into(
        &preamble,
        &cfg,
        1.0,
        0.0,
        (preamble.len() as f64 * cfg.samples_per_chip()).round() as usize,
        &mut template,
    );
    let t_energy = template_energy(&template);

    let mut cycle = |wire: &mut Vec<u8>,
                     chips: &mut PackedChips,
                     samples: &mut Vec<f64>,
                     sliced: &mut PackedChips,
                     rx_bytes: &mut Vec<u8>,
                     coded_scratch: &mut Vec<u8>,
                     payload_out: &mut Vec<u8>| {
        wire.clear();
        Frame::encode_parts_into(0b11, &header, &payload, &mut codec, wire);
        chips.clear();
        chips.extend_from(&preamble);
        chips.encode_bytes(wire);
        let n_samples = (chips.len() as f64 * cfg.samples_per_chip()).ceil() as usize + 64;
        render_packed_into(chips, &cfg, 0.8, 0.0, n_samples, samples);
        let (start, score) =
            correlate_template(samples, &template, t_energy, 0, 32).expect("preamble found");
        assert!(score > 0.9, "clean link must correlate");
        assert!(slice_chips_packed_into(
            samples,
            &cfg,
            start,
            chips.len(),
            sliced
        ));
        assert_eq!(sliced.diff_count(chips), 0);
        assert!(sliced.decode_bytes_into(rx_bytes));
        let skip = preamble.len() / 16;
        let (mask, got_header, corrected) =
            Frame::decode_parts_into(&rx_bytes[skip..], &mut codec, coded_scratch, payload_out)
                .expect("clean frame decodes");
        assert_eq!(mask, 0b11);
        assert_eq!(got_header, header);
        assert_eq!(corrected, 0);
        assert_eq!(payload_out, &payload);
    };

    // Warm-up cycle establishes all capacities.
    cycle(
        &mut wire,
        &mut chips,
        &mut samples,
        &mut sliced,
        &mut rx_bytes,
        &mut coded_scratch,
        &mut payload_out,
    );

    let n = allocations_during(|| {
        for _ in 0..8 {
            cycle(
                &mut wire,
                &mut chips,
                &mut samples,
                &mut sliced,
                &mut rx_bytes,
                &mut coded_scratch,
                &mut payload_out,
            );
        }
    });
    assert_eq!(n, 0, "warmed frame cycle made {n} heap allocations");
}
