//! End-to-end: populate a registry the way the stack does, snapshot it,
//! and prove both exporters reproduce the snapshot exactly.

use vlc_telemetry::{ManualClock, MetricsSnapshot, Registry};

fn populated_registry() -> Registry {
    let clock = ManualClock::new();
    let reg = Registry::with_clock_and_capacity(clock.clone(), 4);
    reg.counter("mac.rounds_planned").add(12);
    reg.counter("phy.frames_decoded").add(1000);
    reg.gauge("sim.blocked_links").set(2.0);
    reg.gauge("sync.offset_s").set(-3.2e-6);
    for i in 1..=20 {
        let _span = reg.span("alloc.optimal.solve_s");
        clock.advance(i as f64 * 1e-3);
    }
    // 6 events into a 4-slot ring: 2 drops.
    for round in 0..6 {
        reg.event("mac.controller", "replan", &[("round", &round.to_string())]);
    }
    reg
}

#[test]
fn json_round_trip_is_exact() {
    let snap = populated_registry().snapshot();
    let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn csv_round_trip_is_exact() {
    let snap = populated_registry().snapshot();
    let back = MetricsSnapshot::from_csv(&snap.to_csv()).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn ring_overflow_is_visible_in_snapshot() {
    let snap = populated_registry().snapshot();
    assert_eq!(snap.events.len(), 4);
    assert_eq!(snap.events_dropped, 2);
    // Oldest two (rounds 0 and 1) were evicted.
    assert_eq!(snap.events[0].fields[0].1, "2");
    assert_eq!(snap.events[3].fields[0].1, "5");
}

#[test]
fn manual_clock_spans_are_reproducible() {
    let a = populated_registry().snapshot();
    let b = populated_registry().snapshot();
    assert_eq!(a, b, "identical runs must produce identical snapshots");
    let solve = a.histogram("alloc.optimal.solve_s").unwrap();
    assert_eq!(solve.count, 20);
    // Samples were 1 ms..20 ms (sum 210 ms, up to clock-advance rounding).
    assert!((solve.sum - 0.210).abs() < 1e-12);
    assert!((solve.max - 0.020).abs() < 1e-15);
}

#[test]
fn summary_table_mentions_all_sections() {
    let table = populated_registry().snapshot().summary_table();
    assert!(table.contains("counters (2):"));
    assert!(table.contains("gauges (2):"));
    assert!(table.contains("histograms (1):"));
    assert!(table.contains("4 retained, 2 dropped"));
}
