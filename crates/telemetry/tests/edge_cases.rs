//! Edge cases of the telemetry primitives: quantiles of empty and
//! single-sample histograms, event-ring eviction order, and the drop
//! counter at exact-capacity fills.

use vlc_telemetry::{ManualClock, Registry};

#[test]
fn empty_histogram_reports_all_zero_quantiles() {
    let registry = Registry::new();
    let snap = registry.histogram("empty").snapshot();
    assert_eq!(snap.count, 0);
    assert_eq!(snap.sum, 0.0);
    assert_eq!(snap.min, 0.0);
    assert_eq!(snap.max, 0.0);
    assert_eq!((snap.p50, snap.p95, snap.p99), (0.0, 0.0, 0.0));
    assert_eq!(snap.mean(), 0.0, "mean of nothing is 0, not NaN");
    // Equality stays well-behaved (no NaN anywhere).
    assert_eq!(snap, Default::default());
}

#[test]
fn single_sample_histogram_puts_every_quantile_on_the_sample() {
    let registry = Registry::new();
    let h = registry.histogram("one");
    h.record(0.125);
    let snap = h.snapshot();
    assert_eq!(snap.count, 1);
    assert_eq!(snap.min, 0.125);
    assert_eq!(snap.max, 0.125);
    // Quantiles clamp to [min, max], so with one sample every quantile IS
    // that sample — not a bucket upper bound near it.
    assert_eq!(snap.p50, 0.125);
    assert_eq!(snap.p95, 0.125);
    assert_eq!(snap.p99, 0.125);
    assert_eq!(snap.mean(), 0.125);
}

#[test]
fn extreme_samples_clamp_into_the_outer_buckets() {
    let registry = Registry::new();
    let h = registry.histogram("extremes");
    h.record(0.0); // underflow bucket
    h.record(-3.0); // clamps to 0
    h.record(1e300); // far past the last bucket edge
    h.record(f64::NAN); // ignored entirely
    let snap = h.snapshot();
    assert_eq!(snap.count, 3, "NaN is not recorded");
    assert_eq!(snap.min, 0.0);
    assert_eq!(snap.max, 1e300);
    // Quantiles stay within the observed range even for clamped samples.
    assert!(snap.p99 <= snap.max && snap.p50 >= snap.min);
}

#[test]
fn event_ring_evicts_oldest_first_and_keeps_arrival_order() {
    let clock = ManualClock::new();
    let registry = Registry::with_clock_and_capacity(clock.clone(), 3);
    for i in 0..5 {
        clock.advance(1.0);
        registry.event("test", &format!("k{i}"), &[("i", &i.to_string())]);
    }
    let snap = registry.snapshot();
    // Capacity 3 after 5 events: k0 and k1 were evicted, oldest first.
    assert_eq!(snap.events_dropped, 2);
    let kinds: Vec<&str> = snap.events.iter().map(|e| e.kind.as_str()).collect();
    assert_eq!(kinds, ["k2", "k3", "k4"]);
    // Timestamps stay monotonically increasing across the survivors.
    assert!(snap.events.windows(2).all(|w| w[0].t_s < w[1].t_s));
}

#[test]
fn filling_exactly_to_capacity_drops_nothing() {
    let clock = ManualClock::new();
    let registry = Registry::with_clock_and_capacity(clock, 4);
    for i in 0..4 {
        registry.event("test", &format!("k{i}"), &[]);
    }
    let snap = registry.snapshot();
    assert_eq!(snap.events.len(), 4);
    assert_eq!(snap.events_dropped, 0, "exact fill evicts nothing");

    // One more event crosses the boundary: exactly one drop.
    registry.event("test", "k4", &[]);
    let snap = registry.snapshot();
    assert_eq!(snap.events.len(), 4);
    assert_eq!(snap.events_dropped, 1);
    assert_eq!(snap.events.first().unwrap().kind, "k1");
    assert_eq!(snap.events.last().unwrap().kind, "k4");
}
