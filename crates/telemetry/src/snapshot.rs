//! Plain-data capture of a registry's state.

use crate::event::Event;
use crate::histogram::HistogramSnapshot;

/// Everything a [`crate::Registry`] knows, frozen at one instant.
///
/// Instruments are sorted by name and events are oldest-first, so two
/// snapshots of identical runs compare equal — the type derives
/// `PartialEq` precisely so it can ride inside simulation results
/// (e.g. `densevlc`'s `Timeline`) and be asserted on in tests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, in name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, in name order.
    pub gauges: Vec<(String, f64)>,
    /// `(name, stats)` for every histogram, in name order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Retained trace events, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring before this snapshot.
    pub events_dropped: u64,
}

impl MetricsSnapshot {
    /// Value of the counter named `name`, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of the gauge named `name`, if it exists.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Statistics of the histogram named `name`, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Events whose `kind` matches, oldest first.
    pub fn events_of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Event> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Serializes to the JSON document described in [`crate::export::json`].
    pub fn to_json(&self) -> String {
        crate::export::json::to_json(self)
    }

    /// Parses a snapshot back from [`Self::to_json`] output.
    pub fn from_json(text: &str) -> Result<Self, crate::export::ParseError> {
        crate::export::json::from_json(text)
    }

    /// Serializes to the CSV document described in [`crate::export::csv`].
    pub fn to_csv(&self) -> String {
        crate::export::csv::to_csv(self)
    }

    /// Parses a snapshot back from [`Self::to_csv`] output.
    pub fn from_csv(text: &str) -> Result<Self, crate::export::ParseError> {
        crate::export::csv::from_csv(text)
    }

    /// Renders the human-readable summary table.
    pub fn summary_table(&self) -> String {
        crate::export::summary::summary_table(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("a".into(), 1), ("b".into(), 2)],
            gauges: vec![("g".into(), 0.5)],
            histograms: vec![(
                "h".into(),
                HistogramSnapshot {
                    count: 1,
                    sum: 2.0,
                    min: 2.0,
                    max: 2.0,
                    p50: 2.0,
                    p95: 2.0,
                    p99: 2.0,
                },
            )],
            events: vec![Event {
                t_s: 0.0,
                target: "t".into(),
                kind: "k".into(),
                fields: vec![],
            }],
            events_dropped: 0,
        }
    }

    #[test]
    fn name_lookups_work() {
        let s = sample();
        assert_eq!(s.counter("b"), Some(2));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.gauge("g"), Some(0.5));
        assert_eq!(s.histogram("h").unwrap().count, 1);
        assert_eq!(s.events_of_kind("k").count(), 1);
        assert_eq!(s.events_of_kind("other").count(), 0);
    }
}
