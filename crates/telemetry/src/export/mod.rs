//! Snapshot exporters: JSON, CSV, and a human-readable summary table.
//!
//! The workspace deliberately carries no serialization format crate, so
//! the JSON and CSV writers here are hand-rolled — and each ships with a
//! parser so `to_* / from_*` round-trips are enforced by tests rather
//! than assumed.

pub mod csv;
pub mod json;
pub mod summary;
pub mod value;

/// Failure while parsing an exported snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset (JSON) or line number (CSV) of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// A parse failure at byte offset / line `at`.
    pub fn new(at: usize, message: impl Into<String>) -> Self {
        ParseError {
            at,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}
