//! The human-readable summary table.

use crate::snapshot::MetricsSnapshot;

fn fmt_value(v: f64) -> String {
    let a = v.abs();
    if v == 0.0 {
        "0".to_string()
    } else if !(1e-3..1e6).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

/// Renders a fixed-width table of every instrument plus event totals.
pub fn summary_table(snap: &MetricsSnapshot) -> String {
    let name_width = snap
        .counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(snap.gauges.iter().map(|(n, _)| n.len()))
        .chain(snap.histograms.iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(4)
        .max("name".len());

    let mut out = String::new();
    out.push_str("== telemetry summary ==\n");

    if !snap.counters.is_empty() {
        out.push_str(&format!("counters ({}):\n", snap.counters.len()));
        for (name, v) in &snap.counters {
            out.push_str(&format!("  {name:<name_width$}  {v}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str(&format!("gauges ({}):\n", snap.gauges.len()));
        for (name, v) in &snap.gauges {
            out.push_str(&format!("  {name:<name_width$}  {}\n", fmt_value(*v)));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str(&format!("histograms ({}):\n", snap.histograms.len()));
        out.push_str(&format!(
            "  {:<name_width$}  {:>9} {:>11} {:>11} {:>11} {:>11} {:>11}\n",
            "name", "count", "mean", "p50", "p95", "p99", "max"
        ));
        for (name, h) in &snap.histograms {
            out.push_str(&format!(
                "  {name:<name_width$}  {:>9} {:>11} {:>11} {:>11} {:>11} {:>11}\n",
                h.count,
                fmt_value(h.mean()),
                fmt_value(h.p50),
                fmt_value(h.p95),
                fmt_value(h.p99),
                fmt_value(h.max),
            ));
        }
    }
    out.push_str(&format!(
        "events: {} retained, {} dropped\n",
        snap.events.len(),
        snap.events_dropped
    ));
    // Ring health: silent eviction is invisible unless surfaced here. The
    // event ring is part of the snapshot; the span ring lives in the
    // tracer, so drivers that trace record its drop count under the
    // `trace.spans_dropped` counter before snapshotting (densevlc-cli and
    // run_all both do).
    let span_drops = snap.counter("trace.spans_dropped");
    out.push_str(&format!(
        "rings: event ring dropped {}, span ring dropped {}\n",
        snap.events_dropped,
        span_drops.map_or_else(|| "n/a (no tracer)".to_string(), |d| d.to_string()),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::HistogramSnapshot;

    #[test]
    fn table_lists_every_instrument() {
        let snap = MetricsSnapshot {
            counters: vec![("mac.rounds_planned".into(), 12)],
            gauges: vec![("sim.blocked_links".into(), 2.0)],
            histograms: vec![(
                "alloc.optimal.solve_s".into(),
                HistogramSnapshot {
                    count: 3,
                    sum: 0.3,
                    min: 0.05,
                    max: 0.15,
                    p50: 0.1,
                    p95: 0.15,
                    p99: 0.15,
                },
            )],
            events: vec![],
            events_dropped: 4,
        };
        let table = summary_table(&snap);
        assert!(table.contains("mac.rounds_planned"));
        assert!(table.contains("12"));
        assert!(table.contains("sim.blocked_links"));
        assert!(table.contains("alloc.optimal.solve_s"));
        assert!(table.contains("0 retained, 4 dropped"));
        assert!(table.contains("event ring dropped 4, span ring dropped n/a"));
    }

    #[test]
    fn empty_snapshot_still_renders() {
        let table = summary_table(&MetricsSnapshot::default());
        assert!(table.contains("telemetry summary"));
        assert!(table.contains("0 retained, 0 dropped"));
    }

    #[test]
    fn span_ring_drops_surface_when_a_tracer_recorded_them() {
        let snap = MetricsSnapshot {
            counters: vec![("trace.spans_dropped".into(), 7)],
            ..Default::default()
        };
        let table = summary_table(&snap);
        assert!(table.contains("event ring dropped 0, span ring dropped 7"));
    }
}
