//! JSON export and import.
//!
//! Document shape (one object, key order fixed):
//!
//! ```json
//! {
//!   "counters":       { "name": 42, ... },
//!   "gauges":         { "name": 0.5, ... },
//!   "histograms":     { "name": { "count": 2, "sum": 3.0, "min": 1.0,
//!                                  "max": 2.0, "p50": 1.0, "p95": 2.0,
//!                                  "p99": 2.0 }, ... },
//!   "events":         [ { "t_s": 0.0, "target": "mac", "kind": "replan",
//!                         "fields": { "round": "3" } }, ... ],
//!   "events_dropped": 0
//! }
//! ```
//!
//! Floats are written with Rust's shortest round-trip formatting, so
//! `from_json(to_json(s)) == s` exactly. Non-finite floats (which no
//! instrument produces) serialize as `null` and parse back as 0.
//!
//! The value model and parser live in [`super::value`], shared with the
//! `vlc-obs` streaming exporter.

use super::value::{field, parse_json, push_f64, push_json_string, JsonValue};
use super::ParseError;
use crate::event::Event;
use crate::histogram::HistogramSnapshot;
use crate::snapshot::MetricsSnapshot;

/// Serializes a snapshot; see the module docs for the document shape.
pub fn to_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, name);
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, name);
        out.push(':');
        push_f64(&mut out, *v);
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, name);
        out.push_str(":{\"count\":");
        out.push_str(&h.count.to_string());
        for (key, v) in [
            ("sum", h.sum),
            ("min", h.min),
            ("max", h.max),
            ("p50", h.p50),
            ("p95", h.p95),
            ("p99", h.p99),
        ] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            push_f64(&mut out, v);
        }
        out.push('}');
    }
    out.push_str("},\"events\":[");
    for (i, e) in snap.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&event_to_json(e));
    }
    out.push_str("],\"events_dropped\":");
    out.push_str(&snap.events_dropped.to_string());
    out.push('}');
    out
}

/// Serializes one event as a standalone JSON object
/// (`{"t_s":…,"target":…,"kind":…,"fields":{…}}`) — the element shape of
/// the snapshot's `events` array, also embedded in `vlc-obs` stream lines.
pub fn event_to_json(e: &Event) -> String {
    let mut out = String::with_capacity(64);
    out.push_str("{\"t_s\":");
    push_f64(&mut out, e.t_s);
    out.push_str(",\"target\":");
    push_json_string(&mut out, &e.target);
    out.push_str(",\"kind\":");
    push_json_string(&mut out, &e.kind);
    out.push_str(",\"fields\":{");
    for (j, (k, v)) in e.fields.iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        push_json_string(&mut out, k);
        out.push(':');
        push_json_string(&mut out, v);
    }
    out.push_str("}}");
    out
}

/// Reconstructs an event from the object shape written by
/// [`event_to_json`].
pub fn event_from_value(v: &JsonValue) -> Result<Event, ParseError> {
    let e = v.as_obj("event")?;
    let fields = field(e, "fields")?
        .as_obj("event fields")?
        .iter()
        .map(|(k, v)| Ok((k.clone(), v.as_str("event field value")?.to_string())))
        .collect::<Result<Vec<_>, ParseError>>()?;
    Ok(Event {
        t_s: field(e, "t_s")?.as_f64("t_s")?,
        target: field(e, "target")?.as_str("target")?.to_string(),
        kind: field(e, "kind")?.as_str("kind")?.to_string(),
        fields,
    })
}

/// Parses a snapshot from [`to_json`] output.
pub fn from_json(text: &str) -> Result<MetricsSnapshot, ParseError> {
    let root = parse_json(text)?;
    let root = root.as_obj("document root")?;

    let counters = field(root, "counters")?
        .as_obj("counters")?
        .iter()
        .map(|(name, v)| Ok((name.clone(), v.as_u64("counter value")?)))
        .collect::<Result<Vec<_>, ParseError>>()?;

    let gauges = field(root, "gauges")?
        .as_obj("gauges")?
        .iter()
        .map(|(name, v)| Ok((name.clone(), v.as_f64("gauge value")?)))
        .collect::<Result<Vec<_>, ParseError>>()?;

    let histograms = field(root, "histograms")?
        .as_obj("histograms")?
        .iter()
        .map(|(name, v)| {
            let h = v.as_obj("histogram")?;
            Ok((
                name.clone(),
                HistogramSnapshot {
                    count: field(h, "count")?.as_u64("count")?,
                    sum: field(h, "sum")?.as_f64("sum")?,
                    min: field(h, "min")?.as_f64("min")?,
                    max: field(h, "max")?.as_f64("max")?,
                    p50: field(h, "p50")?.as_f64("p50")?,
                    p95: field(h, "p95")?.as_f64("p95")?,
                    p99: field(h, "p99")?.as_f64("p99")?,
                },
            ))
        })
        .collect::<Result<Vec<_>, ParseError>>()?;

    let events = field(root, "events")?
        .as_arr("events")?
        .iter()
        .map(event_from_value)
        .collect::<Result<Vec<_>, ParseError>>()?;

    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
        events,
        events_dropped: field(root, "events_dropped")?.as_u64("events_dropped")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_round_trips() {
        let s = MetricsSnapshot::default();
        assert_eq!(from_json(&to_json(&s)).unwrap(), s);
    }

    #[test]
    fn strings_with_specials_round_trip() {
        let s = MetricsSnapshot {
            events: vec![Event {
                t_s: 1e-9,
                target: "a \"quoted\"\\path".into(),
                kind: "line\nbreak\ttab".into(),
                fields: vec![("köln".into(), "value, with; punct=chars".into())],
            }],
            ..Default::default()
        };
        assert_eq!(from_json(&to_json(&s)).unwrap(), s);
    }

    #[test]
    fn rejects_truncated_document() {
        let s = MetricsSnapshot {
            counters: vec![("a".into(), 1)],
            ..Default::default()
        };
        let json = to_json(&s);
        assert!(from_json(&json[..json.len() - 1]).is_err());
        assert!(from_json("").is_err());
        assert!(from_json("[]").is_err());
    }

    #[test]
    fn large_counters_survive() {
        let s = MetricsSnapshot {
            counters: vec![("big".into(), u64::MAX)],
            ..Default::default()
        };
        assert_eq!(
            from_json(&to_json(&s)).unwrap().counter("big"),
            Some(u64::MAX)
        );
    }

    #[test]
    fn standalone_events_round_trip() {
        let e = Event {
            t_s: 2.5,
            target: "phy.frame".into(),
            kind: "rs_uncorrectable".into(),
            fields: vec![("frame".into(), "7".into())],
        };
        let parsed = event_from_value(&parse_json(&event_to_json(&e)).unwrap()).unwrap();
        assert_eq!(parsed, e);
    }
}
