//! JSON export and import.
//!
//! Document shape (one object, key order fixed):
//!
//! ```json
//! {
//!   "counters":       { "name": 42, ... },
//!   "gauges":         { "name": 0.5, ... },
//!   "histograms":     { "name": { "count": 2, "sum": 3.0, "min": 1.0,
//!                                  "max": 2.0, "p50": 1.0, "p95": 2.0,
//!                                  "p99": 2.0 }, ... },
//!   "events":         [ { "t_s": 0.0, "target": "mac", "kind": "replan",
//!                         "fields": { "round": "3" } }, ... ],
//!   "events_dropped": 0
//! }
//! ```
//!
//! Floats are written with Rust's shortest round-trip formatting, so
//! `from_json(to_json(s)) == s` exactly. Non-finite floats (which no
//! instrument produces) serialize as `null` and parse back as 0.

use super::ParseError;
use crate::event::Event;
use crate::histogram::HistogramSnapshot;
use crate::snapshot::MetricsSnapshot;

// ---------------------------------------------------------------- writer --

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest representation that round-trips.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Serializes a snapshot; see the module docs for the document shape.
pub fn to_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, name);
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, name);
        out.push(':');
        push_f64(&mut out, *v);
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, name);
        out.push_str(":{\"count\":");
        out.push_str(&h.count.to_string());
        for (key, v) in [
            ("sum", h.sum),
            ("min", h.min),
            ("max", h.max),
            ("p50", h.p50),
            ("p95", h.p95),
            ("p99", h.p99),
        ] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            push_f64(&mut out, v);
        }
        out.push('}');
    }
    out.push_str("},\"events\":[");
    for (i, e) in snap.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"t_s\":");
        push_f64(&mut out, e.t_s);
        out.push_str(",\"target\":");
        push_json_string(&mut out, &e.target);
        out.push_str(",\"kind\":");
        push_json_string(&mut out, &e.kind);
        out.push_str(",\"fields\":{");
        for (j, (k, v)) in e.fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push(':');
            push_json_string(&mut out, v);
        }
        out.push_str("}}");
    }
    out.push_str("],\"events_dropped\":");
    out.push_str(&snap.events_dropped.to_string());
    out.push('}');
    out
}

// ---------------------------------------------------------------- parser --

/// Minimal JSON value model; numbers keep their source text so integers
/// larger than 2^53 survive (counters are u64).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, message)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Snapshot strings never contain surrogate
                            // pairs (only control chars are \u-escaped).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to the char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        Ok(Json::Num(text.to_string()))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

// ------------------------------------------------------- shape extraction --

fn as_obj(v: &Json, what: &str) -> Result<Vec<(String, Json)>, ParseError> {
    match v {
        Json::Obj(entries) => Ok(entries.clone()),
        _ => Err(ParseError::new(0, format!("{what} must be an object"))),
    }
}

fn as_u64(v: &Json, what: &str) -> Result<u64, ParseError> {
    match v {
        Json::Num(text) => text
            .parse()
            .map_err(|_| ParseError::new(0, format!("{what} is not a u64"))),
        _ => Err(ParseError::new(0, format!("{what} must be a number"))),
    }
}

fn as_f64(v: &Json, what: &str) -> Result<f64, ParseError> {
    match v {
        Json::Num(text) => text
            .parse()
            .map_err(|_| ParseError::new(0, format!("{what} is not an f64"))),
        Json::Null => Ok(0.0),
        _ => Err(ParseError::new(0, format!("{what} must be a number"))),
    }
}

fn as_str(v: &Json, what: &str) -> Result<String, ParseError> {
    match v {
        Json::Str(s) => Ok(s.clone()),
        _ => Err(ParseError::new(0, format!("{what} must be a string"))),
    }
}

fn field<'v>(obj: &'v [(String, Json)], key: &str) -> Result<&'v Json, ParseError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| ParseError::new(0, format!("missing key \"{key}\"")))
}

/// Parses a snapshot from [`to_json`] output.
pub fn from_json(text: &str) -> Result<MetricsSnapshot, ParseError> {
    let mut parser = Parser::new(text);
    let root = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing data after document"));
    }
    let root = as_obj(&root, "document root")?;

    let counters = as_obj(field(&root, "counters")?, "counters")?
        .iter()
        .map(|(name, v)| Ok((name.clone(), as_u64(v, "counter value")?)))
        .collect::<Result<Vec<_>, ParseError>>()?;

    let gauges = as_obj(field(&root, "gauges")?, "gauges")?
        .iter()
        .map(|(name, v)| Ok((name.clone(), as_f64(v, "gauge value")?)))
        .collect::<Result<Vec<_>, ParseError>>()?;

    let histograms = as_obj(field(&root, "histograms")?, "histograms")?
        .iter()
        .map(|(name, v)| {
            let h = as_obj(v, "histogram")?;
            Ok((
                name.clone(),
                HistogramSnapshot {
                    count: as_u64(field(&h, "count")?, "count")?,
                    sum: as_f64(field(&h, "sum")?, "sum")?,
                    min: as_f64(field(&h, "min")?, "min")?,
                    max: as_f64(field(&h, "max")?, "max")?,
                    p50: as_f64(field(&h, "p50")?, "p50")?,
                    p95: as_f64(field(&h, "p95")?, "p95")?,
                    p99: as_f64(field(&h, "p99")?, "p99")?,
                },
            ))
        })
        .collect::<Result<Vec<_>, ParseError>>()?;

    let events = match field(&root, "events")? {
        Json::Arr(items) => items
            .iter()
            .map(|item| {
                let e = as_obj(item, "event")?;
                let fields = as_obj(field(&e, "fields")?, "event fields")?
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), as_str(v, "event field value")?)))
                    .collect::<Result<Vec<_>, ParseError>>()?;
                Ok(Event {
                    t_s: as_f64(field(&e, "t_s")?, "t_s")?,
                    target: as_str(field(&e, "target")?, "target")?,
                    kind: as_str(field(&e, "kind")?, "kind")?,
                    fields,
                })
            })
            .collect::<Result<Vec<_>, ParseError>>()?,
        _ => return Err(ParseError::new(0, "events must be an array")),
    };

    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
        events,
        events_dropped: as_u64(field(&root, "events_dropped")?, "events_dropped")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_round_trips() {
        let s = MetricsSnapshot::default();
        assert_eq!(from_json(&to_json(&s)).unwrap(), s);
    }

    #[test]
    fn strings_with_specials_round_trip() {
        let s = MetricsSnapshot {
            events: vec![Event {
                t_s: 1e-9,
                target: "a \"quoted\"\\path".into(),
                kind: "line\nbreak\ttab".into(),
                fields: vec![("köln".into(), "value, with; punct=chars".into())],
            }],
            ..Default::default()
        };
        assert_eq!(from_json(&to_json(&s)).unwrap(), s);
    }

    #[test]
    fn rejects_truncated_document() {
        let s = MetricsSnapshot {
            counters: vec![("a".into(), 1)],
            ..Default::default()
        };
        let json = to_json(&s);
        assert!(from_json(&json[..json.len() - 1]).is_err());
        assert!(from_json("").is_err());
        assert!(from_json("[]").is_err());
    }

    #[test]
    fn large_counters_survive() {
        let s = MetricsSnapshot {
            counters: vec![("big".into(), u64::MAX)],
            ..Default::default()
        };
        assert_eq!(
            from_json(&to_json(&s)).unwrap().counter("big"),
            Some(u64::MAX)
        );
    }
}
