//! A minimal JSON value model with a strict parser and writer helpers.
//!
//! This is the machinery behind [`super::json`], exposed so downstream
//! crates (the `vlc-obs` streaming exporter in particular) can parse and
//! emit their own hand-written JSON documents without pulling a
//! serialization crate into the workspace. Numbers keep their source text
//! so integers larger than 2^53 survive (counters are u64).

use super::ParseError;

/// One JSON value. Numbers are kept as source text (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as written in the document.
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array, in document order.
    Arr(Vec<JsonValue>),
    /// An object, entries in document order (duplicate keys are kept).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The entries of an object, or a shape error naming `what`.
    pub fn as_obj(&self, what: &str) -> Result<&[(String, JsonValue)], ParseError> {
        match self {
            JsonValue::Obj(entries) => Ok(entries),
            _ => Err(ParseError::new(0, format!("{what} must be an object"))),
        }
    }

    /// The items of an array, or a shape error naming `what`.
    pub fn as_arr(&self, what: &str) -> Result<&[JsonValue], ParseError> {
        match self {
            JsonValue::Arr(items) => Ok(items),
            _ => Err(ParseError::new(0, format!("{what} must be an array"))),
        }
    }

    /// This value as a `u64`, or a shape error naming `what`.
    pub fn as_u64(&self, what: &str) -> Result<u64, ParseError> {
        match self {
            JsonValue::Num(text) => text
                .parse()
                .map_err(|_| ParseError::new(0, format!("{what} is not a u64"))),
            _ => Err(ParseError::new(0, format!("{what} must be a number"))),
        }
    }

    /// This value as an `f64`; `null` reads as 0 (the writers serialize
    /// non-finite floats as `null`). Shape errors name `what`.
    pub fn as_f64(&self, what: &str) -> Result<f64, ParseError> {
        match self {
            JsonValue::Num(text) => text
                .parse()
                .map_err(|_| ParseError::new(0, format!("{what} is not an f64"))),
            JsonValue::Null => Ok(0.0),
            _ => Err(ParseError::new(0, format!("{what} must be a number"))),
        }
    }

    /// This value as a string, or a shape error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, ParseError> {
        match self {
            JsonValue::Str(s) => Ok(s),
            _ => Err(ParseError::new(0, format!("{what} must be a string"))),
        }
    }

    /// This value as a bool, or a shape error naming `what`.
    pub fn as_bool(&self, what: &str) -> Result<bool, ParseError> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            _ => Err(ParseError::new(0, format!("{what} must be a boolean"))),
        }
    }
}

/// Looks up `key` in object entries, erroring when absent.
pub fn field<'v>(obj: &'v [(String, JsonValue)], key: &str) -> Result<&'v JsonValue, ParseError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| ParseError::new(0, format!("missing key \"{key}\"")))
}

/// Looks up `key` in object entries, `None` when absent.
pub fn field_opt<'v>(obj: &'v [(String, JsonValue)], key: &str) -> Option<&'v JsonValue> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Parses exactly one JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<JsonValue, ParseError> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing data after document"));
    }
    Ok(value)
}

// ---------------------------------------------------------------- writer --

/// Appends `s` as a JSON string literal (quotes, escapes applied).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` in Rust's shortest round-trip formatting; non-finite
/// values (which no instrument produces) serialize as `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest representation that round-trips.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

// ---------------------------------------------------------------- parser --

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, message)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Exporter strings never contain surrogate
                            // pairs (only control chars are \u-escaped).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to the char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        Ok(JsonValue::Num(text.to_string()))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_parse_and_extract() {
        let v = parse_json(r#"{"a":1,"b":-2.5,"c":"x","d":[true,null],"e":{}}"#).unwrap();
        let obj = v.as_obj("root").unwrap();
        assert_eq!(field(obj, "a").unwrap().as_u64("a").unwrap(), 1);
        assert_eq!(field(obj, "b").unwrap().as_f64("b").unwrap(), -2.5);
        assert_eq!(field(obj, "c").unwrap().as_str("c").unwrap(), "x");
        let arr = field(obj, "d").unwrap().as_arr("d").unwrap();
        assert!(arr[0].as_bool("d0").unwrap());
        assert_eq!(arr[1].as_f64("d1").unwrap(), 0.0);
        assert!(field_opt(obj, "missing").is_none());
        assert!(field(obj, "missing").is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(parse_json("{} extra").is_err());
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
    }

    #[test]
    fn writer_helpers_round_trip_through_the_parser() {
        let mut out = String::new();
        out.push_str("{\"s\":");
        push_json_string(&mut out, "a \"b\"\n\t\\");
        out.push_str(",\"f\":");
        push_f64(&mut out, 0.1);
        out.push_str(",\"n\":");
        push_f64(&mut out, f64::INFINITY);
        out.push('}');
        let v = parse_json(&out).unwrap();
        let obj = v.as_obj("root").unwrap();
        assert_eq!(
            field(obj, "s").unwrap().as_str("s").unwrap(),
            "a \"b\"\n\t\\"
        );
        assert_eq!(field(obj, "f").unwrap().as_f64("f").unwrap(), 0.1);
        assert_eq!(field(obj, "n").unwrap().as_f64("n").unwrap(), 0.0);
    }
}
