//! CSV export and import.
//!
//! One record per line, first field is the record type:
//!
//! ```text
//! # densevlc telemetry v1
//! counter,<name>,<value>
//! gauge,<name>,<value>
//! histogram,<name>,<count>,<sum>,<min>,<max>,<p50>,<p95>,<p99>
//! event,<t_s>,<target>,<kind>,<k=v;k=v;...>
//! events_dropped,<n>
//! ```
//!
//! Text fields are percent-encoded so `,`, `;`, `=`, `%`, and newlines
//! never collide with the record syntax; floats use Rust's shortest
//! round-trip formatting. `from_csv(to_csv(s)) == s` exactly.

use super::ParseError;
use crate::event::Event;
use crate::histogram::HistogramSnapshot;
use crate::snapshot::MetricsSnapshot;

const HEADER: &str = "# densevlc telemetry v1";

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ',' => out.push_str("%2c"),
            ';' => out.push_str("%3b"),
            '=' => out.push_str("%3d"),
            '\n' => out.push_str("%0a"),
            '\r' => out.push_str("%0d"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str, line: usize) -> Result<String, ParseError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hex: String = chars.by_ref().take(2).collect();
        let code = u8::from_str_radix(&hex, 16)
            .map_err(|_| ParseError::new(line, format!("bad percent escape %{hex}")))?;
        out.push(code as char);
    }
    Ok(out)
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0.0".to_string()
    }
}

/// Serializes a snapshot; see the module docs for the line format.
pub fn to_csv(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(HEADER);
    out.push('\n');
    for (name, v) in &snap.counters {
        out.push_str(&format!("counter,{},{v}\n", esc(name)));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!("gauge,{},{}\n", esc(name), fmt_f64(*v)));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!(
            "histogram,{},{},{},{},{},{},{},{}\n",
            esc(name),
            h.count,
            fmt_f64(h.sum),
            fmt_f64(h.min),
            fmt_f64(h.max),
            fmt_f64(h.p50),
            fmt_f64(h.p95),
            fmt_f64(h.p99),
        ));
    }
    for e in &snap.events {
        let fields: Vec<String> = e
            .fields
            .iter()
            .map(|(k, v)| format!("{}={}", esc(k), esc(v)))
            .collect();
        out.push_str(&format!(
            "event,{},{},{},{}\n",
            fmt_f64(e.t_s),
            esc(&e.target),
            esc(&e.kind),
            fields.join(";"),
        ));
    }
    out.push_str(&format!("events_dropped,{}\n", snap.events_dropped));
    out
}

fn parse_u64(s: &str, line: usize, what: &str) -> Result<u64, ParseError> {
    s.parse()
        .map_err(|_| ParseError::new(line, format!("{what} is not a u64: {s:?}")))
}

fn parse_f64(s: &str, line: usize, what: &str) -> Result<f64, ParseError> {
    s.parse()
        .map_err(|_| ParseError::new(line, format!("{what} is not an f64: {s:?}")))
}

fn expect_fields<'a>(
    parts: &'a [&'a str],
    n: usize,
    line: usize,
    kind: &str,
) -> Result<&'a [&'a str], ParseError> {
    if parts.len() == n {
        Ok(&parts[1..])
    } else {
        Err(ParseError::new(
            line,
            format!("{kind} record needs {n} fields, got {}", parts.len()),
        ))
    }
}

/// Parses a snapshot from [`to_csv`] output.
pub fn from_csv(text: &str) -> Result<MetricsSnapshot, ParseError> {
    let mut snap = MetricsSnapshot::default();
    let mut saw_dropped = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.is_empty() || raw.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = raw.split(',').collect();
        match parts[0] {
            "counter" => {
                let f = expect_fields(&parts, 3, line, "counter")?;
                snap.counters
                    .push((unesc(f[0], line)?, parse_u64(f[1], line, "counter value")?));
            }
            "gauge" => {
                let f = expect_fields(&parts, 3, line, "gauge")?;
                snap.gauges
                    .push((unesc(f[0], line)?, parse_f64(f[1], line, "gauge value")?));
            }
            "histogram" => {
                let f = expect_fields(&parts, 9, line, "histogram")?;
                snap.histograms.push((
                    unesc(f[0], line)?,
                    HistogramSnapshot {
                        count: parse_u64(f[1], line, "count")?,
                        sum: parse_f64(f[2], line, "sum")?,
                        min: parse_f64(f[3], line, "min")?,
                        max: parse_f64(f[4], line, "max")?,
                        p50: parse_f64(f[5], line, "p50")?,
                        p95: parse_f64(f[6], line, "p95")?,
                        p99: parse_f64(f[7], line, "p99")?,
                    },
                ));
            }
            "event" => {
                let f = expect_fields(&parts, 5, line, "event")?;
                let fields = if f[3].is_empty() {
                    Vec::new()
                } else {
                    f[3].split(';')
                        .map(|pair| {
                            let (k, v) = pair.split_once('=').ok_or_else(|| {
                                ParseError::new(line, format!("event field without '=': {pair:?}"))
                            })?;
                            Ok((unesc(k, line)?, unesc(v, line)?))
                        })
                        .collect::<Result<Vec<_>, ParseError>>()?
                };
                snap.events.push(Event {
                    t_s: parse_f64(f[0], line, "t_s")?,
                    target: unesc(f[1], line)?,
                    kind: unesc(f[2], line)?,
                    fields,
                });
            }
            "events_dropped" => {
                let f = expect_fields(&parts, 2, line, "events_dropped")?;
                snap.events_dropped = parse_u64(f[0], line, "events_dropped")?;
                saw_dropped = true;
            }
            other => {
                return Err(ParseError::new(
                    line,
                    format!("unknown record type {other:?}"),
                ));
            }
        }
    }
    if !saw_dropped {
        return Err(ParseError::new(0, "missing events_dropped record"));
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_round_trips() {
        let s = MetricsSnapshot::default();
        assert_eq!(from_csv(&to_csv(&s)).unwrap(), s);
    }

    #[test]
    fn delimiters_in_text_round_trip() {
        let s = MetricsSnapshot {
            counters: vec![("name,with;delims=stuff".into(), 7)],
            events: vec![Event {
                t_s: 0.5,
                target: "100% target".into(),
                kind: "multi\nline".into(),
                fields: vec![
                    ("k=ey".into(), "v;alue".into()),
                    ("plain".into(), "x".into()),
                ],
            }],
            ..Default::default()
        };
        assert_eq!(from_csv(&to_csv(&s)).unwrap(), s);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(from_csv("bogus,1,2\nevents_dropped,0\n").is_err());
        assert!(from_csv("counter,only_two\nevents_dropped,0\n").is_err());
        assert!(from_csv("counter,a,1\n").is_err(), "missing events_dropped");
    }
}
