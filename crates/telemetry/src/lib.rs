//! System-wide observability for the DenseVLC stack.
//!
//! The crate provides a [`Registry`] of typed instruments — [`Counter`],
//! [`Gauge`], [`Histogram`] (log-bucketed, with p50/p95/p99/max), and RAII
//! [`Span`] timers — plus a bounded structured-event ring buffer and
//! JSON / CSV / human-readable exporters.
//!
//! Two properties drive the design:
//!
//! 1. **Zero-cost opt-out.** [`Registry::noop()`] produces a registry whose
//!    instruments are inert handles (a `None` inside); uninstrumented code
//!    paths pay one branch per operation and allocate nothing. All library
//!    APIs accept `&Registry` so callers that do not care pass the no-op.
//! 2. **Deterministic in simulation.** Time is injected through the
//!    [`Clock`] trait. Real runs use [`MonotonicClock`]; tests and the
//!    simulator use [`ManualClock`] so span durations and event timestamps
//!    are reproducible bit-for-bit.
//!
//! Snapshots ([`MetricsSnapshot`]) are plain data: they derive `PartialEq`
//! and `Clone` so they can be embedded in simulation results and compared
//! in tests. The exporters are hand-written (this workspace deliberately
//! carries no serialization format crate) and each comes with a parser so
//! round-trips are testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod event;
pub mod export;
mod histogram;
mod registry;
mod snapshot;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use event::Event;
pub use histogram::HistogramSnapshot;
pub use registry::{Counter, Gauge, Histogram, Registry, Span};
pub use snapshot::MetricsSnapshot;
