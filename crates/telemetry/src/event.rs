//! Structured event tracing with a bounded ring buffer.
//!
//! Events carry a timestamp, a `target` (the subsystem that emitted them),
//! a `kind` (what happened), and ordered key/value fields. The ring holds a
//! fixed number of events; once full, the **oldest** event is evicted and
//! the drop counter increments, so a long run keeps the most recent history
//! and still reports how much it lost.

use std::collections::VecDeque;

/// One structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Emission time in seconds (registry clock).
    pub t_s: f64,
    /// Subsystem that emitted the event, e.g. `"mac.controller"`.
    pub target: String,
    /// What happened, e.g. `"replan"` or `"infeasible_round"`.
    pub kind: String,
    /// Ordered key/value annotations.
    pub fields: Vec<(String, String)>,
}

/// Fixed-capacity event buffer with oldest-first eviction.
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    buf: VecDeque<Event>,
    dropped: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest one if the ring is full.
    pub fn push(&mut self, event: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Number of events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: usize) -> Event {
        Event {
            t_s: i as f64,
            target: "test".into(),
            kind: format!("k{i}"),
            fields: vec![("i".into(), i.to_string())],
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut ring = EventRing::new(3);
        for i in 0..5 {
            ring.push(ev(i));
        }
        assert_eq!(ring.events().count(), 3);
        assert_eq!(ring.dropped(), 2);
        let kinds: Vec<&str> = ring.events().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, ["k2", "k3", "k4"]);
    }

    #[test]
    fn ring_below_capacity_drops_nothing() {
        let mut ring = EventRing::new(8);
        ring.push(ev(0));
        ring.push(ev(1));
        assert_eq!(ring.events().count(), 2);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut ring = EventRing::new(0);
        ring.push(ev(0));
        ring.push(ev(1));
        assert_eq!(ring.events().count(), 1);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.events().next().unwrap().kind, "k1");
    }
}
