//! Time sources for span timing and event timestamps.
//!
//! Instrument timing is only as deterministic as its clock, so the clock is
//! injected: production uses [`MonotonicClock`], simulations and tests use
//! [`ManualClock`] and advance it explicitly.

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonic time source reporting seconds since an arbitrary origin.
pub trait Clock: Send + Sync {
    /// Current time in seconds. Must be non-decreasing across calls.
    fn now_s(&self) -> f64;
}

/// Wall-clock monotonic time, measured from the clock's creation.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Creates a clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_s(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

/// A manually advanced clock for deterministic tests and simulations.
///
/// Clones share the same underlying time, so a simulator can keep one handle
/// while the registry owns another.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    t_s: Arc<Mutex<f64>>,
}

impl ManualClock {
    /// Creates a clock at t = 0 s.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the clock to an absolute time. Panics if time would go backwards.
    pub fn set(&self, t_s: f64) {
        let mut t = self.t_s.lock().unwrap();
        assert!(
            t_s >= *t,
            "ManualClock must be monotonic: set({t_s}) after {}",
            *t
        );
        *t = t_s;
    }

    /// Advances the clock by `dt_s` seconds. Panics on negative steps.
    pub fn advance(&self, dt_s: f64) {
        assert!(dt_s >= 0.0, "ManualClock cannot step backwards ({dt_s})");
        *self.t_s.lock().unwrap() += dt_s;
    }
}

impl Clock for ManualClock {
    fn now_s(&self) -> f64 {
        *self.t_s.lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_nondecreasing() {
        let c = MonotonicClock::new();
        let a = c.now_s();
        let b = c.now_s();
        assert!(b >= a);
        assert!(a >= 0.0);
    }

    #[test]
    fn manual_clock_shares_time_across_clones() {
        let c = ManualClock::new();
        let c2 = c.clone();
        c.advance(1.5);
        c2.set(2.0);
        assert_eq!(c.now_s(), 2.0);
        assert_eq!(c2.now_s(), 2.0);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn manual_clock_rejects_backwards_set() {
        let c = ManualClock::new();
        c.set(3.0);
        c.set(1.0);
    }
}
