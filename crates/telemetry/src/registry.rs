//! The instrument registry and its typed handles.

use crate::clock::{Clock, MonotonicClock};
use crate::event::{Event, EventRing};
use crate::histogram::HistogramCore;
use crate::snapshot::MetricsSnapshot;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default capacity of the structured-event ring buffer.
pub(crate) const DEFAULT_EVENT_CAPACITY: usize = 1024;

struct Inner {
    clock: Box<dyn Clock>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    events: Mutex<EventRing>,
}

/// A handle to a set of named instruments plus an event ring.
///
/// Cloning is cheap (one `Arc`); clones observe the same instruments.
/// [`Registry::noop()`] — also the `Default` — is fully inert: every
/// instrument it hands out is a `None` wrapper, so uninstrumented call
/// paths pay one branch and zero allocation per operation.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Registry {
    /// An active registry on wall-clock time with the default event capacity.
    pub fn new() -> Self {
        Self::with_clock(MonotonicClock::new())
    }

    /// An active registry on an injected clock (use [`crate::ManualClock`]
    /// for deterministic simulations and tests).
    pub fn with_clock(clock: impl Clock + 'static) -> Self {
        Self::with_clock_and_capacity(clock, DEFAULT_EVENT_CAPACITY)
    }

    /// An active registry with an injected clock and event-ring capacity.
    pub fn with_clock_and_capacity(clock: impl Clock + 'static, event_capacity: usize) -> Self {
        Registry {
            inner: Some(Arc::new(Inner {
                clock: Box::new(clock),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                events: Mutex::new(EventRing::new(event_capacity)),
            })),
        }
    }

    /// The inert registry: records nothing, allocates nothing.
    pub fn noop() -> Self {
        Registry { inner: None }
    }

    /// Whether this registry actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current time on the registry clock (0 for the no-op registry).
    pub fn now_s(&self) -> f64 {
        self.inner.as_ref().map_or(0.0, |i| i.clock.now_s())
    }

    /// Returns the counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.counters
                    .lock()
                    .unwrap()
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.gauges
                    .lock()
                    .unwrap()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0.0f64.to_bits()))),
            )
        }))
    }

    /// Returns the histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.histograms
                    .lock()
                    .unwrap()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCore::new())),
            )
        }))
    }

    /// Starts an RAII span; on drop, its duration (seconds) is recorded
    /// into the histogram named `name`.
    pub fn span(&self, name: &str) -> Span {
        Span(self.inner.as_ref().map(|i| SpanActive {
            inner: Arc::clone(i),
            hist: match self.histogram(name).0 {
                Some(h) => h,
                // `self.inner` is Some here, so the histogram handle is too.
                None => unreachable!(),
            },
            start_s: i.clock.now_s(),
        }))
    }

    /// Emits a structured event stamped with the registry clock.
    pub fn event(&self, target: &str, kind: &str, fields: &[(&str, &str)]) {
        if let Some(i) = &self.inner {
            let event = Event {
                t_s: i.clock.now_s(),
                target: target.to_string(),
                kind: kind.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
            };
            i.events.lock().unwrap().push(event);
        }
    }

    /// Captures every instrument and the event ring as plain data.
    /// Instruments are listed in name order; events oldest first.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(i) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let counters = i
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = i
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = i
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let ring = i.events.lock().unwrap();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            events: ring.events().cloned().collect(),
            events_dropped: ring.dropped(),
        }
    }
}

/// Monotonically increasing integer metric.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Last-write-wins floating-point metric.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Stores a new value.
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// Log-bucketed distribution metric; see [`crate::HistogramSnapshot`].
#[derive(Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one sample. Negative values clamp to 0; NaN is ignored.
    pub fn record(&self, v: f64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Point-in-time statistics (all zeros for a no-op handle).
    pub fn snapshot(&self) -> crate::HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(Default::default, |h| h.snapshot())
    }
}

struct SpanActive {
    inner: Arc<Inner>,
    hist: Arc<HistogramCore>,
    start_s: f64,
}

/// RAII scope timer: created by [`Registry::span`], records its lifetime
/// (in seconds, on the registry clock) into a duration histogram on drop.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span(Option<SpanActive>);

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = &self.0 {
            s.hist.record(s.inner.clock.now_s() - s.start_s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn noop_registry_records_nothing() {
        let reg = Registry::noop();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = reg.gauge("y");
        g.set(4.2);
        assert_eq!(g.get(), 0.0);
        reg.histogram("h").record(1.0);
        reg.event("t", "k", &[]);
        drop(reg.span("s"));
        assert_eq!(reg.snapshot(), MetricsSnapshot::default());
        assert_eq!(reg.now_s(), 0.0);
    }

    #[test]
    fn default_is_noop() {
        assert!(!Registry::default().is_enabled());
    }

    #[test]
    fn counter_and_gauge_share_storage_by_name() {
        let reg = Registry::new();
        reg.counter("hits").add(3);
        reg.counter("hits").inc();
        assert_eq!(reg.counter("hits").get(), 4);
        reg.gauge("level").set(-2.5);
        assert_eq!(reg.gauge("level").get(), -2.5);
    }

    #[test]
    fn span_with_manual_clock_is_deterministic() {
        let clock = ManualClock::new();
        let reg = Registry::with_clock(clock.clone());
        {
            let _span = reg.span("work_s");
            clock.advance(0.125);
        }
        {
            let _span = reg.span("work_s");
            clock.advance(0.250);
        }
        let snap = reg.histogram("work_s").snapshot();
        assert_eq!(snap.count, 2);
        assert!((snap.sum - 0.375).abs() < 1e-12);
        assert_eq!(snap.min, 0.125);
        assert_eq!(snap.max, 0.250);
    }

    #[test]
    fn events_are_stamped_with_registry_clock() {
        let clock = ManualClock::new();
        let reg = Registry::with_clock(clock.clone());
        clock.set(1.5);
        reg.event("mac", "replan", &[("round", "3")]);
        let snap = reg.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].t_s, 1.5);
        assert_eq!(snap.events[0].target, "mac");
        assert_eq!(snap.events[0].fields, vec![("round".into(), "3".into())]);
    }

    #[test]
    fn snapshot_orders_instruments_by_name() {
        let reg = Registry::new();
        reg.counter("zeta").inc();
        reg.counter("alpha").inc();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }

    #[test]
    fn clones_share_instruments() {
        let reg = Registry::new();
        let clone = reg.clone();
        clone.counter("shared").add(7);
        assert_eq!(reg.counter("shared").get(), 7);
    }
}
