//! Log-bucketed histograms.
//!
//! Buckets grow geometrically by 2^(1/4) (≈ 19 % per bucket) starting at
//! 1 ns, so one fixed layout spans everything this stack records — span
//! durations from sub-microsecond channel estimates to multi-second solver
//! runs, and dimensionless ratios like BER. Quantiles are read back from
//! the bucket upper bound, so a reported p-quantile is within one bucket
//! (≤ 19 % relative error) of the true sample quantile.

use std::sync::Mutex;

/// Lower edge of bucket 1; bucket 0 is the underflow bucket `[0, FIRST)`.
const FIRST: f64 = 1e-9;
/// Geometric growth per bucket: 2^(1/4).
const GROWTH: f64 = 1.189_207_115_002_721;
/// Bucket count. 287 geometric buckets past the underflow bucket reach
/// `FIRST * GROWTH^287 ≈ 3.3e12`, comfortably past any recorded value;
/// larger values clamp into the last bucket.
const N_BUCKETS: usize = 288;

#[derive(Debug)]
struct HistState {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Shared histogram storage behind a [`crate::Histogram`] handle.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    state: Mutex<HistState>,
}

fn bucket_index(v: f64) -> usize {
    if v < FIRST {
        return 0;
    }
    // Subtract logs rather than divide: v / FIRST overflows for v > ~1e299.
    let idx = (v.ln() - FIRST.ln()) / GROWTH.ln();
    if idx >= (N_BUCKETS - 2) as f64 {
        return N_BUCKETS - 1;
    }
    // +1 skips the underflow bucket.
    idx.floor() as usize + 1
}

/// Upper edge of bucket `i` (the value quantiles report for that bucket).
fn bucket_upper(i: usize) -> f64 {
    FIRST * GROWTH.powi(i as i32)
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            state: Mutex::new(HistState {
                buckets: vec![0; N_BUCKETS],
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            }),
        }
    }

    /// Records one sample. Negative values clamp to 0; NaN is ignored.
    pub(crate) fn record(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let v = v.max(0.0);
        let mut s = self.state.lock().unwrap();
        s.buckets[bucket_index(v)] += 1;
        s.count += 1;
        s.sum += v;
        s.min = s.min.min(v);
        s.max = s.max.max(v);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let s = self.state.lock().unwrap();
        if s.count == 0 {
            return HistogramSnapshot::default();
        }
        let quantile = |q: f64| -> f64 {
            // Rank of the sample the quantile falls on (1-based, ceiling).
            let target = ((q * s.count as f64).ceil() as u64).clamp(1, s.count);
            let mut cum = 0u64;
            for (i, &n) in s.buckets.iter().enumerate() {
                cum += n;
                if cum >= target {
                    return bucket_upper(i).clamp(s.min, s.max);
                }
            }
            s.max
        };
        HistogramSnapshot {
            count: s.count,
            sum: s.sum,
            min: s.min,
            max: s.max,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// Point-in-time histogram statistics.
///
/// Plain data (`PartialEq`, `Clone`) so snapshots can be embedded in
/// simulation results and asserted in tests. An empty histogram reports
/// all-zero statistics rather than NaN so equality stays well-behaved.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median estimate (bucket resolution, ≤ 19 % relative error).
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_half_open() {
        // [0, FIRST) is the underflow bucket; FIRST itself starts bucket 1.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(FIRST * 0.999), 0);
        assert_eq!(bucket_index(FIRST), 1);
        // Just below the next edge stays in bucket 1; at/above moves on.
        assert_eq!(bucket_index(FIRST * GROWTH * 0.999_999), 1);
        assert_eq!(bucket_index(FIRST * GROWTH * 1.000_001), 2);
        // Far beyond the last edge clamps into the final bucket.
        assert_eq!(bucket_index(1e300), N_BUCKETS - 1);
    }

    #[test]
    fn growth_factor_is_fourth_root_of_two() {
        assert!((GROWTH.powi(4) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = HistogramCore::new();
        // 100 samples: 1 ms, 2 ms, ..., 100 ms.
        for i in 1..=100 {
            h.record(i as f64 * 1e-3);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1e-3);
        assert_eq!(s.max, 100e-3);
        assert!((s.sum - 5.050).abs() < 1e-9);
        // Bucket resolution is 2^(1/4): allow ±19 % around the exact value.
        assert!((s.p50 - 0.050).abs() / 0.050 < 0.19, "p50 = {}", s.p50);
        assert!((s.p95 - 0.095).abs() / 0.095 < 0.19, "p95 = {}", s.p95);
        assert!((s.p99 - 0.099).abs() / 0.099 < 0.19, "p99 = {}", s.p99);
        assert!((s.mean() - 0.0505).abs() < 1e-9);
    }

    #[test]
    fn single_sample_quantiles_collapse_to_it() {
        let h = HistogramCore::new();
        h.record(0.25);
        let s = h.snapshot();
        assert_eq!((s.count, s.min, s.max), (1, 0.25, 0.25));
        assert_eq!(s.p50, 0.25);
        assert_eq!(s.p99, 0.25);
    }

    #[test]
    fn empty_histogram_is_all_zeros_not_nan() {
        let s = HistogramCore::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn nan_ignored_negative_clamped() {
        let h = HistogramCore::new();
        h.record(f64::NAN);
        h.record(-5.0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }
}
