//! Positions with orientation (boresight) for transmitters and receivers.

use crate::Vec3;
use serde::{Deserialize, Serialize};

/// A position in the room plus a unit boresight direction.
///
/// For an LED transmitter the boresight is the optical axis of the emitter
/// (the direction of maximum radiant intensity); for a photodiode receiver it
/// is the surface normal of the detector. The paper's deployment uses
/// downward-facing ceiling TXs and upward-facing RXs, but the channel model
/// supports arbitrary orientations (paper §9, "RX orientation").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pose {
    /// Position in meters (room coordinates, z up, floor at z = 0).
    pub position: Vec3,
    /// Unit boresight direction.
    pub boresight: Vec3,
}

impl Pose {
    /// Creates a pose, normalizing the boresight.
    ///
    /// # Panics
    /// Panics if `boresight` is the zero vector.
    pub fn new(position: Vec3, boresight: Vec3) -> Self {
        Pose {
            position,
            boresight: boresight.normalized(),
        }
    }

    /// A ceiling luminaire at `(x, y, height)` facing straight down.
    pub fn ceiling(x: f64, y: f64, height: f64) -> Self {
        Pose {
            position: Vec3::new(x, y, height),
            boresight: Vec3::DOWN,
        }
    }

    /// A receiver at `(x, y, height)` facing straight up.
    pub fn face_up(x: f64, y: f64, height: f64) -> Self {
        Pose {
            position: Vec3::new(x, y, height),
            boresight: Vec3::UP,
        }
    }

    /// A receiver tilted away from the vertical by `tilt` radians in the
    /// direction `azimuth` (measured from +X in the XY plane).
    ///
    /// `tilt = 0` reduces to [`Pose::face_up`].
    pub fn tilted(x: f64, y: f64, height: f64, tilt: f64, azimuth: f64) -> Self {
        let boresight = Vec3::new(
            tilt.sin() * azimuth.cos(),
            tilt.sin() * azimuth.sin(),
            tilt.cos(),
        );
        Pose::new(Vec3::new(x, y, height), boresight)
    }

    /// Cosine of the irradiation angle φ from this (transmitter) pose toward
    /// a target point: the angle between the boresight and the TX→target ray.
    ///
    /// Returns a value in `[-1, 1]`; negative values mean the target is
    /// behind the emitter plane.
    pub fn cos_irradiation(&self, target: Vec3) -> f64 {
        let ray = target - self.position;
        match ray.try_normalized() {
            Some(dir) => self.boresight.dot(dir),
            None => 1.0, // coincident points: treat as on-axis
        }
    }

    /// Cosine of the incidence angle ψ at this (receiver) pose for light
    /// arriving from a source point: the angle between the detector normal
    /// and the RX→source ray.
    pub fn cos_incidence(&self, source: Vec3) -> f64 {
        let ray = source - self.position;
        match ray.try_normalized() {
            Some(dir) => self.boresight.dot(dir),
            None => 1.0,
        }
    }

    /// Translates the pose, keeping the boresight.
    pub fn translated(&self, delta: Vec3) -> Pose {
        Pose {
            position: self.position + delta,
            boresight: self.boresight,
        }
    }

    /// Returns the pose moved to a new position, keeping the boresight.
    pub fn at(&self, position: Vec3) -> Pose {
        Pose {
            position,
            boresight: self.boresight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_4, PI};

    #[test]
    fn ceiling_pose_faces_down() {
        let p = Pose::ceiling(1.0, 2.0, 2.8);
        assert_eq!(p.boresight, Vec3::DOWN);
        assert_eq!(p.position.z, 2.8);
    }

    #[test]
    fn irradiation_straight_below_is_on_axis() {
        let tx = Pose::ceiling(1.0, 1.0, 2.8);
        let cos = tx.cos_irradiation(Vec3::new(1.0, 1.0, 0.8));
        assert!((cos - 1.0).abs() < 1e-12);
    }

    #[test]
    fn irradiation_at_45_degrees() {
        // Target offset horizontally by exactly the vertical drop → φ = 45°.
        let tx = Pose::ceiling(0.0, 0.0, 2.0);
        let cos = tx.cos_irradiation(Vec3::new(2.0, 0.0, 0.0));
        assert!((cos - FRAC_PI_4.cos()).abs() < 1e-12);
    }

    #[test]
    fn incidence_matches_irradiation_for_parallel_planes() {
        // Downward TX and upward RX, vertically separated: φ = ψ.
        let tx = Pose::ceiling(0.5, 0.0, 2.8);
        let rx = Pose::face_up(0.0, 0.0, 0.8);
        let cos_phi = tx.cos_irradiation(rx.position);
        let cos_psi = rx.cos_incidence(tx.position);
        assert!((cos_phi - cos_psi).abs() < 1e-12);
    }

    #[test]
    fn target_behind_emitter_has_negative_cosine() {
        let tx = Pose::ceiling(0.0, 0.0, 2.0);
        let cos = tx.cos_irradiation(Vec3::new(0.0, 0.0, 3.0)); // above the TX
        assert!(cos < 0.0);
    }

    #[test]
    fn tilted_zero_is_face_up() {
        let a = Pose::tilted(1.0, 1.0, 0.8, 0.0, 0.0);
        let b = Pose::face_up(1.0, 1.0, 0.8);
        assert!((a.boresight - b.boresight).norm() < 1e-12);
    }

    #[test]
    fn tilted_quarter_turn_lies_in_azimuth_plane() {
        let p = Pose::tilted(0.0, 0.0, 0.0, PI / 2.0, 0.0);
        assert!((p.boresight - Vec3::X).norm() < 1e-9);
    }

    #[test]
    fn translated_preserves_boresight() {
        let p = Pose::ceiling(0.0, 0.0, 2.8).translated(Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(p.position.x, 1.0);
        assert_eq!(p.boresight, Vec3::DOWN);
    }
}
