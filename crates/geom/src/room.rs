//! Room geometry and the illumination area of interest.

use crate::Vec3;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangular room with the floor at `z = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Room {
    /// Extent along X in meters.
    pub width: f64,
    /// Extent along Y in meters.
    pub depth: f64,
    /// Ceiling height in meters.
    pub height: f64,
    /// Diffuse reflectance of the floor in `[0, 1]` (used by the NLOS
    /// synchronization channel; the paper notes the pilot remains detectable
    /// on less-reflective floors).
    pub floor_reflectance: f64,
}

impl Room {
    /// The 3 m × 3 m × 2.8 m room used in the paper's simulations (§4).
    pub fn paper_simulation() -> Self {
        Room {
            width: 3.0,
            depth: 3.0,
            height: 2.8,
            floor_reflectance: 0.6,
        }
    }

    /// The experimental deployment (§8): same floor plan, TXs at 2 m height.
    pub fn paper_testbed() -> Self {
        Room {
            width: 3.0,
            depth: 3.0,
            height: 2.0,
            floor_reflectance: 0.6,
        }
    }

    /// True when the point lies inside the room (floor inclusive).
    pub fn contains(&self, p: Vec3) -> bool {
        (0.0..=self.width).contains(&p.x)
            && (0.0..=self.depth).contains(&p.y)
            && (0.0..=self.height).contains(&p.z)
    }

    /// The room's center point on the floor.
    pub fn floor_center(&self) -> Vec3 {
        Vec3::new(self.width / 2.0, self.depth / 2.0, 0.0)
    }

    /// Clamps a point's XY to the room footprint (used by mobility models so
    /// waypoint noise cannot push a receiver through a wall).
    pub fn clamp_xy(&self, p: Vec3) -> Vec3 {
        Vec3::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.depth), p.z)
    }
}

/// The central rectangular region where the ISO 8995-1 uniformity requirement
/// is evaluated (the paper uses 2.2 m × 2.2 m centered in the room, excluding
/// the boundary strip).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaOfInterest {
    /// Minimum X corner in meters.
    pub x_min: f64,
    /// Minimum Y corner in meters.
    pub y_min: f64,
    /// Extent along X in meters.
    pub width: f64,
    /// Extent along Y in meters.
    pub depth: f64,
}

impl AreaOfInterest {
    /// A `side × side` square centered in `room`.
    pub fn centered(room: &Room, side: f64) -> Self {
        AreaOfInterest {
            x_min: (room.width - side) / 2.0,
            y_min: (room.depth - side) / 2.0,
            width: side,
            depth: side,
        }
    }

    /// The paper's 2.2 m × 2.2 m central area of interest.
    pub fn paper(room: &Room) -> Self {
        AreaOfInterest::centered(room, 2.2)
    }

    /// True when the XY projection of `p` lies inside the area.
    pub fn contains_xy(&self, p: Vec3) -> bool {
        (self.x_min..=self.x_min + self.width).contains(&p.x)
            && (self.y_min..=self.y_min + self.depth).contains(&p.y)
    }

    /// Iterates grid sample points at `step` meter spacing on the plane
    /// `z = height`, inclusive of both edges.
    pub fn sample_points(&self, step: f64, height: f64) -> Vec<Vec3> {
        assert!(step > 0.0, "sampling step must be positive");
        let nx = (self.width / step).round() as usize + 1;
        let ny = (self.depth / step).round() as usize + 1;
        let mut pts = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            for ix in 0..nx {
                pts.push(Vec3::new(
                    self.x_min + (ix as f64) * step,
                    self.y_min + (iy as f64) * step,
                    height,
                ));
            }
        }
        pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_room_dimensions() {
        let r = Room::paper_simulation();
        assert_eq!((r.width, r.depth, r.height), (3.0, 3.0, 2.8));
    }

    #[test]
    fn contains_respects_bounds() {
        let r = Room::paper_simulation();
        assert!(r.contains(Vec3::new(1.5, 1.5, 0.8)));
        assert!(!r.contains(Vec3::new(3.1, 1.5, 0.8)));
        assert!(!r.contains(Vec3::new(1.5, 1.5, 3.0)));
    }

    #[test]
    fn clamp_keeps_inside() {
        let r = Room::paper_simulation();
        let p = r.clamp_xy(Vec3::new(-1.0, 5.0, 0.8));
        assert_eq!((p.x, p.y), (0.0, 3.0));
    }

    #[test]
    fn aoi_is_centered() {
        let r = Room::paper_simulation();
        let a = AreaOfInterest::paper(&r);
        assert!((a.x_min - 0.4).abs() < 1e-12);
        assert!((a.y_min - 0.4).abs() < 1e-12);
        assert!(a.contains_xy(Vec3::new(1.5, 1.5, 0.0)));
        assert!(!a.contains_xy(Vec3::new(0.1, 1.5, 0.0)));
    }

    #[test]
    fn sample_points_cover_both_edges() {
        let r = Room::paper_simulation();
        let a = AreaOfInterest::centered(&r, 2.0);
        let pts = a.sample_points(0.5, 0.8);
        assert_eq!(pts.len(), 25); // 5 × 5 grid
        let xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
        assert!(xs.iter().any(|&x| (x - a.x_min).abs() < 1e-12));
        assert!(xs.iter().any(|&x| (x - (a.x_min + a.width)).abs() < 1e-12));
        assert!(pts.iter().all(|p| (p.z - 0.8).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_panics() {
        let r = Room::paper_simulation();
        AreaOfInterest::paper(&r).sample_points(0.0, 0.8);
    }
}
