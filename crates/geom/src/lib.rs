//! Geometry primitives for the DenseVLC reproduction.
//!
//! DenseVLC deploys a dense grid of LED transmitters on the ceiling of an
//! indoor room and serves receivers placed on the floor or on tables. All
//! optical-channel quantities (irradiation angle, incidence angle, distance)
//! are purely geometric, so this crate provides the shared vocabulary:
//!
//! * [`Vec3`] — a minimal 3-component vector with the handful of operations
//!   the channel model needs (no external linear-algebra dependency).
//! * [`Pose`] — a position plus a unit orientation (boresight) vector, used
//!   for both transmitters (typically facing down) and receivers (typically
//!   facing up).
//! * [`Room`] and [`AreaOfInterest`] — the 3 m × 3 m × 2.8 m evaluation room
//!   from the paper and the central 2.2 m × 2.2 m region used for the
//!   illumination-uniformity requirement.
//! * [`TxGrid`] — builder for the 6 × 6 ceiling grid of 36 transmitters with
//!   0.5 m spacing used throughout the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod pose;
pub mod room;
pub mod vec3;

pub use grid::TxGrid;
pub use pose::Pose;
pub use room::{AreaOfInterest, Room};
pub use vec3::Vec3;
