//! Builders for dense ceiling grids of LED transmitters.

use crate::{Pose, Room, Vec3};
use serde::{Deserialize, Serialize};

/// A rectangular ceiling grid of downward-facing LED transmitters.
///
/// The paper deploys `6 × 6 = 36` TXs with 0.5 m pitch, centered in a
/// 3 m × 3 m room. TX indices follow the paper's numbering (consistent with
/// Fig. 9's roles: TX8 serves RX1 at (0.92, 0.92), TX10 serves RX2 at
/// (1.65, 0.65)): TX1 sits at the minimum-x, minimum-y corner, indices
/// increase along +X first, then step up in +Y row by row. Internally we
/// store zero-based indices; display code adds 1 to match the paper's
/// labels.
///
/// ```
/// use vlc_geom::{Room, TxGrid, Vec3};
///
/// let grid = TxGrid::paper(&Room::paper_simulation());
/// assert_eq!(grid.len(), 36);
/// // TX8 (zero-based 7) hangs over the paper's RX1 position.
/// assert_eq!(grid.nearest(Vec3::new(0.92, 0.92, 0.0)), 7);
/// assert_eq!(grid.label(7), "TX8");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxGrid {
    /// Number of columns (along X).
    pub cols: usize,
    /// Number of rows (along Y).
    pub rows: usize,
    /// Inter-TX spacing in meters.
    pub pitch: f64,
    /// Mounting height (ceiling) in meters.
    pub height: f64,
    /// Position of the grid's first TX (minimum x, minimum y).
    pub origin: Vec3,
}

impl TxGrid {
    /// The paper's 6 × 6 grid with 0.5 m pitch, centered in `room`, mounted
    /// at the room's ceiling height.
    pub fn paper(room: &Room) -> Self {
        TxGrid::centered(room, 6, 6, 0.5)
    }

    /// A `cols × rows` grid with the given pitch, centered in `room`.
    pub fn centered(room: &Room, cols: usize, rows: usize, pitch: f64) -> Self {
        assert!(cols >= 1 && rows >= 1, "grid must have at least one TX");
        assert!(pitch > 0.0, "pitch must be positive");
        let span_x = (cols - 1) as f64 * pitch;
        let span_y = (rows - 1) as f64 * pitch;
        let x0 = (room.width - span_x) / 2.0;
        let y0 = (room.depth - span_y) / 2.0;
        TxGrid {
            cols,
            rows,
            pitch,
            height: room.height,
            origin: Vec3::new(x0, y0, room.height),
        }
    }

    /// Total number of transmitters.
    pub fn len(&self) -> usize {
        self.cols * self.rows
    }

    /// True when the grid is empty (never true for constructed grids).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The pose of TX `index` (zero-based, paper numbering order).
    ///
    /// # Panics
    /// Panics if `index >= self.len()`.
    pub fn pose(&self, index: usize) -> Pose {
        assert!(
            index < self.len(),
            "TX index {index} out of range {}",
            self.len()
        );
        let row = index / self.cols;
        let col = index % self.cols;
        Pose::ceiling(
            self.origin.x + col as f64 * self.pitch,
            self.origin.y + row as f64 * self.pitch,
            self.height,
        )
    }

    /// All TX poses in index order.
    pub fn poses(&self) -> Vec<Pose> {
        (0..self.len()).map(|i| self.pose(i)).collect()
    }

    /// Zero-based index of the TX nearest (in XY) to a point.
    pub fn nearest(&self, p: Vec3) -> usize {
        (0..self.len())
            .min_by(|&a, &b| {
                let da = self.pose(a).position.horizontal_distance(p);
                let db = self.pose(b).position.horizontal_distance(p);
                da.partial_cmp(&db).expect("distances are finite")
            })
            .expect("grid is non-empty")
    }

    /// Zero-based indices of the TXs whose XY distance to `p` is at most
    /// `radius`, sorted nearest first.
    pub fn within_radius(&self, p: Vec3, radius: f64) -> Vec<usize> {
        let mut v: Vec<(usize, f64)> = (0..self.len())
            .map(|i| (i, self.pose(i).position.horizontal_distance(p)))
            .filter(|&(_, d)| d <= radius)
            .collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        v.into_iter().map(|(i, _)| i).collect()
    }

    /// The 1-based label used in the paper (e.g. `"TX8"`).
    pub fn label(&self, index: usize) -> String {
        format!("TX{}", index + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_grid() -> TxGrid {
        TxGrid::paper(&Room::paper_simulation())
    }

    #[test]
    fn paper_grid_has_36_txs() {
        assert_eq!(paper_grid().len(), 36);
    }

    #[test]
    fn grid_is_centered_in_room() {
        let g = paper_grid();
        // 6 TXs with 0.5 m pitch span 2.5 m in a 3 m room → 0.25 m margin.
        assert!((g.origin.x - 0.25).abs() < 1e-12);
        assert!((g.origin.y - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tx1_is_bottom_left_and_tx36_top_right() {
        let g = paper_grid();
        let p1 = g.pose(0).position;
        let p36 = g.pose(35).position;
        assert!((p1.x - 0.25).abs() < 1e-12 && (p1.y - 0.25).abs() < 1e-12);
        assert!((p36.x - 2.75).abs() < 1e-12 && (p36.y - 2.75).abs() < 1e-12);
    }

    #[test]
    fn indices_increase_along_x_then_up() {
        let g = paper_grid();
        // TX2 (index 1) is right of TX1; TX7 (index 6) is above TX1.
        assert!(g.pose(1).position.x > g.pose(0).position.x);
        assert!((g.pose(1).position.y - g.pose(0).position.y).abs() < 1e-12);
        assert!(g.pose(6).position.y > g.pose(0).position.y);
        assert!((g.pose(6).position.x - g.pose(0).position.x).abs() < 1e-12);
    }

    #[test]
    fn fig9_roles_hold() {
        // Paper Fig. 9: TX8 is RX1's (0.92, 0.92) first pick and TX10 is
        // RX2's (1.65, 0.65) — the numbering convention anchor.
        let g = paper_grid();
        assert_eq!(g.nearest(Vec3::new(0.92, 0.92, 0.0)), 7); // TX8
        assert_eq!(g.nearest(Vec3::new(1.65, 0.65, 0.0)), 9); // TX10
    }

    #[test]
    fn all_txs_face_down_at_ceiling() {
        let g = paper_grid();
        for pose in g.poses() {
            assert_eq!(pose.boresight, Vec3::DOWN);
            assert!((pose.position.z - 2.8).abs() < 1e-12);
        }
    }

    #[test]
    fn nearest_finds_tx_under_point() {
        let g = paper_grid();
        // Directly under TX8 (index 7): row 1, col 1 → (0.75, 0.75).
        let idx = g.nearest(Vec3::new(0.75, 0.75, 0.8));
        assert_eq!(idx, 7);
    }

    #[test]
    fn within_radius_is_sorted_and_bounded() {
        let g = paper_grid();
        let p = Vec3::new(1.5, 1.5, 0.0);
        let near = g.within_radius(p, 0.8);
        assert!(!near.is_empty());
        let mut prev = -1.0;
        for &i in &near {
            let d = g.pose(i).position.horizontal_distance(p);
            assert!(d <= 0.8 + 1e-12);
            assert!(d >= prev);
            prev = d;
        }
    }

    #[test]
    fn label_is_one_based() {
        assert_eq!(paper_grid().label(0), "TX1");
        assert_eq!(paper_grid().label(35), "TX36");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pose_out_of_range_panics() {
        paper_grid().pose(36);
    }
}
