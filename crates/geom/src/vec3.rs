//! A minimal 3-component vector type.
//!
//! The channel model only needs dot products, norms, and normalization, so a
//! tiny purpose-built type keeps the dependency surface small (smoltcp-style:
//! simplicity over generality).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-component vector of `f64`, in meters when used as a position.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component (room width direction).
    pub x: f64,
    /// Y component (room depth direction).
    pub y: f64,
    /// Z component (height above the floor).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +X.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +Y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along +Z (up).
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };
    /// Unit vector along −Z (down; typical LED boresight).
    pub const DOWN: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: -1.0,
    };
    /// Unit vector along +Z (up; typical receiver boresight).
    pub const UP: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Returns the unit vector in this direction.
    ///
    /// # Panics
    /// Panics if the vector is (numerically) zero — normalizing a zero vector
    /// indicates a geometry bug (coincident TX and RX) that must not be
    /// silently absorbed into the channel model.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        assert!(n > 1e-12, "cannot normalize a zero-length vector");
        self / n
    }

    /// Returns the unit vector in this direction, or `None` for a zero vector.
    #[inline]
    pub fn try_normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 1e-12 {
            Some(self / n)
        } else {
            None
        }
    }

    /// Cosine of the angle between two vectors (assumes both are non-zero).
    #[inline]
    pub fn cos_angle(self, other: Vec3) -> f64 {
        let denom = self.norm() * other.norm();
        debug_assert!(denom > 0.0);
        (self.dot(other) / denom).clamp(-1.0, 1.0)
    }

    /// Angle between two vectors in radians, in `[0, π]`.
    #[inline]
    pub fn angle(self, other: Vec3) -> f64 {
        self.cos_angle(other).acos()
    }

    /// Component-wise linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// The point with the same x/y but z = 0 (its projection on the floor).
    #[inline]
    pub fn on_floor(self) -> Vec3 {
        Vec3::new(self.x, self.y, 0.0)
    }

    /// Horizontal (XY-plane) distance to another point.
    #[inline]
    pub fn horizontal_distance(self, other: Vec3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn dot_of_orthogonal_axes_is_zero() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::Y.dot(Vec3::Z), 0.0);
    }

    #[test]
    fn cross_follows_right_hand_rule() {
        let c = Vec3::X.cross(Vec3::Y);
        assert!((c - Vec3::Z).norm() < EPS);
    }

    #[test]
    fn norm_of_345_triangle() {
        assert!((Vec3::new(3.0, 4.0, 0.0).norm() - 5.0).abs() < EPS);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = Vec3::new(1.0, -2.0, 3.0).normalized();
        assert!((v.norm() - 1.0).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn normalizing_zero_panics() {
        let _ = Vec3::ZERO.normalized();
    }

    #[test]
    fn try_normalized_zero_is_none() {
        assert!(Vec3::ZERO.try_normalized().is_none());
        assert!(Vec3::X.try_normalized().is_some());
    }

    #[test]
    fn angle_between_axes_is_right_angle() {
        assert!((Vec3::X.angle(Vec3::Y) - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn angle_with_self_is_zero() {
        let v = Vec3::new(0.3, 0.4, -0.8);
        assert!(v.angle(v) < 1e-6);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert!((a.lerp(b, 0.0) - a).norm() < EPS);
        assert!((a.lerp(b, 1.0) - b).norm() < EPS);
        assert!((a.lerp(b, 0.5) - Vec3::new(1.0, 2.0, 3.0)).norm() < EPS);
    }

    #[test]
    fn horizontal_distance_ignores_height() {
        let tx = Vec3::new(1.0, 1.0, 2.8);
        let rx = Vec3::new(1.0, 1.0, 0.0);
        assert!(tx.horizontal_distance(rx) < EPS);
        assert!((tx.distance(rx) - 2.8).abs() < EPS);
    }

    #[test]
    fn down_and_up_are_opposite() {
        assert!((Vec3::DOWN + Vec3::UP).norm() < EPS);
    }
}
