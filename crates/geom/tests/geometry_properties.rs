//! Property tests for the geometry substrate.

use proptest::prelude::*;
use vlc_geom::{Pose, Room, TxGrid, Vec3};

fn arb_vec3() -> impl Strategy<Value = Vec3> {
    (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    /// The triangle inequality holds for any three points.
    #[test]
    fn triangle_inequality(a in arb_vec3(), b in arb_vec3(), c in arb_vec3()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    /// Dot product is symmetric and the norm is consistent with it.
    #[test]
    fn dot_symmetry_and_norm(a in arb_vec3(), b in arb_vec3()) {
        prop_assert!((a.dot(b) - b.dot(a)).abs() < 1e-9);
        prop_assert!((a.norm_sq() - a.dot(a)).abs() < 1e-9);
    }

    /// The cross product is orthogonal to both inputs.
    #[test]
    fn cross_is_orthogonal(a in arb_vec3(), b in arb_vec3()) {
        let c = a.cross(b);
        prop_assert!(a.dot(c).abs() < 1e-6);
        prop_assert!(b.dot(c).abs() < 1e-6);
    }

    /// Normalization yields a unit vector whenever it is defined.
    #[test]
    fn normalized_is_unit(v in arb_vec3()) {
        if let Some(u) = v.try_normalized() {
            prop_assert!((u.norm() - 1.0).abs() < 1e-9);
        }
    }

    /// Clamping puts any point inside the room footprint, and is idempotent.
    #[test]
    fn clamp_is_idempotent_and_inside(p in arb_vec3()) {
        let room = Room::paper_simulation();
        let q = room.clamp_xy(p);
        prop_assert!((0.0..=room.width).contains(&q.x));
        prop_assert!((0.0..=room.depth).contains(&q.y));
        let r = room.clamp_xy(q);
        prop_assert!((q - r).norm() < 1e-12);
    }

    /// `nearest` really returns the closest grid TX for any point.
    #[test]
    fn nearest_is_truly_nearest(x in 0.0f64..3.0, y in 0.0f64..3.0) {
        let grid = TxGrid::paper(&Room::paper_simulation());
        let p = Vec3::new(x, y, 0.0);
        let best = grid.nearest(p);
        let d_best = grid.pose(best).position.horizontal_distance(p);
        for i in 0..grid.len() {
            let d = grid.pose(i).position.horizontal_distance(p);
            prop_assert!(d_best <= d + 1e-12);
        }
    }

    /// `within_radius` returns exactly the TXs inside the radius.
    #[test]
    fn within_radius_is_exact(x in 0.0f64..3.0, y in 0.0f64..3.0, r in 0.0f64..2.0) {
        let grid = TxGrid::paper(&Room::paper_simulation());
        let p = Vec3::new(x, y, 0.0);
        let inside = grid.within_radius(p, r);
        for i in 0..grid.len() {
            let d = grid.pose(i).position.horizontal_distance(p);
            prop_assert_eq!(inside.contains(&i), d <= r, "TX {} at {}", i, d);
        }
    }

    /// Irradiation and incidence cosines are equal for parallel planes at
    /// any lateral offset (the φ = ψ identity the LOS model relies on).
    #[test]
    fn phi_equals_psi_for_parallel_planes(dx in -2.0f64..2.0, dy in -2.0f64..2.0) {
        let tx = Pose::ceiling(1.5, 1.5, 2.8);
        let rx = Pose::face_up(1.5 + dx, 1.5 + dy, 0.8);
        let cos_phi = tx.cos_irradiation(rx.position);
        let cos_psi = rx.cos_incidence(tx.position);
        prop_assert!((cos_phi - cos_psi).abs() < 1e-9);
    }
}
